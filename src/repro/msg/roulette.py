"""Distributed-memory roulette wheel selection.

The message-passing mirror of the paper's Theorem 1: every rank draws a
logarithmic bid for its local fitness (one item per rank, or a shard of
the fitness vector), the ``(bid, rank, index)`` triple is max-all-reduced
in ``O(log p)`` rounds, and every rank ends up knowing the winner —
``Pr[i] = F_i`` exactly, O(1) memory per rank, no shared cell required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.bidding import log_bid_keys
from repro.core.fitness import validate_fitness
from repro.errors import SelectionError
from repro.msg.collectives import all_reduce_max
from repro.msg.network import Network, NetworkMetrics, RankContext

__all__ = ["DistributedOutcome", "distributed_roulette", "distributed_prefix_roulette"]


@dataclass
class DistributedOutcome:
    """Result of one distributed selection."""

    #: Winning global index (consistent across all ranks).
    winner: int
    #: Rank that owned the winner.
    owner: int
    #: Network cost counters.
    metrics: NetworkMetrics
    #: Per-rank view of the winner (must all agree; kept for the tests).
    per_rank_winner: List[int]


def _roulette_program(ctx: RankContext, fitness: Sequence[float], bounds: Sequence[int]):
    lo, hi = bounds[ctx.rank], bounds[ctx.rank + 1]
    if lo < hi:
        shard = np.asarray(fitness[lo:hi], dtype=np.float64)
        keys = log_bid_keys(shard, ctx.rng)
        best = int(np.argmax(keys))
        bid = float(keys[best])
        entry = (bid, ctx.rank, lo + best)
    else:
        entry = (-math.inf, ctx.rank, -1)
    best_bid, owner, index = yield from all_reduce_max(ctx, entry)
    if best_bid == -math.inf:  # pragma: no cover - guarded by validation
        raise SelectionError("no rank produced a finite bid")
    return owner, index


def distributed_roulette(
    fitness: Sequence[float],
    nranks: Optional[int] = None,
    seed: int = 0,
) -> DistributedOutcome:
    """Select an index with probability ``F_i`` across ``nranks`` ranks.

    The fitness vector is block-distributed; each rank draws its shard's
    bids from its private stream (vectorised) and the arg-max is
    all-reduced.  Every rank learns the same winner — the property a
    parallel ACO step needs before all processors move the ant.
    """
    f = validate_fitness(fitness)
    n = len(f)
    p = min(n, 16) if nranks is None else nranks
    if p <= 0:
        raise ValueError(f"nranks must be positive, got {p}")
    bounds = [r * n // p for r in range(p + 1)]
    net = Network(p, seed=seed)
    result = net.run(_roulette_program, list(f), bounds)
    winners = [idx for (_owner, idx) in result.returns]
    owners = [owner for (owner, _idx) in result.returns]
    if len(set(winners)) != 1:  # pragma: no cover - correctness guard
        raise SelectionError(f"ranks disagree on the winner: {winners}")
    return DistributedOutcome(
        winner=winners[0],
        owner=owners[0],
        metrics=result.metrics,
        per_rank_winner=winners,
    )


def _prefix_program(ctx: RankContext, fitness: Sequence[float], bounds: Sequence[int]):
    from repro.msg.collectives import all_reduce, binomial_broadcast, exclusive_scan

    lo, hi = bounds[ctx.rank], bounds[ctx.rank + 1]
    shard = np.asarray(fitness[lo:hi], dtype=np.float64)
    local_sum = float(shard.sum()) if lo < hi else 0.0
    # Global offset of this rank's interval and the wheel total.
    offset = yield from exclusive_scan(ctx, local_sum, lambda a, b: a + b, 0.0)
    total = yield from all_reduce(ctx, local_sum, lambda a, b: a + b)
    # Rank 0 spins; everyone learns R.
    spin = ctx.rng.random() * total if ctx.rank == 0 else None
    spin = yield from binomial_broadcast(ctx, spin, root=0)
    # The owning rank locates the winner in its shard (local bisection).
    winner = -1
    if lo < hi and local_sum > 0.0 and offset <= spin < offset + local_sum:
        prefix = np.cumsum(shard)
        j = int(np.searchsorted(prefix, spin - offset, side="right"))
        j = min(j, len(shard) - 1)
        while j < len(shard) and shard[j] == 0.0:  # boundary repair
            j += 1
        if j >= len(shard):  # pragma: no cover - FP corner
            j = int(np.flatnonzero(shard > 0.0)[-1])
        winner = lo + j
    # Share the winner: only one rank has a non-negative index.
    _, winner = yield from all_reduce(ctx, (winner >= 0, winner), max)
    return winner


def distributed_prefix_roulette(
    fitness: Sequence[float],
    nranks: Optional[int] = None,
    seed: int = 0,
) -> DistributedOutcome:
    """Distributed mirror of the paper's §I prefix-sum baseline.

    Exclusive scan of the shard sums gives every rank its global offset,
    rank 0's spin is broadcast, the owning rank bisects locally, and the
    winner is all-reduced.  Same O(log p) round count as
    :func:`distributed_roulette` but ~3 collectives instead of 1 — the
    measured constant-factor cost of the baseline, mirroring the paper's
    PRAM comparison.
    """
    f = validate_fitness(fitness)
    n = len(f)
    p = min(n, 16) if nranks is None else nranks
    if p <= 0:
        raise ValueError(f"nranks must be positive, got {p}")
    bounds = [r * n // p for r in range(p + 1)]
    net = Network(p, seed=seed)
    result = net.run(_prefix_program, list(f), bounds)
    winners = list(result.returns)
    if len(set(winners)) != 1 or winners[0] < 0:  # pragma: no cover
        raise SelectionError(f"ranks disagree on the winner: {winners}")
    owner = next(r for r in range(p) if bounds[r] <= winners[0] < bounds[r + 1])
    return DistributedOutcome(
        winner=winners[0],
        owner=owner,
        metrics=result.metrics,
        per_rank_winner=winners,
    )
