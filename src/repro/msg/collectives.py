"""Collective operations built from point-to-point messages.

All are generator sub-programs used inside a rank program with
``result = yield from collective(ctx, ...)``; every rank of the network
must call the same collective with compatible arguments (the usual MPI
contract).

* :func:`binomial_broadcast` — root-to-all in ``ceil(log2 p)`` rounds,
* :func:`binomial_reduce` — all-to-root fold in ``ceil(log2 p)`` rounds,
* :func:`all_reduce` / :func:`all_reduce_max` — recursive-doubling
  butterfly (with the standard fold for non-power-of-two sizes), leaving
  the reduction on *every* rank.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.msg.network import Recv, RankContext, Send, SendRecv

__all__ = [
    "binomial_broadcast",
    "binomial_reduce",
    "all_reduce",
    "all_reduce_max",
    "exclusive_scan",
]


def binomial_broadcast(ctx: RankContext, value: Any, root: int = 0):
    """Broadcast ``value`` (significant at ``root``) to every rank.

    Round ``t``: ranks with relative id < 2**t forward to relative id
    + 2**t.  Returns the broadcast value on every rank.
    """
    if not 0 <= root < ctx.size:
        raise ValueError(f"root {root} out of range for size {ctx.size}")
    rel = (ctx.rank - root) % ctx.size
    have = rel == 0
    t = 1
    while t < ctx.size:
        if have and rel + t < ctx.size:
            dest = (root + rel + t) % ctx.size
            yield Send(dest, value)
        elif not have and t <= rel < 2 * t:
            src = (root + rel - t) % ctx.size
            value = yield Recv(src)
            have = True
        t *= 2
    return value


def binomial_reduce(ctx: RankContext, value: Any, combine: Callable, root: int = 0):
    """Fold every rank's ``value`` with ``combine`` onto ``root``.

    Returns the full reduction at ``root`` and a partial (meaningless)
    value elsewhere — exactly MPI_Reduce's contract.
    """
    if not 0 <= root < ctx.size:
        raise ValueError(f"root {root} out of range for size {ctx.size}")
    rel = (ctx.rank - root) % ctx.size
    t = 1
    while t < ctx.size:
        if rel % (2 * t) == 0:
            if rel + t < ctx.size:
                src = (root + rel + t) % ctx.size
                other = yield Recv(src)
                value = combine(value, other)
        elif rel % (2 * t) == t:
            dest = (root + rel - t) % ctx.size
            yield Send(dest, value)
            return value  # sent upward; this rank is done reducing
        t *= 2
    return value


def all_reduce(ctx: RankContext, value: Any, combine: Callable):
    """Recursive-doubling all-reduce; the result lands on every rank.

    For non-power-of-two sizes the classic fold applies: the ``r`` extra
    ranks first push their values into the power-of-two "core", the core
    runs the butterfly, and the results are pushed back out.  Rounds:
    ``log2(p') + 2`` with ``p'`` the core size.
    """
    p = ctx.size
    core = 1
    while core * 2 <= p:
        core *= 2
    extra = p - core
    rank = ctx.rank

    # Fold-in: ranks core..p-1 send to rank - core.
    if rank >= core:
        yield Send(rank - core, value)
        result = yield Recv(rank - core)  # wait for the folded-out result
        return result
    if rank < extra:
        other = yield Recv(rank + core)
        value = combine(value, other)

    # Butterfly over the core.
    t = 1
    while t < core:
        partner = rank ^ t
        other = yield SendRecv(partner, value, partner)
        value = combine(value, other)
        t *= 2

    # Fold-out.
    if rank < extra:
        yield Send(rank + core, value)
    return value


def all_reduce_max(ctx: RankContext, value: Any):
    """All-reduce with ``max`` — the distributed race's core operation.

    ``value`` may be any comparable, typically a ``(bid, rank)`` tuple so
    the arg-max rides along with the max.
    """
    result = yield from all_reduce(ctx, value, max)
    return result


def exclusive_scan(ctx: RankContext, value: Any, combine: Callable, zero: Any):
    """Exclusive prefix scan across ranks (MPI_Exscan).

    Rank ``r`` receives ``combine`` folded over ranks ``0 .. r-1``
    (``zero`` at rank 0).  Hillis–Steele over the rank space:
    ``ceil(log2 p)`` full-duplex rounds.
    """
    p = ctx.size
    rank = ctx.rank
    # Inclusive running value plus the carried exclusive part.
    inclusive = value
    exclusive = zero
    t = 1
    while t < p:
        # Pair (rank) <- (rank - t) and (rank) -> (rank + t).
        send_to = rank + t
        recv_from = rank - t
        if send_to < p and recv_from >= 0:
            other = yield SendRecv(send_to, inclusive, recv_from)
        elif send_to < p:
            yield Send(send_to, inclusive)
            other = None
        elif recv_from >= 0:
            other = yield Recv(recv_from)
        else:
            other = None
        if other is not None:
            exclusive = combine(other, exclusive) if exclusive is not zero else other
            inclusive = combine(other, inclusive)
        t *= 2
    return exclusive
