"""Message-passing (distributed-memory) substrate.

The paper's race needs a CRCW shared cell; on distributed-memory
machines (MPI clusters) the same selection is realised by *reducing* the
logarithmic bids: each rank draws its local bid and the arg-max is
computed by collectives.  This package provides a deterministic
simulator of synchronous message-passing ranks —
:class:`repro.msg.network.Network` — with the classic collectives built
from point-to-point sends:

* binomial-tree broadcast and reduce (``ceil(log2 p)`` rounds),
* butterfly (recursive-doubling) all-reduce,
* :func:`repro.msg.roulette.distributed_roulette` — the full selection:
  local bids + arg-max reduce + winner broadcast, O(log p) rounds and
  O(1) memory per rank, the message-passing mirror of Theorem 1.

Costs are counted the way MPI papers count them: rounds (network
latency), messages, and bytes-equivalent payload units.
"""

from repro.msg.network import Network, Rank, RankContext
from repro.msg.collectives import (
    all_reduce_max,
    binomial_broadcast,
    binomial_reduce,
)
from repro.msg.roulette import (
    DistributedOutcome,
    distributed_prefix_roulette,
    distributed_roulette,
)

__all__ = [
    "Network",
    "Rank",
    "RankContext",
    "binomial_broadcast",
    "binomial_reduce",
    "all_reduce_max",
    "distributed_roulette",
    "distributed_prefix_roulette",
    "DistributedOutcome",
]
