"""A deterministic simulator of synchronous message-passing ranks.

Rank programs are generator coroutines (the same execution style as
:mod:`repro.pram`) yielding communication requests:

* ``yield Send(dest, payload)`` — enqueue a message; it becomes visible
  to ``dest`` at the end of the current round (one round of latency),
* ``payload = yield Recv(source)`` — block until a message from
  ``source`` is available, then consume it (FIFO per sender),
* ``payload = yield SendRecv(dest, payload, source)`` — both in one
  round, the full-duplex exchange collectives are built from.

Costs are counted per run: ``rounds`` (synchronous steps — the latency
term), ``messages`` and ``payload_units`` (the bandwidth term; one unit
per scalar, ``len`` units per sized payload).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, ProgramError, ReproError
from repro.rng.adapters import UniformAdapter
from repro.rng.philox import Philox4x32
from repro.rng.streams import machine_substreams

__all__ = ["Send", "Recv", "SendRecv", "Rank", "RankContext", "NetworkMetrics", "Network"]

_DEFAULT_MAX_ROUNDS = 1_000_000


class MessageError(ReproError):
    """An invalid source or destination rank in a communication request."""


@dataclass(frozen=True)
class Send:
    """Asynchronous send: visible to ``dest`` at the end of this round."""

    dest: int
    payload: Any


@dataclass(frozen=True)
class Recv:
    """Blocking receive of the next message from ``source``."""

    source: int


@dataclass(frozen=True)
class SendRecv:
    """Full-duplex exchange: send to ``dest``, then receive from ``source``."""

    dest: int
    payload: Any
    source: int


@dataclass
class RankContext:
    """Per-rank execution context."""

    rank: int
    size: int
    rng: UniformAdapter


#: Back-compat alias mirroring common MPI wrapper naming.
Rank = RankContext


@dataclass
class NetworkMetrics:
    """Cost counters for one network run."""

    #: Synchronous rounds (the latency term).
    rounds: int = 0
    #: Total messages sent.
    messages: int = 0
    #: Total payload size (1 per scalar, len() per sized object).
    payload_units: int = 0
    #: Number of ranks.
    size: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view."""
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "payload_units": self.payload_units,
            "size": self.size,
        }


@dataclass
class NetworkResult:
    """Per-rank return values plus the run's cost counters."""

    returns: List[Any] = field(default_factory=list)
    metrics: NetworkMetrics = field(default_factory=NetworkMetrics)


def _payload_size(payload: Any) -> int:
    try:
        return max(1, len(payload))  # type: ignore[arg-type]
    except TypeError:
        return 1


class Network:
    """``size`` synchronous ranks connected all-to-all.

    Parameters
    ----------
    size:
        Number of ranks.
    seed:
        Master seed; each rank gets an independent counter-based stream.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"network size must be positive, got {size}")
        self.size = size
        self.seed = seed
        self._rank_seed, _ = machine_substreams(seed)

    def rank_rng(self, rank: int) -> UniformAdapter:
        """The private stream of ``rank`` (deterministic per seed)."""
        return UniformAdapter(Philox4x32(self._rank_seed, stream=rank))

    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        max_rounds: Optional[int] = None,
        **kwargs: Any,
    ) -> NetworkResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank."""
        budget = _DEFAULT_MAX_ROUNDS if max_rounds is None else max_rounds
        gens: Dict[int, Any] = {}
        for rank in range(self.size):
            ctx = RankContext(rank=rank, size=self.size, rng=self.rank_rng(rank))
            gens[rank] = program(ctx, *args, **kwargs)

        metrics = NetworkMetrics(size=self.size)
        returns: List[Any] = [None] * self.size
        # inbox[dest][source] -> FIFO of payloads (delivered, receivable).
        inbox: List[Dict[int, deque]] = [dict() for _ in range(self.size)]
        send_values: Dict[int, Any] = {}
        # Ranks blocked on a Recv(source) they could not satisfy yet.
        blocked: Dict[int, int] = {}
        live = set(gens)

        def check_rank(r: int, kind: str) -> None:
            if not 0 <= r < self.size:
                raise MessageError(f"{kind} rank {r} out of range [0, {self.size})")

        def try_recv(rank: int, source: int) -> Tuple[bool, Any]:
            queue = inbox[rank].get(source)
            if queue:
                return True, queue.popleft()
            return False, None

        while live:
            if metrics.rounds >= budget:
                raise DeadlockError(
                    f"network exceeded {budget} rounds; blocked ranks: "
                    f"{sorted(blocked)} of live {sorted(live)}"
                )
            metrics.rounds += 1
            deliveries: List[Tuple[int, int, Any]] = []  # (dest, src, payload)
            progressed = False
            for rank in sorted(live):
                if rank in blocked:
                    ok, payload = try_recv(rank, blocked[rank])
                    if not ok:
                        continue  # still blocked; consumes the round
                    del blocked[rank]
                    send_values[rank] = payload
                    progressed = True
                gen = gens[rank]
                try:
                    request = gen.send(send_values.pop(rank, None))
                except StopIteration as stop:
                    returns[rank] = stop.value
                    live.discard(rank)
                    progressed = True
                    continue
                progressed = True
                if isinstance(request, Send):
                    check_rank(request.dest, "destination")
                    deliveries.append((request.dest, rank, request.payload))
                    metrics.messages += 1
                    metrics.payload_units += _payload_size(request.payload)
                elif isinstance(request, SendRecv):
                    check_rank(request.dest, "destination")
                    check_rank(request.source, "source")
                    deliveries.append((request.dest, rank, request.payload))
                    metrics.messages += 1
                    metrics.payload_units += _payload_size(request.payload)
                    blocked[rank] = request.source
                elif isinstance(request, Recv):
                    check_rank(request.source, "source")
                    blocked[rank] = request.source
                else:
                    raise ProgramError(
                        f"rank {rank} yielded {request!r}; expected Send, Recv, or SendRecv"
                    )
            # End of round: commit deliveries (visible from the next round).
            for dest, src, payload in deliveries:
                inbox[dest].setdefault(src, deque()).append(payload)
            if not progressed and not deliveries:
                raise DeadlockError(
                    f"no rank can progress; blocked: { {r: s for r, s in blocked.items()} }"
                )
        return NetworkResult(returns=returns, metrics=metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(size={self.size}, seed={self.seed})"
