"""Scenario plugins: the bench drivers behind one uniform cell contract.

A scenario is a callable ``run(config: dict) -> dict`` taking one cell's
parameter point and returning a flat dict of scalar metrics — one tidy
row.  The built-ins wire in the existing paper-reproduction drivers:

========== ===========================================================
name       wraps
========== ===========================================================
engine     :func:`repro.engine.bench.run_bench` (compiled throughput)
race       :func:`repro.engine.race_bench.run_bench_race` (round counts)
aco        :func:`repro.engine.aco_bench.run_bench_aco` (tours/s)
serve      the PR 5/7 service stack in-process (draws + updates /s)
accuracy   :func:`repro.bench.runner.monte_carlo_selection` (Tables I/II)
tune       :func:`repro.tune.bench.run_bench_tune` (speedup prediction)
rs         :func:`repro.select.rs.run_rs` (screening PCS / samples)
lottery    :class:`repro.select.lottery.CommitteeLottery` (marginal err)
sleep      deterministic-duration no-op (tests, kill-and-resume gate)
========== ===========================================================

Every new workload lands as a ``@scenario`` plugin plus a config file
under ``examples/lab/`` — not a new CLI.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping

__all__ = ["SCENARIOS", "scenario", "run_cell", "flatten_metrics"]

#: Registry of scenario name -> runner.
SCENARIOS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {}


def scenario(name: str):
    """Register a scenario plugin under ``name`` (decorator)."""

    def register(fn: Callable[[Mapping[str, Any]], Dict[str, Any]]):
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = fn
        return fn

    return register


def run_cell(config: Mapping[str, Any]) -> Dict[str, Any]:
    """Dispatch one cell config to its scenario; returns tidy metrics."""
    name = config.get("scenario")
    runner = SCENARIOS.get(str(name))
    if runner is None:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    params = {k: v for k, v in config.items() if k != "scenario"}
    return flatten_metrics(runner(params))


def flatten_metrics(tree: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested metric dicts to dotted scalar columns.

    Non-scalar leaves (lists, arrays) are dropped — tidy rows hold
    scalars; anything richer belongs in the scenario's own artifacts.
    """
    out: Dict[str, Any] = {}
    for k, v in tree.items():
        name = f"{prefix}{k}"
        if isinstance(v, Mapping):
            out.update(flatten_metrics(v, prefix=f"{name}."))
        elif isinstance(v, bool) or isinstance(v, (int, float, str)):
            out[name] = v
        else:
            item = getattr(v, "item", None)
            if callable(item):
                out[name] = item()
    return out


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
@scenario("engine")
def _engine(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Compiled-kernel selection throughput (the bench-engine driver)."""
    from repro.engine.bench import run_bench

    report = run_bench(
        n=int(params.get("n", 1000)),
        draws=int(params.get("draws", 1_000_000)),
        seed=int(params.get("seed", 0)),
        method=str(params.get("method", "log_bidding")),
    )
    results = dict(report["results"])
    results["draws_per_s_compiled"] = (
        report["config"]["draws"] / results["compiled_select_many_s"]
        if results["compiled_select_many_s"]
        else 0.0
    )
    return results


@scenario("race")
def _race(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Theorem-1 race round counts vs the exact law (bench-race driver)."""
    from repro.engine.race_bench import run_bench_race

    k = int(params.get("k", 1024))
    report = run_bench_race(
        ks=[k],
        trials=int(params.get("trials", 10_000)),
        seed=int(params.get("seed", 0)),
        workers=int(params["workers"]) if "workers" in params else None,
        pram_k=min(k, int(params.get("pram_k", 64))),
        pram_reps=int(params.get("pram_reps", 3)),
    )
    row = dict(report["results"]["per_k"][0])
    row.pop("quantiles", None)
    row.pop("exact_quantiles", None)
    row.pop("ci", None)
    row["speedup_vs_pram"] = report["results"]["speedup_vs_pram"]
    return row


@scenario("aco")
def _aco(params: Mapping[str, Any]) -> Dict[str, Any]:
    """End-to-end colony construction tours/s (bench-aco driver)."""
    from repro.engine.aco_bench import run_bench_aco

    report = run_bench_aco(
        n=int(params.get("n", 100)),
        n_ants=int(params.get("ants", 32)),
        iterations=int(params.get("iterations", 1)),
        seed=int(params.get("seed", 0)),
    )
    results = report["results"]
    out: Dict[str, Any] = {}
    for leg, stats in results.items():
        if isinstance(stats, Mapping):
            for key in ("tours_per_s", "elapsed_s", "speedup", "best_length"):
                if key in stats:
                    out[f"{leg}.{key}"] = stats[key]
        elif isinstance(stats, (int, float, bool, str)):
            out[leg] = stats
    return out


@scenario("serve")
def _serve(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Served draw/update throughput through the PR 5/7 service stack.

    Runs in-process (registry + micro-batch scheduler + closed-loop
    clients) so a lab matrix can sweep backends and batching knobs
    without binding ports; the TCP/cluster legs stay in bench-serve.
    """
    import asyncio

    import numpy as np

    from repro.service.loadgen import run_closed_loop
    from repro.service.registry import WheelRegistry
    from repro.service.scheduler import (
        BatchConfig,
        MicroBatchScheduler,
        NaiveScheduler,
    )

    n = int(params.get("n", 1000))
    method = str(params.get("method", "log_bidding"))
    backend = str(params.get("backend", "compiled"))
    clients = int(params.get("clients", 16))
    requests_per_client = int(params.get("requests_per_client", 8))
    n_draws = int(params.get("n_draws", 8))
    seed = int(params.get("seed", 0))
    update_every = int(params.get("update_every", 0))
    update_k = int(params.get("update_k", 8))
    config = BatchConfig(
        max_batch=int(params.get("max_batch", 64)),
        max_delay_us=float(params.get("max_delay_us", 200.0)),
    )
    fitness = np.arange(1.0, n + 1.0)
    total_requests = clients * requests_per_client

    def measure(make_scheduler) -> Dict[str, Any]:
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method, backend=backend)
        sched = make_scheduler(registry)

        async def go() -> Dict[str, Any]:
            await run_closed_loop(
                sched, wheel_id, clients=min(clients, 4),
                requests_per_client=1, n_draws=n_draws,
            )
            elapsed = await run_closed_loop(
                sched, wheel_id, clients=clients,
                requests_per_client=requests_per_client, n_draws=n_draws,
            )
            stats: Dict[str, Any] = {"elapsed_s": elapsed}
            if update_every > 0 and hasattr(sched, "update"):
                rng = np.random.default_rng(seed + 1)
                updates = max(1, total_requests // update_every)
                current = wheel_id
                t0 = time.perf_counter()
                for _ in range(updates):
                    idx = rng.choice(n, size=min(update_k, n), replace=False)
                    vals = 1.0 + rng.random(idx.size)
                    current, _info = await sched.update(current, idx, vals)
                stats["updates"] = updates
                stats["updates_per_s"] = updates / (time.perf_counter() - t0)
            close = getattr(sched, "close", None)
            if close is not None:
                await close()
            return stats

        return asyncio.run(go())

    naive = measure(lambda r: NaiveScheduler(r, seed=seed))
    batched = measure(lambda r: MicroBatchScheduler(r, config, seed=seed))
    naive_rps = total_requests / naive["elapsed_s"] if naive["elapsed_s"] else 0.0
    batched_rps = (
        total_requests / batched["elapsed_s"] if batched["elapsed_s"] else 0.0
    )
    out = {
        "requests": total_requests,
        "requests_per_s_naive": naive_rps,
        "requests_per_s_batched": batched_rps,
        "speedup_batched_vs_naive": batched_rps / naive_rps if naive_rps else 0.0,
        "draws_per_s": batched_rps * n_draws,
    }
    if "updates_per_s" in batched:
        out["updates"] = batched["updates"]
        out["updates_per_s"] = batched["updates_per_s"]
    return out


@scenario("accuracy")
def _accuracy(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Tables I/II selection-accuracy cells: one method on one workload."""
    from repro.bench.runner import monte_carlo_selection
    from repro.bench.workloads import make_workload

    workload = str(params.get("workload", "linear"))
    n = int(params.get("n", 10))
    method = str(params.get("method", "log_bidding"))
    iterations = int(params.get("iterations", 100_000))
    seed = int(params.get("seed", 0))
    fitness = make_workload(workload, n=n)
    mc = monte_carlo_selection(fitness, [method], iterations, seed=seed)
    return {
        "iterations": iterations,
        "tv_distance": mc.tv(method),
        "max_abs_error": mc.max_error(method),
        "gof_pvalue": mc.gof_pvalue(method),
    }


@scenario("tune")
def _tune(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One bench-tune point: calibrate, predict, and gate on this host.

    Exposes the tuner's headline numbers as tidy columns so a lab
    matrix can sweep seeds or workloads and chart prediction error and
    autotune quality alongside the other scenarios.
    """
    from repro.tune.bench import run_bench_tune

    report = run_bench_tune(
        seed=int(params.get("seed", 0)),
        trials=int(params.get("trials", 12)),
        race_trials=int(params.get("race_trials", 4)),
        wheel_n=int(params.get("n", 1024)),
        method=str(params.get("method", "log_bidding")),
        clients=int(params.get("clients", 8)),
        requests_per_client=int(params.get("requests_per_client", 16)),
        n_draws=int(params.get("n_draws", 8)),
        race_trials_probe=int(params.get("race_trials_probe", 5000)),
    )
    cal, sg, at = (
        report["calibration"],
        report["speedup_gate"],
        report["autotune_gate"],
    )
    return {
        "draw_ns": cal["draw_ns"],
        "spawn_overhead_ms": cal["spawn_overhead_s"] * 1e3,
        "min_draws_per_worker": cal["min_draws_per_worker"] or 0,
        "race_law_error": report["predictor"]["worst_relative_error"],
        "speedup_gate_skipped": bool(sg["skipped"]),
        "speedup_gate_error": sg.get("worst_relative_error", 0.0),
        "autotune_ratio": at["ratio_vs_best_static"],
        "probe_budget_fraction": at["probe_budget_fraction"],
        "gates_met": bool(report["gates_met"]),
    }


@scenario("rs")
def _rs(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Screening R&S on the slippage configuration: PCS and budget.

    One cell = one (K, delta, alpha, seed) point; the matrix axes map
    to the Ni-Henderson-Ciocan experiment grid (systems x indifference
    zone), with ``workers`` sweepable for the parallel-screening leg.
    """
    from repro.select.rs import make_systems, run_rs

    instance = make_systems(
        int(params.get("systems", 10)),
        float(params.get("delta", 0.05)),
        outcomes=int(params.get("outcomes", 33)),
    )
    report = run_rs(
        instance,
        int(params.get("replications", 20)),
        alpha=float(params.get("alpha", 0.1)),
        n0=int(params.get("n0", 32)),
        growth=float(params.get("growth", 2.0)),
        max_rounds=int(params.get("max_rounds", 10)),
        seed=int(params.get("seed", 0)),
        workers=int(params["workers"]) if "workers" in params else None,
    )
    return {
        "pcs": report["pcs"],
        "target_pcs": 1.0 - report["alpha"],
        "replications": report["replications"],
        "workers": report["workers"],
        "mean_rounds": report["mean_rounds"],
        "mean_samples": report["mean_samples"],
        "total_samples": report["total_samples"],
        "wall_s": report["wall_s"],
        "samples_per_s": report["samples_per_s"],
    }


@scenario("lottery")
def _lottery(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Smooth partial lottery: marginal error vs throughput for one backend.

    One cell = one (K, k, smoothing, method, seed) point; sweeping
    ``method`` over log_bidding and independent reproduces the
    exactness-vs-bias comparison of the lottery paper as a lab table.
    """
    import numpy as np

    from repro.bench.workloads import make_scores
    from repro.rng.streams import derive_seed
    from repro.select.lottery import CommitteeLottery

    n = int(params.get("n", 64))
    k = int(params.get("k", 8))
    method = str(params.get("method", "log_bidding"))
    draws = int(params.get("draws", 100_000))
    seed = int(params.get("seed", 0))
    landscape = str(params.get("scores", "normal"))
    score_kwargs = {"n": n}
    if landscape != "tied":
        score_kwargs["seed"] = derive_seed(seed, 1)
    scores = make_scores(landscape, **score_kwargs)
    lottery = CommitteeLottery(
        scores, k, smoothing=float(params.get("smoothing", 0.35)),
        method=method,
    )
    rng = np.random.default_rng(derive_seed(seed, 2))
    start = time.perf_counter()
    counts = lottery.component_counts(draws, rng=rng)
    elapsed = time.perf_counter() - start
    empirical = lottery.marginal_error(lottery.empirical_marginals(counts))
    analytic = lottery.marginal_error(lottery.induced_marginals())
    return {
        "n_components": lottery.n_components,
        "draws": draws,
        "max_abs_error": empirical["max_abs"],
        "tv_per_seat": empirical["tv_per_seat"],
        "analytic_max_abs_error": analytic["max_abs"],
        "analytic_tv_per_seat": analytic["tv_per_seat"],
        "elapsed_s": elapsed,
        "draws_per_s": draws / elapsed if elapsed else 0.0,
    }


@scenario("sleep")
def _sleep(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Deterministic-duration cell for tests and the kill-resume gate."""
    ms = float(params.get("ms", 50.0))
    time.sleep(ms / 1000.0)
    return {"slept_ms": ms}


def _collect_entry_points() -> None:
    """Adopt third-party plugins advertised as ``repro.lab.scenarios``."""
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 never ships here
        return
    try:
        eps = entry_points(group="repro.lab.scenarios")
    except TypeError:  # pragma: no cover - legacy importlib.metadata
        eps = entry_points().get("repro.lab.scenarios", [])
    for ep in eps:  # pragma: no cover - no third-party plugins in-tree
        if ep.name not in SCENARIOS:
            SCENARIOS[ep.name] = ep.load()


_collect_entry_points()
