"""Design-matrix expansion and content-addressed cell identity.

A *cell* is one scenario execution at one parameter point.  Its key is
the SHA-256 of the canonical JSON of its config, so identity survives
dict ordering, container types, process restarts, and equivalent numeric
spellings (``2.0`` and ``2`` hash identically) — the property that makes
``lab run --resume`` safe: a cell re-declared by any equivalent config
finds its cached result.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "CELL_SCHEMA",
    "Cell",
    "Experiment",
    "Grid",
    "canonical_config",
    "canonical_json",
    "cell_key",
    "expand_grid",
]

#: Stamped into every cached cell record; bump to invalidate old caches.
CELL_SCHEMA = "repro-lab-cell-v1"

#: Key prefix; versioned so a canonicalization change can never alias
#: keys minted under the old scheme (same convention as wheel ids).
_KEY_PREFIX = "c1"


def canonical_config(config: Any) -> Any:
    """Normalize a config tree so equivalent spellings compare equal.

    * dicts: keys coerced to ``str``, ``None`` values dropped (absent
      and ``None`` mean the same thing), values canonicalized;
    * sequences (list/tuple): element-wise canonicalization;
    * integral floats collapse to ints (``2.0`` == ``2``);
    * bools, ints, strings pass through.

    Raises ``ValueError`` for values that cannot round-trip through
    JSON deterministically (NaN/inf, arbitrary objects).
    """
    if isinstance(config, Mapping):
        out: Dict[str, Any] = {}
        for k in config:
            v = config[k]
            if v is None:
                continue
            out[str(k)] = canonical_config(v)
        return out
    if isinstance(config, (list, tuple)):
        return [canonical_config(v) for v in config]
    if isinstance(config, bool):
        return config
    if isinstance(config, int):
        return int(config)
    if isinstance(config, float):
        if config != config or config in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite value {config!r} cannot key a cell")
        if config.is_integer():
            return int(config)
        return float(config)
    if isinstance(config, str):
        return config
    # ndarray scalars and similar: accept anything exposing item().
    item = getattr(config, "item", None)
    if callable(item):
        return canonical_config(item())
    raise ValueError(
        f"config value {config!r} ({type(config).__name__}) is not JSON-canonical"
    )


def canonical_json(config: Any) -> str:
    """The canonical JSON text hashed by :func:`cell_key`."""
    return json.dumps(
        canonical_config(config),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def cell_key(config: Any) -> str:
    """Content address of one cell config: ``c1:<sha256 hex>``."""
    digest = hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()
    return f"{_KEY_PREFIX}:{digest}"


@dataclass(frozen=True)
class Cell:
    """One (scenario, parameter point) with its content key."""

    config: Dict[str, Any]
    key: str

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "Cell":
        canon = canonical_config(config)
        if "scenario" not in canon:
            raise ValueError(f"cell config missing 'scenario': {canon!r}")
        return cls(config=canon, key=cell_key(canon))

    @property
    def scenario(self) -> str:
        return str(self.config["scenario"])


def expand_grid(
    scenario: str,
    matrix: Mapping[str, Sequence[Any]],
    base: Optional[Mapping[str, Any]] = None,
) -> List[Cell]:
    """Cartesian product of ``matrix`` axes into cells.

    Axes expand in sorted-name order so the cell sequence is stable
    across declaration order; ``base`` holds constants shared by every
    cell of the grid.  An axis given as a scalar is a one-point axis.
    """
    if not scenario:
        raise ValueError("grid needs a scenario name")
    names = sorted(matrix)
    levels: List[List[Any]] = []
    for name in names:
        vals = matrix[name]
        if isinstance(vals, (str, bytes)) or not isinstance(vals, Sequence):
            vals = [vals]
        vals = list(vals)
        if not vals:
            raise ValueError(f"axis {name!r} of grid {scenario!r} is empty")
        levels.append(vals)
    cells = []
    for point in itertools.product(*levels):
        config = dict(base or {})
        config.update(zip(names, point))
        config["scenario"] = scenario
        cells.append(Cell.from_config(config))
    return cells


@dataclass
class Grid:
    """One block of the design matrix: a scenario and its axes."""

    scenario: str
    matrix: Dict[str, Any] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)

    def cells(self) -> List[Cell]:
        """This grid's cells (cartesian product of its axes)."""
        return expand_grid(self.scenario, self.matrix, self.base)


@dataclass
class Experiment:
    """A named design matrix: the union of its grids' cells.

    Duplicate parameter points (same content key, however declared)
    collapse to one cell, first occurrence wins — the matrix is a set.
    """

    name: str
    grids: List[Grid] = field(default_factory=list)
    workdir: Optional[str] = None

    def cells(self) -> List[Cell]:
        """Every cell of the matrix, deduplicated, declaration order."""
        seen: Dict[str, Cell] = {}
        for grid in self.grids:
            for cell in grid.cells():
                seen.setdefault(cell.key, cell)
        return list(seen.values())

    def resolve_workdir(self, override: Optional[str] = None) -> str:
        """The cell-cache directory: override > config > `.lab/<name>`."""
        if override:
            return override
        if self.workdir:
            return self.workdir
        return f".lab/{self.name}"
