"""Resumable cell execution with progress/ETA reporting.

The runner walks an experiment's cells in declaration order and, for
each: skips it if its result is already published (that *is* resume),
claims it against concurrent runners, logs ``start``, executes the
scenario, publishes the record atomically, and logs ``done``.  Nothing
else carries state — killing the process at any instant costs at most
the in-flight cell, and a later run (same config, any process) picks up
exactly the missing cells.

``jobs > 1`` fans cells out over worker processes; the claim files make
that safe even across *independently launched* ``lab run`` invocations
sharing one workdir.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.lab.cells import CELL_SCHEMA, Cell, Experiment
from repro.lab.scenarios import run_cell
from repro.lab.store import CellStore

__all__ = ["RunOutcome", "run_experiment", "execute_cell"]


@dataclass
class RunOutcome:
    """What one ``lab run`` invocation did to the matrix."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    claimed_elsewhere: int = 0
    failed: int = 0
    stopped_early: bool = False
    elapsed_s: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True iff every cell of the matrix is now published."""
        return (
            not self.stopped_early
            and self.failed == 0
            and self.claimed_elsewhere == 0
        )


def execute_cell(store: CellStore, cell: Cell) -> Dict[str, Any]:
    """Run one claimed cell: log, execute, publish; returns the record."""
    store.log_event("start", cell.key, scenario=cell.scenario)
    t0 = time.perf_counter()
    try:
        metrics = run_cell(cell.config)
    except BaseException as exc:
        store.log_event(
            "error", cell.key, error=f"{type(exc).__name__}: {exc}"
        )
        raise
    elapsed = time.perf_counter() - t0
    record = {
        "schema": CELL_SCHEMA,
        "key": cell.key,
        "config": cell.config,
        "metrics": metrics,
        "elapsed_s": elapsed,
        "finished_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "pid": os.getpid(),
    }
    store.store(cell.key, record)
    store.log_event("done", cell.key, elapsed_s=elapsed)
    return record


def _progress_line(
    done: int, total: int, cached: int, scenario: str, cell_times: List[float]
) -> str:
    if cell_times:
        eta = (total - done) * (sum(cell_times) / len(cell_times))
        eta_txt = f"{int(eta // 60)}:{int(eta % 60):02d}"
    else:
        eta_txt = "--:--"
    return (
        f"[lab] {done}/{total} cells ({cached} cached) "
        f"scenario={scenario} eta {eta_txt}"
    )


def _run_one_proc(args) -> tuple:
    """Pool worker: execute one cell in its own process (spawn-safe)."""
    workdir, config = args
    cell = Cell.from_config(config)
    store = CellStore(workdir)
    if store.has(cell.key):
        return ("cached", None)
    if not store.claim(cell.key):
        return ("claimed", None)
    try:
        execute_cell(store, cell)
    except BaseException as exc:  # noqa: BLE001 - reported, not raised
        return ("failed", f"{cell.key}: {type(exc).__name__}: {exc}")
    finally:
        store.release(cell.key)
    return ("executed", None)


def run_experiment(
    experiment: Experiment,
    *,
    workdir: Optional[str] = None,
    resume: bool = True,
    jobs: int = 1,
    max_cells: Optional[int] = None,
    progress: bool = True,
    stream=None,
) -> RunOutcome:
    """Execute (the missing cells of) an experiment's matrix.

    ``resume=False`` clears the cell cache first — a from-scratch run.
    ``max_cells`` stops after executing that many cells (used by tests
    and the resume gate to simulate an interrupted run deterministically;
    a SIGKILL exercises the same path nondeterministically).
    """
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    store = CellStore(experiment.resolve_workdir(workdir))
    if not resume:
        store.clean()
    cells = experiment.cells()
    outcome = RunOutcome(total=len(cells))
    out = stream if stream is not None else sys.stderr
    t_start = time.perf_counter()
    cell_times: List[float] = []

    if jobs > 1:
        # Fan out over processes; claims keep concurrent runners honest.
        import multiprocessing as mp

        pending = [c for c in cells if not store.has(c.key)]
        outcome.cached = len(cells) - len(pending)
        if max_cells is not None and len(pending) > max_cells:
            pending = pending[:max_cells]
            outcome.stopped_early = True
        if pending:
            ctx = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            with ctx.Pool(min(jobs, len(pending))) as pool:
                for status, err in pool.imap_unordered(
                    _run_one_proc,
                    [(store.workdir, c.config) for c in pending],
                ):
                    if status == "executed":
                        outcome.executed += 1
                    elif status == "cached":
                        outcome.cached += 1
                    elif status == "claimed":
                        outcome.claimed_elsewhere += 1
                    else:
                        outcome.failed += 1
                        outcome.errors.append(err)
                    if progress:
                        done = outcome.executed + outcome.cached
                        print(
                            "\r" + _progress_line(
                                done, len(cells), outcome.cached, "*", []
                            ),
                            end="", file=out, flush=True,
                        )
    else:
        executed = 0
        for cell in cells:
            if store.has(cell.key):
                outcome.cached += 1
            elif max_cells is not None and executed >= max_cells:
                outcome.stopped_early = True
                continue
            elif not store.claim(cell.key):
                outcome.claimed_elsewhere += 1
            else:
                try:
                    record = execute_cell(store, cell)
                    cell_times.append(record["elapsed_s"])
                    outcome.executed += 1
                    executed += 1
                except BaseException as exc:  # noqa: BLE001 - collected
                    outcome.failed += 1
                    outcome.errors.append(
                        f"{cell.key}: {type(exc).__name__}: {exc}"
                    )
                finally:
                    store.release(cell.key)
            if progress:
                done = outcome.cached + outcome.executed + outcome.failed
                print(
                    "\r" + _progress_line(
                        done, len(cells), outcome.cached,
                        cell.scenario, cell_times,
                    ),
                    end="", file=out, flush=True,
                )
    if progress:
        print(file=out, flush=True)
    outcome.elapsed_s = time.perf_counter() - t_start
    return outcome
