"""``python -m repro lab`` — run/status/report/clean for experiment matrices.

Exit codes: 0 success; 1 cell failures (failed cells are retried by the
next ``run``); 2 usage; 3 the run stopped early (``--max-cells``) or
other runners still hold cells — the matrix is not yet complete.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lab`` argument parser (run/status/report/clean/...)."""
    parser = argparse.ArgumentParser(
        prog="repro lab",
        description=(
            "Declarative, resumable experiment workbench: expand a TOML/JSON "
            "design matrix into content-addressed cells, execute the missing "
            "ones with per-cell on-disk caching, and export tidy rows plus a "
            "Tables-I/II-style report."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute the missing cells of a matrix")
    run.add_argument("config", help="experiment config (.toml or .json)")
    run.add_argument(
        "--resume",
        action="store_true",
        default=True,
        help="skip cells with cached results (the default; kept explicit "
        "so interrupted runs read naturally: `lab run --resume cfg.toml`)",
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="clear the cell cache first and re-run the whole matrix",
    )
    run.add_argument("--workdir", default=None, help="override the cache dir")
    run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after executing this many cells (exit 3: incomplete)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the progress/ETA line"
    )

    status = sub.add_parser("status", help="done/missing cell accounting")
    status.add_argument("config")
    status.add_argument("--workdir", default=None)
    status.add_argument("--json", action="store_true", dest="as_json")

    report = sub.add_parser(
        "report", help="render the ASCII report; optionally export tidy rows"
    )
    report.add_argument("config")
    report.add_argument("--workdir", default=None)
    report.add_argument(
        "--json", default=None, metavar="PATH", help="write tidy rows as JSON"
    )
    report.add_argument(
        "--csv", default=None, metavar="PATH", help="write tidy rows as CSV"
    )

    clean = sub.add_parser("clean", help="drop every cached cell and the log")
    clean.add_argument("config")
    clean.add_argument("--workdir", default=None)

    sub.add_parser("scenarios", help="list available scenario plugins")

    bench = sub.add_parser(
        "bench",
        help="kill-and-resume acceptance gate, recorded in BENCH_lab.json",
    )
    bench.add_argument(
        "--output", default="BENCH_lab.json", help="gate record path"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw gate record instead of the summary",
    )
    return parser


def _load(args):
    from repro.lab.config import load_experiment
    from repro.lab.store import CellStore

    experiment = load_experiment(args.config)
    store = CellStore(experiment.resolve_workdir(args.workdir))
    return experiment, store


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro lab``; returns the exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "scenarios":
        from repro.lab.scenarios import SCENARIOS

        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()
            print(f"{name:12s} {doc[0] if doc else ''}")
        return 0

    if args.command == "bench":
        from repro.lab.bench import (
            render_bench_lab,
            run_bench_lab,
            write_bench_lab,
        )

        report = run_bench_lab(seed=args.seed)
        path = write_bench_lab(report, args.output)
        if args.as_json:
            print(json.dumps(report, indent=2))
        else:
            print(render_bench_lab(report))
            print(f"recorded -> {path}")
        return 0 if report["results"]["gate_met"] else 1

    experiment, store = _load(args)

    if args.command == "run":
        from repro.lab.report import status_counts
        from repro.lab.runner import run_experiment

        outcome = run_experiment(
            experiment,
            workdir=args.workdir,
            resume=not args.fresh,
            jobs=args.jobs,
            max_cells=args.max_cells,
            progress=not args.quiet,
        )
        counts = status_counts(experiment, store)
        print(
            f"[lab] {experiment.name}: {outcome.executed} executed, "
            f"{outcome.cached} cached, {outcome.failed} failed "
            f"({counts['done']}/{counts['total']} cells done, "
            f"{outcome.elapsed_s:.1f}s)"
        )
        for err in outcome.errors:
            print(f"[lab] FAILED {err}", file=sys.stderr)
        if outcome.failed:
            return 1
        if not outcome.complete or counts["missing"]:
            return 3
        return 0

    if args.command == "status":
        from repro.lab.report import status_counts

        counts = status_counts(experiment, store)
        if args.as_json:
            print(json.dumps(counts, indent=2))
        else:
            print(
                f"{experiment.name}: {counts['done']}/{counts['total']} "
                f"cells done ({counts['missing']} missing)"
            )
            for name, c in sorted(counts["scenarios"].items()):
                print(f"  {name:12s} {c['done']}/{c['total']}")
        return 0 if counts["missing"] == 0 else 3

    if args.command == "report":
        from repro.lab.report import (
            render_report,
            tidy_rows,
            write_rows_csv,
            write_rows_json,
        )

        print(render_report(experiment, store))
        if args.json or args.csv:
            rows = tidy_rows(experiment, store)
            if args.json:
                print(f"tidy rows (json) -> {write_rows_json(rows, args.json)}")
            if args.csv:
                print(f"tidy rows (csv)  -> {write_rows_csv(rows, args.csv)}")
        return 0

    if args.command == "clean":
        removed = store.clean()
        print(f"[lab] {experiment.name}: removed {removed} cached files")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
