"""`repro.lab` — the declarative, resumable experiment workbench.

An :class:`~repro.lab.cells.Experiment` is a design matrix (methods x
workloads x scales x seeds x backend options) declared in TOML/JSON and
expanded into content-addressed *cells*: one cell is one scenario run at
one parameter point, keyed by the SHA-256 of its canonical config.  The
runner executes missing cells, caches each result on disk atomically,
and therefore resumes for free — killing a paper-scale run and
re-running with ``--resume`` re-executes only the cells that never
finished (the same trick as the PR 5 content-addressed wheel registry).

Results export as tidy JSON/CSV rows plus a Tables-I/II-style ASCII
report; the bench CLIs (bench-engine, bench-race, bench-aco,
bench-serve) are wired in as scenario plugins so a new scenario PR is a
config file under ``examples/lab/``, not a new driver.

Entry point: ``python -m repro lab {run,status,report,clean,bench,scenarios}``.
"""

from repro.lab.cells import Cell, Experiment, Grid, canonical_config, cell_key
from repro.lab.config import load_experiment
from repro.lab.report import render_report, tidy_rows
from repro.lab.runner import run_experiment
from repro.lab.scenarios import SCENARIOS, run_cell, scenario
from repro.lab.store import CellStore

__all__ = [
    "Cell",
    "CellStore",
    "Experiment",
    "Grid",
    "SCENARIOS",
    "canonical_config",
    "cell_key",
    "load_experiment",
    "render_report",
    "run_cell",
    "run_experiment",
    "scenario",
    "tidy_rows",
]
