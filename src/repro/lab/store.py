"""On-disk per-cell result cache with an append-only execution log.

Layout under one experiment's workdir::

    <workdir>/cells/<sha256>.json    one finished cell (atomic rename)
    <workdir>/cells/<sha256>.claim   liveness-checked in-flight marker
    <workdir>/log.jsonl              start/done/error events, append-only

A cell is *done* iff its result file exists — results are written to a
temp file and published by ``os.rename``, so a SIGKILL at any instant
leaves either a complete record or nothing, never a torn file.  That
single invariant is the whole resume story: ``lab run --resume`` skips
exactly the cells with a result file.

Claims let several ``lab run`` processes cooperate on one matrix: a
claim is an ``O_EXCL`` file holding the claimant's pid, and a claim
whose pid is dead is stale and silently reclaimed (a killed run never
wedges the matrix).

The execution log exists for *auditing* exactly-once behaviour — the
kill-and-resume gate (``lab bench``) and the property tests count
``start``/``done`` events per key to prove a resume re-executes only
cells that never finished.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Set

__all__ = ["CellStore"]


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by other user
        return True
    return True


def _key_stem(key: str) -> str:
    """Filesystem stem for a cell key (strip the ``c1:`` prefix)."""
    return key.rsplit(":", 1)[-1]


class CellStore:
    """One experiment's cell cache rooted at ``workdir``."""

    def __init__(self, workdir: str) -> None:
        self.workdir = str(workdir)
        self.cells_dir = os.path.join(self.workdir, "cells")
        self.log_path = os.path.join(self.workdir, "log.jsonl")
        os.makedirs(self.cells_dir, exist_ok=True)

    # -- results -------------------------------------------------------
    def result_path(self, key: str) -> str:
        """Where ``key``'s finished record lives (exists iff done)."""
        return os.path.join(self.cells_dir, f"{_key_stem(key)}.json")

    def has(self, key: str) -> bool:
        """True iff the cell finished (result file published)."""
        return os.path.exists(self.result_path(key))

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or None if missing/unreadable.

        A record that fails to parse is treated as missing (and removed)
        rather than poisoning the run — it can only arise from manual
        tampering, since publication is atomic.
        """
        path = self.result_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None

    def store(self, key: str, record: Dict[str, Any]) -> str:
        """Atomically publish a finished cell record; returns its path."""
        path = self.result_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, path)
        return path

    def done_keys(self, keys: Iterable[str]) -> Set[str]:
        """Subset of ``keys`` whose cells are done."""
        return {k for k in keys if self.has(k)}

    # -- claims --------------------------------------------------------
    def claim_path(self, key: str) -> str:
        """Where ``key``'s in-flight claim marker lives."""
        return os.path.join(self.cells_dir, f"{_key_stem(key)}.claim")

    def claim(self, key: str) -> bool:
        """Try to claim ``key`` for this process; False if held elsewhere.

        A claim held by a dead pid is stale: it is removed and the claim
        retried, so a SIGKILLed run never blocks a resume.
        """
        path = self.claim_path(key)
        payload = f"{os.getpid()}\n".encode("ascii")
        for _ in range(2):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except OSError as exc:
                if exc.errno != errno.EEXIST:  # pragma: no cover - fs error
                    raise
                try:
                    with open(path, "r", encoding="ascii") as fh:
                        holder = int(fh.read().strip() or "0")
                except (OSError, ValueError):
                    holder = 0
                if _pid_alive(holder) and holder != os.getpid():
                    return False
                try:  # stale (or our own leftover): clear and retry once
                    os.unlink(path)
                except FileNotFoundError:  # pragma: no cover - race
                    pass
                continue
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            return True
        return False

    def release(self, key: str) -> None:
        """Drop our claim on ``key`` (idempotent)."""
        try:
            os.unlink(self.claim_path(key))
        except FileNotFoundError:
            pass

    # -- execution log -------------------------------------------------
    def log_event(self, event: str, key: str, **extra: Any) -> None:
        """Append one event line; flushed so a kill loses at most one."""
        record = {"event": event, "key": key, "pid": os.getpid(), "t": time.time()}
        record.update(extra)
        with open(self.log_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def read_log(self) -> List[Dict[str, Any]]:
        """Every parseable event, in append order (torn tail tolerated)."""
        events: List[Dict[str, Any]] = []
        try:
            with open(self.log_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue  # torn final line from a kill
        except FileNotFoundError:
            pass
        return events

    # -- maintenance ---------------------------------------------------
    def clean(self) -> int:
        """Remove every cached cell, claim, and the log; returns count."""
        removed = 0
        try:
            names = os.listdir(self.cells_dir)
        except FileNotFoundError:  # pragma: no cover - already gone
            names = []
        for name in names:
            try:
                os.unlink(os.path.join(self.cells_dir, name))
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        try:
            os.unlink(self.log_path)
        except FileNotFoundError:
            pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellStore({self.workdir!r})"
