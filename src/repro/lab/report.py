"""Tidy result export and the Tables-I/II-style ASCII report.

A *tidy row* is one cell flattened: its key, scenario, every axis of its
config, and every scalar metric — the long format the Las Vegas
speedup-prediction work consumes directly (one runtime observation per
row across methods x workloads x scales x seeds).  The ASCII report
groups rows by scenario and renders each group in the paper's table
style (:func:`repro.bench.tables.format_table`).
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional

from repro.bench.tables import format_table
from repro.lab.cells import Experiment
from repro.lab.store import CellStore

__all__ = [
    "tidy_rows",
    "write_rows_json",
    "write_rows_csv",
    "render_report",
    "status_counts",
]


def tidy_rows(
    experiment: Experiment, store: CellStore
) -> List[Dict[str, Any]]:
    """One flat row per *finished* cell, in matrix declaration order."""
    rows: List[Dict[str, Any]] = []
    for cell in experiment.cells():
        record = store.load(cell.key)
        if record is None:
            continue
        row: Dict[str, Any] = {"key": cell.key, "scenario": cell.scenario}
        for k, v in cell.config.items():
            if k != "scenario":
                row[k] = v
        for k, v in record.get("metrics", {}).items():
            # A metric name colliding with an axis keeps the axis value;
            # the metric lands under a 'metric:' prefix instead.
            row[k if k not in row else f"metric:{k}"] = v
        row["cell_elapsed_s"] = record.get("elapsed_s")
        rows.append(row)
    return rows


def _columns(rows: List[Dict[str, Any]]) -> List[str]:
    """Stable column union: key, scenario, then first-seen order."""
    cols: List[str] = []
    for row in rows:
        for k in row:
            if k not in cols:
                cols.append(k)
    return cols


def write_rows_json(rows: List[Dict[str, Any]], path: str) -> str:
    """Write tidy rows as a JSON array; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    return path


def write_rows_csv(rows: List[Dict[str, Any]], path: str) -> str:
    """Write tidy rows as CSV (union of columns); returns the path."""
    cols = _columns(rows)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def status_counts(experiment: Experiment, store: CellStore) -> Dict[str, int]:
    """Done/missing accounting for ``lab status``."""
    cells = experiment.cells()
    done = store.done_keys([c.key for c in cells])
    per_scenario: Dict[str, List[int]] = {}
    for cell in cells:
        bucket = per_scenario.setdefault(cell.scenario, [0, 0])
        bucket[0] += 1
        if cell.key in done:
            bucket[1] += 1
    return {
        "total": len(cells),
        "done": len(done),
        "missing": len(cells) - len(done),
        "scenarios": {
            name: {"total": t, "done": d} for name, (t, d) in per_scenario.items()
        },
    }


def render_report(
    experiment: Experiment,
    store: CellStore,
    max_metric_columns: int = 8,
) -> str:
    """The regenerated paper-style report: one table per scenario.

    Columns are the scenario's axes followed by its metrics (capped at
    ``max_metric_columns``, longest names last to favour the headline
    throughput/error numbers which sort early by first appearance).
    Unfinished cells are reported in a footer instead of fabricating
    rows.
    """
    rows = tidy_rows(experiment, store)
    cells = experiment.cells()
    blocks: List[str] = [f"== lab report: {experiment.name} =="]
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    for name in sorted(by_scenario):
        srows = by_scenario[name]
        axes = sorted(
            {
                k
                for cell in cells
                if cell.scenario == name
                for k in cell.config
                if k != "scenario"
            }
        )
        metrics: List[str] = []
        for row in srows:
            for k in row:
                if (
                    k not in ("key", "scenario", "cell_elapsed_s")
                    and k not in axes
                    and k not in metrics
                ):
                    metrics.append(k)
        metrics = metrics[:max_metric_columns]
        headers = axes + metrics
        table_rows = [
            [row.get(h, "") for h in headers] for row in srows
        ]
        blocks.append(
            format_table(
                headers,
                table_rows,
                title=f"-- scenario: {name} ({len(srows)} cells) --",
            )
        )
    missing = [c for c in cells if not store.has(c.key)]
    if missing:
        blocks.append(
            f"({len(missing)} of {len(cells)} cells not yet run — "
            f"`lab run --resume` completes them)"
        )
    return "\n\n".join(blocks)
