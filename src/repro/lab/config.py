"""Experiment declarations: TOML (preferred) or JSON, one schema.

::

    [experiment]
    name = "engine-sweep"
    workdir = ".lab/engine-sweep"      # optional; default .lab/<name>

    [[grid]]
    scenario = "engine"
    [grid.matrix]                      # axes: cartesian product
    method = ["log_bidding", "alias"]
    n = [1000, 10000]
    seed = [0, 1]
    [grid.base]                        # constants shared by the grid
    draws = 100000

Multiple ``[[grid]]`` blocks union their cells (duplicates collapse by
content key).  JSON configs carry the identical structure with a
top-level ``{"experiment": {...}, "grid": [...]}`` object.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.lab.cells import Experiment, Grid

__all__ = ["load_experiment", "parse_experiment"]


def parse_experiment(doc: Dict[str, Any], default_name: str = "lab") -> Experiment:
    """Build an :class:`Experiment` from a parsed config document."""
    exp = doc.get("experiment", {})
    if not isinstance(exp, dict):
        raise ValueError("[experiment] must be a table")
    grids_doc = doc.get("grid", [])
    if isinstance(grids_doc, dict):
        grids_doc = [grids_doc]
    if not grids_doc:
        raise ValueError("config declares no [[grid]] blocks")
    grids = []
    for i, block in enumerate(grids_doc):
        if not isinstance(block, dict) or "scenario" not in block:
            raise ValueError(f"grid #{i} missing 'scenario'")
        extra = set(block) - {"scenario", "matrix", "base"}
        if extra:
            raise ValueError(
                f"grid #{i} has unknown keys {sorted(extra)}; "
                f"axes go under [grid.matrix], constants under [grid.base]"
            )
        grids.append(
            Grid(
                scenario=str(block["scenario"]),
                matrix=dict(block.get("matrix", {})),
                base=dict(block.get("base", {})),
            )
        )
    return Experiment(
        name=str(exp.get("name", default_name)),
        grids=grids,
        workdir=exp.get("workdir"),
    )


def load_experiment(path: str) -> Experiment:
    """Load a TOML or JSON experiment config from ``path``."""
    stem = os.path.splitext(os.path.basename(path))[0]
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        import tomllib

        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    return parse_experiment(doc, default_name=stem)
