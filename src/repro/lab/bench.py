"""The workbench acceptance gate: kill-and-resume with exactly-once cells.

``python -m repro lab bench`` runs a small real matrix (engine + serve
scenarios x 2 methods x 2 seeds, plus a block of fixed-duration sleep
cells that guarantee a mid-run kill window), SIGKILLs the run while a
cell is executing, resumes it with the same config, and audits the
execution log:

* every cell that finished before the kill must **not** re-execute on
  resume (zero duplicated cell executions);
* no cell may ever publish twice;
* after resume the matrix must be complete, the tidy rows must cover
  every cell, and ``lab report`` must render.

The result is recorded in ``BENCH_lab.json``.  The gate is pure
correctness (no timing thresholds), so the validator requires it — a
loaded CI runner can be slow, but it can never excuse a re-executed
cell.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

import repro
from repro._version import __version__
from repro.lab.cells import Experiment
from repro.lab.config import parse_experiment
from repro.lab.report import render_report, status_counts, tidy_rows
from repro.lab.runner import run_experiment
from repro.lab.store import CellStore

__all__ = [
    "BENCH_LAB_SCHEMA",
    "gate_config",
    "run_bench_lab",
    "validate_bench_lab",
    "write_bench_lab",
    "render_bench_lab",
]

BENCH_LAB_SCHEMA = "repro-bench-lab-v1"

#: Sleep cells appended after the real scenarios: they open a
#: deterministic window in which the kill lands mid-cell.
_SLEEP_CELLS = 6
_SLEEP_MS = 250.0


def gate_config(seed: int = 0) -> Dict[str, Any]:
    """The gate's design matrix (as a parsed config document).

    Two real scenarios (engine + serve) x two methods x two seeds — the
    acceptance-criteria floor — followed by the sleep block.
    """
    return {
        "experiment": {"name": "lab-resume-gate"},
        "grid": [
            {
                "scenario": "engine",
                "matrix": {
                    "method": ["log_bidding", "alias"],
                    "seed": [seed, seed + 1],
                },
                "base": {"n": 200, "draws": 20_000},
            },
            {
                "scenario": "serve",
                "matrix": {
                    "method": ["log_bidding", "alias"],
                    "seed": [seed, seed + 1],
                },
                "base": {
                    "n": 128,
                    "clients": 8,
                    "requests_per_client": 4,
                    "n_draws": 4,
                },
            },
            {
                "scenario": "sleep",
                "matrix": {"idx": list(range(_SLEEP_CELLS))},
                "base": {"ms": _SLEEP_MS},
            },
        ],
    }


def _spawn_lab_run(config_path: str, workdir: str) -> subprocess.Popen:
    """Launch ``python -m repro lab run`` as a killable subprocess."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "lab", "run", config_path,
            "--workdir", workdir, "--quiet",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_kill_window(
    store: CellStore, proc: subprocess.Popen, timeout_s: float = 300.0
) -> bool:
    """Wait until a sleep cell is mid-execution, then SIGKILL the run.

    Returns True if the process was killed mid-run; False if it finished
    first (possible only on pathologically fast sleep handling — the
    gate still audits exactly-once behaviour in that case).
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False
        events = store.read_log()
        started = {e["key"] for e in events if e.get("event") == "start"}
        done = {e["key"] for e in events if e.get("event") == "done"}
        sleeping = [
            e for e in events
            if e.get("event") == "start"
            and e.get("scenario") == "sleep"
            and e["key"] not in done
        ]
        if sleeping and len(done) >= 2 and len(started) > len(done):
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            return True
        time.sleep(0.02)
    proc.send_signal(signal.SIGKILL)  # pragma: no cover - watchdog only
    proc.wait(timeout=30)  # pragma: no cover
    return True  # pragma: no cover


def run_bench_lab(
    seed: int = 0, workdir: Optional[str] = None
) -> Dict[str, Any]:
    """Run the kill-and-resume gate; returns the BENCH_lab record."""
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-lab-gate-")
        workdir = tmp.name
    try:
        doc = gate_config(seed)
        experiment: Experiment = parse_experiment(doc)
        cells = experiment.cells()
        config_path = os.path.join(workdir, "gate.json")
        with open(config_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        cell_dir = os.path.join(workdir, "run")
        store = CellStore(cell_dir)

        # Phase A: real process, real SIGKILL mid-cell.
        t0 = time.perf_counter()
        proc = _spawn_lab_run(config_path, cell_dir)
        killed = _await_kill_window(store, proc)
        kill_t = time.time()
        before = store.done_keys([c.key for c in cells])
        phase_a_s = time.perf_counter() - t0

        # Phase B: resume with the same config against the same workdir.
        t1 = time.perf_counter()
        outcome = run_experiment(
            experiment, workdir=cell_dir, resume=True, progress=False
        )
        phase_b_s = time.perf_counter() - t1

        # Audit the execution log for exactly-once behaviour.
        events = store.read_log()
        starts: Dict[str, List[float]] = {}
        dones: Dict[str, int] = {}
        for e in events:
            if e.get("event") == "start":
                starts.setdefault(e["key"], []).append(e.get("t", 0.0))
            elif e.get("event") == "done":
                dones[e["key"]] = dones.get(e["key"], 0) + 1
        re_executed = sorted(
            k for k in before
            if any(t > kill_t for t in starts.get(k, []))
        )
        duplicate_done = sorted(k for k, c in dones.items() if c > 1)
        counts = status_counts(experiment, store)
        rows = tidy_rows(experiment, store)
        report_text = render_report(experiment, store)
        resume_complete = counts["missing"] == 0 and outcome.failed == 0
        gate_met = (
            resume_complete
            and not re_executed
            and not duplicate_done
            and len(rows) == len(cells)
            and bool(report_text.strip())
        )
        return {
            "schema": BENCH_LAB_SCHEMA,
            "config": {
                "seed": seed,
                "cells": len(cells),
                "scenarios": sorted({c.scenario for c in cells}),
                "sleep_cells": _SLEEP_CELLS,
                "sleep_ms": _SLEEP_MS,
            },
            "results": {
                "killed_mid_run": bool(killed),
                "completed_before_kill": len(before),
                "executed_on_resume": outcome.executed,
                "cached_on_resume": outcome.cached,
                "re_executed_cells": len(re_executed),
                "duplicate_done_cells": len(duplicate_done),
                "resume_complete": bool(resume_complete),
                "tidy_rows": len(rows),
                "report_rendered": bool(report_text.strip()),
                "phase_a_s": phase_a_s,
                "phase_b_s": phase_b_s,
                "gate_met": bool(gate_met),
            },
            "meta": {
                "repro": __version__,
                "python": sys.version.split()[0],
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            },
        }
    finally:
        if tmp is not None:
            tmp.cleanup()


def validate_bench_lab(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a passing gate record.

    Unlike the throughput benches, every check here is correctness —
    exactly-once execution cannot be excused by a slow runner — so the
    gate booleans are *required*, not advisory.
    """
    if not isinstance(report, dict):
        raise ValueError("bench-lab report must be a JSON object")
    if report.get("schema") != BENCH_LAB_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_LAB_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    results = report["results"]
    for key in (
        "completed_before_kill",
        "re_executed_cells",
        "duplicate_done_cells",
        "resume_complete",
        "tidy_rows",
        "report_rendered",
        "gate_met",
    ):
        if key not in results:
            raise ValueError(f"results missing key {key!r}")
    if results["re_executed_cells"] != 0:
        raise ValueError(
            f"{results['re_executed_cells']} finished cells re-executed on "
            f"resume — the exactly-once contract is broken"
        )
    if results["duplicate_done_cells"] != 0:
        raise ValueError("a cell published twice")
    if not results["resume_complete"]:
        raise ValueError("resume did not complete the matrix")
    if not results["report_rendered"]:
        raise ValueError("lab report rendered empty")
    if not results["gate_met"]:
        raise ValueError("gate not met")


def write_bench_lab(
    report: Dict[str, Any], path: str = "BENCH_lab.json"
) -> str:
    """Validate and record the gate; returns the path written."""
    validate_bench_lab(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def render_bench_lab(report: Dict[str, Any]) -> str:
    """Human-readable gate summary for the CLI."""
    r = report["results"]
    c = report["config"]
    lines = [
        "== lab kill-and-resume gate ==",
        f"matrix: {c['cells']} cells over {', '.join(c['scenarios'])}",
        f"killed mid-run: {r['killed_mid_run']} "
        f"({r['completed_before_kill']} cells done at kill)",
        f"resume: {r['executed_on_resume']} executed, "
        f"{r['cached_on_resume']} cached, complete={r['resume_complete']}",
        f"re-executed finished cells: {r['re_executed_cells']} "
        f"(duplicate publishes: {r['duplicate_done_cells']})",
        f"tidy rows: {r['tidy_rows']}  report rendered: {r['report_rendered']}",
        f"gate: {'MET' if r['gate_met'] else 'MISSED'}",
    ]
    return "\n".join(lines)
