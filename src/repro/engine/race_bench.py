"""The race lab's perf-and-law gate: measure, validate, and record.

:func:`run_bench_race` drives the rank-space race kernel
(:func:`repro.engine.races.sample_round_counts` and its process fan-out)
across a ``k`` grid up to paper scale (``k = 2**20``), checks the
measured round-count moments and quantiles against the exact harmonic
law of :mod:`repro.stats.race_theory`, times the per-step PRAM race at
the largest shared ``k`` for the speedup gate, and re-runs the fan-out
to certify byte-identical determinism.  :func:`write_bench_race`
persists the report as ``BENCH_race.json``; exposed on the CLI as
``python -m repro bench-race``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.engine.races import parallel_round_counts, suggest_race_workers
from repro.pram.algorithms.max_random_write import max_random_write_race
from repro.rng.streams import stream_seeds
from repro.stats.confidence import mean_interval
from repro.tune.timers import timed
from repro.stats.race_theory import (
    expected_rounds,
    paper_bound,
    rounds_quantiles,
    variance_rounds,
)

__all__ = [
    "run_bench_race",
    "validate_bench_race",
    "write_bench_race",
    "render_bench_race",
    "BENCH_RACE_SCHEMA",
]

#: Schema tag for BENCH_race.json (bump on layout changes).
BENCH_RACE_SCHEMA = "repro/bench-race/v1"

#: Keys every result block must carry (used by the CI smoke check).
_REQUIRED_RESULT_KEYS = (
    "per_k",
    "speedup_vs_pram",
    "pram_k",
    "pram_s_per_trial",
    "vector_s_per_trial",
    "determinism_sha256",
    "determinism_rerun_identical",
)

#: Keys every per-k entry must carry.
_REQUIRED_PER_K_KEYS = (
    "k",
    "trials",
    "elapsed_s",
    "trials_per_s",
    "mean",
    "ci",
    "exact_mean",
    "mean_in_ci",
    "var",
    "exact_var",
    "quantiles",
    "exact_quantiles",
    "paper_bound",
)

#: Quantile grid recorded per k.
_QUANTILES = (0.25, 0.5, 0.75, 0.99)


def run_bench_race(
    ks: Sequence[int] = (2**10, 2**14, 2**17, 2**20),
    trials: int = 100_000,
    seed: int = 0,
    workers: Optional[int] = None,
    pram_k: int = 256,
    pram_reps: int = 20,
    confidence: float = 0.99,
) -> Dict[str, Any]:
    """Run the race lab across ``ks`` and report law agreement + speedup.

    The default configuration is the acceptance gate: ``k`` up to
    ``2**20`` with ``10**5`` trials each, every measured mean inside its
    exact-law CI band, and ``speedup_vs_pram >= 50`` at ``pram_k`` (the
    largest ``k`` both the per-step PRAM race and the vectorized kernel
    share; the per-step machine is infeasible far beyond it, which is the
    point).  The fan-out is re-run once to certify the byte-identical
    determinism contract for fixed ``(seed, workers)``.
    """
    ks = [int(k) for k in ks]
    if not ks or min(ks) < 1:
        raise ValueError(f"ks must be non-empty positive ints, got {ks}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if workers is None:
        workers = suggest_race_workers(trials)
    k_seeds = stream_seeds(seed, len(ks))

    per_k = []
    vector_s_per_trial = None
    for k, k_seed in zip(ks, k_seeds):
        start = time.perf_counter()
        counts = parallel_round_counts(k, trials, seed=k_seed, workers=workers)
        elapsed = time.perf_counter() - start
        mean = float(counts.mean())
        var = float(counts.var(ddof=1))
        exact_mean = expected_rounds(k)
        exact_var = variance_rounds(k)
        lo, hi = mean_interval(exact_mean, exact_var, trials, confidence=confidence)
        obs_q = np.quantile(counts, _QUANTILES, method="inverted_cdf")
        exact_q = rounds_quantiles(k, _QUANTILES)
        per_k.append(
            {
                "k": k,
                "trials": trials,
                "elapsed_s": elapsed,
                "trials_per_s": trials / elapsed if elapsed else float("inf"),
                "mean": mean,
                "ci": [lo, hi],
                "exact_mean": exact_mean,
                "mean_in_ci": bool(lo <= mean <= hi),
                "var": var,
                "exact_var": exact_var,
                "quantiles": {str(q): int(v) for q, v in zip(_QUANTILES, obs_q)},
                "exact_quantiles": {
                    str(q): int(v) for q, v in zip(_QUANTILES, exact_q)
                },
                "paper_bound": paper_bound(k),
            }
        )
        if k == pram_k:
            vector_s_per_trial = elapsed / trials

    # Speedup gate: per-trial cost of the per-step PRAM machine vs the
    # vectorized kernel at the largest k both can run.
    if vector_s_per_trial is None:
        gate_seed = stream_seeds(seed + 1, 1)[0]
        start = time.perf_counter()
        parallel_round_counts(pram_k, trials, seed=gate_seed, workers=workers)
        vector_s_per_trial = (time.perf_counter() - start) / trials
    rng = np.random.default_rng(seed)

    def pram_trials() -> None:
        for _ in range(pram_reps):
            values = rng.random(pram_k)
            max_random_write_race(values, seed=int(rng.integers(2**31)))

    pram_s_per_trial = timed(pram_trials) / pram_reps
    speedup = pram_s_per_trial / vector_s_per_trial if vector_s_per_trial else float("inf")

    # Determinism contract: the fan-out must be byte-identical across
    # runs for fixed (seed, workers).
    det_k, det_seed = ks[0], k_seeds[0]
    first = parallel_round_counts(det_k, trials, seed=det_seed, workers=workers)
    second = parallel_round_counts(det_k, trials, seed=det_seed, workers=workers)
    digest = hashlib.sha256(first.tobytes()).hexdigest()
    identical = bool(np.array_equal(first, second))

    return {
        "schema": BENCH_RACE_SCHEMA,
        "config": {
            "ks": ks,
            "trials": trials,
            "seed": seed,
            "workers": workers,
            "pram_k": pram_k,
            "pram_reps": pram_reps,
            "confidence": confidence,
            "quantile_grid": list(_QUANTILES),
        },
        "results": {
            "per_k": per_k,
            "speedup_vs_pram": speedup,
            "pram_k": pram_k,
            "pram_s_per_trial": pram_s_per_trial,
            "vector_s_per_trial": vector_s_per_trial,
            "determinism_sha256": digest,
            "determinism_rerun_identical": identical,
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench_race(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed race bench."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_RACE_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_RACE_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    results = report["results"]
    missing = [k for k in _REQUIRED_RESULT_KEYS if k not in results]
    if missing:
        raise ValueError(f"missing result keys: {missing}")
    per_k = results["per_k"]
    if not isinstance(per_k, list) or not per_k:
        raise ValueError("results.per_k must be a non-empty list")
    for entry in per_k:
        if not isinstance(entry, dict):
            raise ValueError("per_k entries must be objects")
        entry_missing = [k for k in _REQUIRED_PER_K_KEYS if k not in entry]
        if entry_missing:
            raise ValueError(
                f"per_k entry for k={entry.get('k')!r} missing keys: {entry_missing}"
            )
        if entry["elapsed_s"] < 0 or entry["trials"] <= 0:
            raise ValueError(f"per_k entry for k={entry['k']} has invalid timings")
    for key in ("speedup_vs_pram", "pram_s_per_trial", "vector_s_per_trial"):
        value = results[key]
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"result {key!r} must be a non-negative number, got {value!r}")
    if not isinstance(results["determinism_sha256"], str) or len(
        results["determinism_sha256"]
    ) != 64:
        raise ValueError("determinism_sha256 must be a hex sha256 digest")
    if results["determinism_rerun_identical"] is not True:
        raise ValueError("fan-out re-run was not byte-identical (determinism broken)")


def write_bench_race(report: Dict[str, Any], path: str = "BENCH_race.json") -> str:
    """Validate and write a race bench report; returns the path."""
    validate_bench_race(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_bench_race(report: Dict[str, Any]) -> str:
    """One-screen human summary of a race bench report."""
    c, r = report["config"], report["results"]
    lines = [
        f"== race bench: trials={c['trials']}, workers={c['workers']}, "
        f"seed={c['seed']} ==",
        f"{'k':>9s}  {'E[T] meas':>10s}  {'H_k exact':>10s}  {'in CI':>5s}  "
        f"{'p50':>4s}  {'2ceil(lg k)':>11s}  {'trials/s':>10s}",
    ]
    for entry in r["per_k"]:
        lines.append(
            f"{entry['k']:>9d}  {entry['mean']:>10.4f}  {entry['exact_mean']:>10.4f}  "
            f"{'yes' if entry['mean_in_ci'] else 'NO':>5s}  "
            f"{entry['quantiles']['0.5']:>4d}  {entry['paper_bound']:>11d}  "
            f"{entry['trials_per_s']:>10.0f}"
        )
    lines += [
        f"speedup vs per-step PRAM at k={r['pram_k']}: {r['speedup_vs_pram']:.0f}x"
        f"  ({1e3 * r['pram_s_per_trial']:.2f} ms vs "
        f"{1e6 * r['vector_s_per_trial']:.2f} us per trial)",
        f"fan-out determinism: sha256 {r['determinism_sha256'][:16]}..."
        f" re-run identical: {r['determinism_rerun_identical']}",
    ]
    return "\n".join(lines)
