"""High-throughput selection engine.

Compiles a static wheel once (:class:`CompiledWheel`), streams histograms
in constant memory (:func:`stream_counts`), fans draws out across
deterministic worker processes (:func:`parallel_counts`,
:func:`parallel_select_many`), and advances whole ant colonies in
lockstep (:mod:`repro.engine.colony`, ``python -m repro bench-aco``).
See ``python -m repro bench-engine`` for the recorded perf trajectory
(``BENCH_engine.json``).
"""

from repro.engine.aco_bench import (
    BENCH_ACO_SCHEMA,
    render_bench_aco,
    run_bench_aco,
    validate_bench_aco,
    write_bench_aco,
)
from repro.engine.colony import (
    CDF_METHODS,
    DEFAULT_BLOCK,
    LOCKSTEP_METHODS,
    AntStreams,
    blocked_choice,
    coloring_lockstep_colors,
    lockstep_keys,
    lockstep_select,
    qap_lockstep_assignments,
    tsp_lockstep_orders,
)
from repro.engine.compiled import (
    DEFAULT_CHUNK_BYTES,
    KERNELS,
    CompiledWheel,
    compile_wheel,
    stream_counts,
)
from repro.engine.parallel import (
    MIN_DRAWS_PER_WORKER,
    parallel_counts,
    parallel_select_many,
    shard_sizes,
    suggest_workers,
    worker_streams,
)
from repro.engine.races import (
    MIN_TRIALS_PER_WORKER,
    RaceBatch,
    parallel_round_counts,
    sample_round_counts,
    simulate_races,
    suggest_race_workers,
)

__all__ = [
    "CompiledWheel",
    "compile_wheel",
    "stream_counts",
    "parallel_counts",
    "parallel_select_many",
    "suggest_workers",
    "shard_sizes",
    "worker_streams",
    "RaceBatch",
    "simulate_races",
    "sample_round_counts",
    "parallel_round_counts",
    "suggest_race_workers",
    "DEFAULT_CHUNK_BYTES",
    "MIN_DRAWS_PER_WORKER",
    "MIN_TRIALS_PER_WORKER",
    "KERNELS",
    "AntStreams",
    "LOCKSTEP_METHODS",
    "CDF_METHODS",
    "DEFAULT_BLOCK",
    "blocked_choice",
    "lockstep_keys",
    "lockstep_select",
    "tsp_lockstep_orders",
    "qap_lockstep_assignments",
    "coloring_lockstep_colors",
    "run_bench_aco",
    "validate_bench_aco",
    "write_bench_aco",
    "render_bench_aco",
    "BENCH_ACO_SCHEMA",
]
