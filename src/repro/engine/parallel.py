"""Deterministic multi-process selection fan-out.

Shards a draw budget across worker processes, each running a
:class:`repro.engine.compiled.CompiledWheel` on its own provably
independent random stream (the construction of
:mod:`repro.rng.streams`), and reduces the results in worker order.

Determinism contract
--------------------
``(seed, workers)`` fully determines the output: worker ``w`` of ``W``
always receives stream ``w`` of ``stream_seeds(seed, W)`` (or the
engine-aware :func:`repro.rng.streams.spawn_streams` children when a
from-scratch engine is requested) and the shard sizes of
:func:`shard_sizes`, independent of scheduling, pool type, or chunking.
Counts are reduced by integer summation — exact and order-free — so
``parallel_counts`` is byte-identical across runs; ``parallel_select_many``
concatenates shards in worker order, so it is too.

Changing ``workers`` changes *which* streams are consumed (different
draws, same distribution); the total draw count is invariant.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Union

import numpy as np

from repro.core.fitness import FitnessVector, validate_fitness
from repro.core.methods.base import SelectionMethod
from repro.engine.compiled import DEFAULT_CHUNK_BYTES, CompiledWheel
from repro.rng.streams import stream_seeds
from repro.typing import FitnessLike

__all__ = [
    "parallel_counts",
    "parallel_select_many",
    "suggest_workers",
    "shard_sizes",
    "worker_streams",
]

#: Uncalibrated fallback: below this many draws per worker, process
#: startup outweighs the work on typical hosts.  The *operative* value
#: is per-host — see :func:`suggest_workers` for the resolution chain.
MIN_DRAWS_PER_WORKER = 250_000


def suggest_workers(
    size: int,
    *,
    available: Optional[int] = None,
    min_draws_per_worker: Optional[int] = None,
) -> int:
    """Auto-tune the worker count for a draw budget.

    One worker per ``min_draws_per_worker`` draws, capped by the CPU
    count (``available`` overrides detection, for tests and schedulers).
    Always at least 1.

    Contract for the break-even threshold
    -------------------------------------
    ``min_draws_per_worker`` is the smallest shard for which a worker
    pays for its own startup: ``spawn_overhead_s / draw_s`` on the host's
    measured constants.  When the argument is ``None`` (the default) it
    resolves, in order:

    1. the ``REPRO_MIN_DRAWS_PER_WORKER`` env var — pin any value
       without code changes (tests and CI pin the legacy constant);
    2. the per-host calibration cache written by
       ``python -m repro bench-tune`` / :func:`repro.tune.calibrate`
       (``~/.cache/repro/tune/<host>.json``);
    3. the uncalibrated fallback :data:`MIN_DRAWS_PER_WORKER`.

    The resolution is memoised per process (this function sits on the
    engine hot path); :func:`repro.tune.calibration.invalidate` resets
    it after an env or cache change.  Passing the argument explicitly
    bypasses the chain entirely.
    """
    if available is None:
        available = os.cpu_count() or 1
    if available < 1 or size < 0:
        raise ValueError(f"need available >= 1 and size >= 0, got {available}, {size}")
    if min_draws_per_worker is None:
        from repro.tune.calibration import resolve_min_draws_per_worker

        min_draws_per_worker = resolve_min_draws_per_worker(MIN_DRAWS_PER_WORKER)
    return max(1, min(available, size // max(1, min_draws_per_worker)))


def shard_sizes(size: int, workers: int) -> List[int]:
    """Split ``size`` draws into ``workers`` near-equal deterministic shards."""
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    q, r = divmod(size, workers)
    return [q + 1] * r + [q] * (workers - r)


def worker_streams(seed: int, workers: int, engine: Optional[str] = None) -> list:
    """The per-worker uniform sources for ``(seed, workers, engine)``.

    ``engine=None`` (the throughput path) seeds one NumPy generator per
    worker from SplitMix64-derived child seeds; an engine name (e.g.
    ``"philox4x32"``) uses :func:`repro.rng.streams.spawn_streams`'s
    engine-aware construction — disjoint by design, but running the
    pure-Python reference generators.
    """
    if engine is None:
        return [np.random.default_rng(s) for s in stream_seeds(seed, workers)]
    from repro.rng import ENGINES
    from repro.rng.streams import spawn_uniforms

    try:
        cls = ENGINES[engine.lower()]
    except KeyError:
        raise ValueError(f"unknown RNG engine {engine!r}; available: {sorted(ENGINES)}") from None
    return spawn_uniforms(cls, seed, workers)


def _worker_task(payload) -> np.ndarray:
    """Top-level worker body (must be picklable for the process pool)."""
    (values, method, kernel, chunk_bytes, seed, engine, workers, index, shard, mode) = payload
    rng = worker_streams(seed, workers, engine)[index]
    compiled = CompiledWheel(values, method, kernel=kernel, chunk_bytes=chunk_bytes)
    if mode == "counts":
        return compiled.counts(shard, rng=rng)
    return compiled.select_many(shard, rng=rng)


def _fan_out(
    fitness: Union[FitnessLike, FitnessVector],
    size: int,
    mode: str,
    *,
    method: Union[str, SelectionMethod, None],
    seed: int,
    workers: Optional[int],
    kernel: str,
    engine: Optional[str],
    chunk_bytes: int,
) -> List[np.ndarray]:
    values = (
        fitness.values if isinstance(fitness, FitnessVector) else validate_fitness(fitness)
    )
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if workers is None:
        workers = suggest_workers(size)
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    method_name = method.name if isinstance(method, SelectionMethod) else (method or "log_bidding")
    payloads = [
        (values, method_name, kernel, chunk_bytes, seed, engine, workers, w, shard, mode)
        for w, shard in enumerate(shard_sizes(size, workers))
    ]
    if workers == 1:
        return [_worker_task(payloads[0])]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker_task, payloads))


def parallel_counts(
    fitness: Union[FitnessLike, FitnessVector],
    size: int,
    *,
    method: Union[str, SelectionMethod, None] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    kernel: str = "auto",
    engine: Optional[str] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Histogram ``size`` draws across worker processes.

    Byte-identical for the same ``(seed, workers)`` on every run; the
    total (``counts.sum() == size``) is invariant in ``workers``.
    ``workers=None`` consults :func:`suggest_workers`.
    """
    shards = _fan_out(
        fitness, size, "counts",
        method=method, seed=seed, workers=workers,
        kernel=kernel, engine=engine, chunk_bytes=chunk_bytes,
    )
    total = np.zeros_like(shards[0])
    for counts in shards:
        total += counts
    return total


def parallel_select_many(
    fitness: Union[FitnessLike, FitnessVector],
    size: int,
    *,
    method: Union[str, SelectionMethod, None] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    kernel: str = "auto",
    engine: Optional[str] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Draw ``size`` indices across worker processes, in worker order.

    Deterministic for the same ``(seed, workers)``.  Draw ``i`` lands in
    worker ``i // ceil(size/workers)``'s stream, so the concatenation is
    reproducible but *different* from any single-stream run — use
    :func:`parallel_counts` when only the histogram matters.
    """
    shards = _fan_out(
        fitness, size, "draws",
        method=method, seed=seed, workers=workers,
        kernel=kernel, engine=engine, chunk_bytes=chunk_bytes,
    )
    return np.concatenate(shards) if shards else np.empty(0, dtype=np.int64)
