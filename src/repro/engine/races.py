"""Batched CRCW max races — the paper's §III core object at paper scale.

The PRAM simulator (:func:`repro.pram.algorithms.max_random_write_race`)
executes the race one processor-step at a time, which caps it at a few
hundred processors.  This module simulates **R independent races at
once** as NumPy arrays, in two complementary formulations:

* :func:`simulate_races` — the *value-space* kernel.  Each race keeps a
  shared cell ``s``; per round it computes the active mask
  (``bids > s``), picks one surviving writer per race under the machine's
  arbitration policy (RANDOM / ARBITRARY / PRIORITY / COMMON-detect),
  commits the R cells, and repeats until no race has an active writer.
  With ``arbitration="pram"`` it consumes, per race, the *identical*
  SplitMix64 arbitration stream a fresh :class:`repro.pram.PRAM` machine
  would (same :func:`repro.rng.machine_substreams` derivation, same
  conditional ``randint_below`` draws), so the fast path is provably the
  same stochastic process — validated step-for-step in the tests against
  ``max_random_write_race(record_rounds=True)``.

* :func:`sample_round_counts` — the *rank-space* kernel for RANDOM
  arbitration.  When the bids are distinct only ranks matter: the
  surviving write each round is uniform among the ``m`` active bidders,
  leaving ``U{0, .., m-1}`` of them active.  Simulating the active-count
  chain directly needs O(trials) memory regardless of ``k``, which is
  what lets the Theorem-1 experiment run at the paper's scale
  (``k = 2**20``, 10**5 trials) in well under a second.

:func:`parallel_round_counts` fans trial blocks out across worker
processes on SplitMix64 substreams (the same derivation as
:mod:`repro.engine.parallel`), byte-identical for fixed
``(seed, workers)``.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import CommonWriteViolation, SelectionError
from repro.pram.policies import WritePolicy
from repro.rng.streams import machine_substreams, stream_seeds

__all__ = [
    "RaceBatch",
    "simulate_races",
    "sample_round_counts",
    "parallel_round_counts",
    "suggest_race_workers",
    "MIN_TRIALS_PER_WORKER",
]

#: Below this many races per worker, process startup outweighs the work.
MIN_TRIALS_PER_WORKER = 100_000

#: Safety valve: a race over k distinct bids ends within k rounds.
_MAX_ROUNDS_SLACK = 4


def _as_policy(policy: Union[str, WritePolicy]) -> WritePolicy:
    if isinstance(policy, WritePolicy):
        return policy
    try:
        return WritePolicy(policy.lower())
    except ValueError:
        raise ValueError(
            f"unknown write policy {policy!r}; available: "
            f"{sorted(p.value for p in WritePolicy)}"
        ) from None


@dataclass
class RaceBatch:
    """Outcome of a batch of R independent CRCW max races."""

    #: Winning index per race (announcement step, ties arbitrated).
    winners: np.ndarray
    #: Final shared-cell value per race (the maximum finite bid).
    maxima: np.ndarray
    #: While-loop iterations per race — the quantity of Theorem 1.
    rounds: np.ndarray
    #: Participants with a finite bid per race (the paper's ``k``).
    k: np.ndarray
    #: Arbitration policy the batch ran under.
    policy: WritePolicy
    #: With ``record_rounds=True``: per race, the surviving writer of
    #: every round, in round order (the step-for-step PRAM hook).
    round_winners: Optional[List[List[int]]] = None


def _validate_bids(bids) -> np.ndarray:
    b = np.asarray(bids, dtype=np.float64)
    if b.ndim == 1:
        b = b[np.newaxis, :]
    if b.ndim != 2 or b.shape[1] == 0:
        raise SelectionError(f"bids must be (R, k) with k >= 1, got shape {b.shape}")
    if np.isnan(b).any():
        raise SelectionError("NaN bids are not comparable")
    dead = (b == -math.inf).all(axis=1)
    if dead.any():
        raise SelectionError(
            f"race {int(np.flatnonzero(dead)[0])}: all bids are -inf; "
            "no processor can win the race"
        )
    return b


def _pick_random_active(active: np.ndarray, counts: np.ndarray, rng) -> np.ndarray:
    """One uniformly random True column per row of a boolean matrix."""
    ranks = rng.integers(0, counts)  # target rank in [0, m) per row
    csum = np.cumsum(active, axis=1)
    return (csum == (ranks + 1)[:, np.newaxis]).argmax(axis=1)


def _common_or_raise(bids: np.ndarray, mask: np.ndarray, what: str) -> None:
    """COMMON discipline: every race's masked writes must agree."""
    masked = np.where(mask, bids, np.nan)
    lo = np.nanmin(masked, axis=1)
    hi = np.nanmax(masked, axis=1)
    bad = hi > lo
    if bad.any():
        r = int(np.flatnonzero(bad)[0])
        raise CommonWriteViolation(
            f"CRCW-COMMON conflict in race {r}: processors wrote differing "
            f"{what} values ({lo[r]!r} vs {hi[r]!r})"
        )


def _vector_races(
    b: np.ndarray, policy: WritePolicy, rng, record: bool
) -> RaceBatch:
    """All R races advanced together, one vectorized commit per round."""
    n_races, width = b.shape
    s = np.full(n_races, -math.inf)
    rounds = np.zeros(n_races, dtype=np.int64)
    logs: Optional[List[List[int]]] = [[] for _ in range(n_races)] if record else None
    max_rounds = width + _MAX_ROUNDS_SLACK
    for _ in range(max_rounds):
        active = b > s[:, np.newaxis]
        counts = active.sum(axis=1)
        running = counts > 0
        if not running.any():
            break
        rounds[running] += 1
        act = active[running]
        if policy is WritePolicy.RANDOM:
            cols = _pick_random_active(act, counts[running], rng)
        elif policy is WritePolicy.PRIORITY:
            cols = act.argmax(axis=1)
        elif policy is WritePolicy.ARBITRARY:
            cols = width - 1 - act[:, ::-1].argmax(axis=1)
        else:  # COMMON: concurrent writes must agree; detect and raise.
            _common_or_raise(b[running], act, "bid")
            cols = act.argmax(axis=1)
        s[running] = b[running, cols]
        if logs is not None:
            for race, col in zip(np.flatnonzero(running), cols):
                logs[race].append(int(col))
    else:  # pragma: no cover - unreachable: s strictly increases per round
        raise SelectionError("race failed to terminate within its round budget")
    # Announcement: every processor holding the maximum writes its id;
    # the same arbitration discipline picks the surviving announcement.
    ties = b == s[:, np.newaxis]
    tie_counts = ties.sum(axis=1)
    if policy is WritePolicy.RANDOM:
        winners = _pick_random_active(ties, tie_counts, rng)
    elif policy is WritePolicy.PRIORITY:
        winners = ties.argmax(axis=1)
    elif policy is WritePolicy.ARBITRARY:
        winners = width - 1 - ties[:, ::-1].argmax(axis=1)
    else:
        multi = tie_counts > 1
        if multi.any():
            r = int(np.flatnonzero(multi)[0])
            raise CommonWriteViolation(
                f"CRCW-COMMON conflict in race {r}: {int(tie_counts[r])} tied "
                "processors announced differing ids"
            )
        winners = ties.argmax(axis=1)
    return RaceBatch(
        winners=winners.astype(np.int64),
        maxima=s,
        rounds=rounds,
        k=(b != -math.inf).sum(axis=1).astype(np.int64),
        policy=policy,
        round_winners=logs,
    )


def _pram_faithful_race(b: np.ndarray, policy: WritePolicy, seed: int):
    """One race consuming exactly a fresh PRAM machine's arbitration stream.

    The machine derives ``(proc_seed, arbiter)`` via
    :func:`repro.rng.machine_substreams` and consumes one
    ``arbiter.randint_below(m)`` per commit with ``m >= 2`` writers —
    single-writer commits resolve without touching the stream
    (:func:`repro.pram.policies.resolve_write`).  Reproducing that
    consumption pattern makes winner, round count, *and* the per-round
    surviving-writer sequence bit-identical to the simulator's.
    """
    _, arbiter = machine_substreams(seed)
    s = -math.inf
    rounds = 0
    log: List[int] = []
    while True:
        active = np.flatnonzero(b > s)
        if active.size == 0:
            break
        rounds += 1
        if policy is WritePolicy.RANDOM:
            col = int(active[0] if active.size == 1 else active[arbiter.randint_below(active.size)])
        elif policy is WritePolicy.PRIORITY:
            col = int(active[0])
        elif policy is WritePolicy.ARBITRARY:
            col = int(active[-1])
        else:
            vals = b[active]
            if vals.max() > vals.min():
                raise CommonWriteViolation(
                    "CRCW-COMMON conflict: processors wrote differing bid values"
                )
            col = int(active[0])
        s = float(b[col])
        log.append(col)
    ties = np.flatnonzero(b == s)
    if policy is WritePolicy.RANDOM:
        winner = int(ties[0] if ties.size == 1 else ties[arbiter.randint_below(ties.size)])
    elif policy is WritePolicy.PRIORITY:
        winner = int(ties[0])
    elif policy is WritePolicy.ARBITRARY:
        winner = int(ties[-1])
    else:
        if ties.size > 1:
            raise CommonWriteViolation(
                f"CRCW-COMMON conflict: {ties.size} tied processors announced "
                "differing ids"
            )
        winner = int(ties[0])
    return winner, s, rounds, log


def simulate_races(
    bids,
    *,
    policy: Union[str, WritePolicy] = WritePolicy.RANDOM,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    arbitration: str = "vector",
    rng=None,
    record_rounds: bool = False,
) -> RaceBatch:
    """Run R independent CRCW max races over a ``(R, k)`` bid matrix.

    Parameters
    ----------
    bids:
        ``(R, k)`` array (or a single length-``k`` vector) of bids;
        ``-inf`` entries sit their race out.  Every race needs at least
        one finite bid.
    policy:
        CRCW write policy (enum or name).  RANDOM is the paper's model;
        PRIORITY / ARBITRARY are the ablation policies, COMMON detects
        (and raises on) conflicting concurrent writes.
    seed:
        Seeds the vectorized RANDOM arbitration stream (ignored when
        ``rng`` is given).
    seeds:
        ``arbitration="pram"`` only: per-race machine seeds, so race
        ``r`` reproduces ``max_random_write_race(bids[r], seed=seeds[r])``
        bit-for-bit.
    arbitration:
        ``"vector"`` (default) draws all R arbitrations per round from one
        NumPy stream — the fast, statistically identical path.  ``"pram"``
        replays each race against its own machine-derived SplitMix64
        arbiter — the bit-faithful cross-validation path.
    rng:
        Optional ``numpy.random.Generator`` for the vector path.
    record_rounds:
        Attach per-race surviving-writer logs (see :class:`RaceBatch`).
    """
    b = _validate_bids(bids)
    pol = _as_policy(policy)
    if arbitration == "vector":
        if seeds is not None:
            raise ValueError("per-race seeds require arbitration='pram'")
        if rng is None:
            rng = np.random.default_rng(stream_seeds(seed, 1)[0])
        return _vector_races(b, pol, rng, record_rounds)
    if arbitration != "pram":
        raise ValueError(f"arbitration must be 'vector' or 'pram', got {arbitration!r}")
    if seeds is None:
        seeds = [seed] * b.shape[0]
    if len(seeds) != b.shape[0]:
        raise ValueError(f"need one seed per race: {len(seeds)} seeds for {b.shape[0]} races")
    winners = np.empty(b.shape[0], dtype=np.int64)
    maxima = np.empty(b.shape[0], dtype=np.float64)
    rounds = np.empty(b.shape[0], dtype=np.int64)
    logs: List[List[int]] = []
    for r in range(b.shape[0]):
        winners[r], maxima[r], rounds[r], log = _pram_faithful_race(
            b[r], pol, int(seeds[r])
        )
        logs.append(log)
    return RaceBatch(
        winners=winners,
        maxima=maxima,
        rounds=rounds,
        k=(b != -math.inf).sum(axis=1).astype(np.int64),
        policy=pol,
        round_winners=logs if record_rounds else None,
    )


# ----------------------------------------------------------------------
# rank-space kernel: paper-scale round counts under RANDOM arbitration
# ----------------------------------------------------------------------
def sample_round_counts(
    k: int,
    trials: int,
    *,
    seed: int = 0,
    rng=None,
) -> np.ndarray:
    """Round counts of ``trials`` RANDOM-arbitrated races of ``k`` bidders.

    Simulates the exact rank chain ``m -> U{0, .., m-1}`` (the law of the
    value-space race for distinct bids — cross-validated in the tests),
    vectorized over trials: memory is O(trials) independent of ``k`` and
    the expected round count is ``H_k``, so ``k = 2**20`` with 10**5
    trials takes tens of milliseconds.  Returns an ``(trials,)`` int64
    array of per-race while-loop iteration counts.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if rng is None:
        rng = np.random.default_rng(stream_seeds(seed, 1)[0])
    m = np.full(trials, k, dtype=np.int64)
    rounds = np.zeros(trials, dtype=np.int64)
    alive = m > 0
    while alive.any():
        rounds[alive] += 1
        m[alive] = rng.integers(0, m[alive])
        alive = m > 0
    return rounds


def suggest_race_workers(
    trials: int,
    *,
    available: Optional[int] = None,
    min_trials_per_worker: int = MIN_TRIALS_PER_WORKER,
) -> int:
    """Auto-tune the worker count for a trial budget (always >= 1)."""
    if available is None:
        available = os.cpu_count() or 1
    if available < 1 or trials < 0:
        raise ValueError(f"need available >= 1 and trials >= 0, got {available}, {trials}")
    return max(1, min(available, trials // max(1, min_trials_per_worker)))


def _round_counts_task(payload) -> np.ndarray:
    """Top-level worker body (must be picklable for the process pool)."""
    k, shard, child_seed = payload
    return sample_round_counts(k, shard, rng=np.random.default_rng(child_seed))


def parallel_round_counts(
    k: int,
    trials: int,
    *,
    seed: int = 0,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Fan ``trials`` races out over worker processes; concat in worker order.

    Worker ``w`` of ``W`` always consumes SplitMix64 child seed ``w`` of
    ``stream_seeds(seed, W)`` and the shard sizes of
    :func:`repro.engine.parallel.shard_sizes` — the same determinism
    contract as the draw fan-out, so the result is byte-identical across
    runs for fixed ``(seed, workers)``.  ``workers=None`` consults
    :func:`suggest_race_workers`.
    """
    from repro.engine.parallel import shard_sizes

    if workers is None:
        workers = suggest_race_workers(trials)
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    payloads = [
        (k, shard, child)
        for shard, child in zip(shard_sizes(trials, workers), stream_seeds(seed, workers))
    ]
    if workers == 1:
        return _round_counts_task(payloads[0])
    with ProcessPoolExecutor(max_workers=workers) as pool:
        shards = list(pool.map(_round_counts_task, payloads))
    return np.concatenate(shards) if shards else np.empty(0, dtype=np.int64)
