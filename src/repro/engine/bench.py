"""The engine's perf gate: measure, compare, and record throughput.

:func:`run_bench` times the registry path against the compiled kernels
on one wheel configuration and returns a JSON-serialisable report;
:func:`write_bench` persists it as ``BENCH_engine.json`` so subsequent
changes have a perf trajectory to regress against.  Exposed on the CLI
as ``python -m repro bench-engine``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Optional

import numpy as np

from repro._version import __version__
from repro.core.fitness import validate_fitness
from repro.core.methods.base import get_method
from repro.engine.compiled import DEFAULT_CHUNK_BYTES, CompiledWheel
from repro.engine.parallel import parallel_counts, suggest_workers
from repro.tune.timers import timed

__all__ = ["run_bench", "write_bench", "validate_bench", "BENCH_SCHEMA"]

#: Schema tag for BENCH_engine.json (bump on layout changes).
BENCH_SCHEMA = "repro/bench-engine/v1"

#: Keys every result block must carry (used by the CI smoke check).
_REQUIRED_RESULT_KEYS = (
    "registry_select_many_s",
    "compiled_select_many_s",
    "compiled_race_select_many_s",
    "stream_counts_s",
    "parallel_counts_s",
    "speedup_compiled_vs_registry",
    "speedup_race_vs_registry",
)


def run_bench(
    n: int = 1000,
    draws: int = 1_000_000,
    seed: int = 0,
    method: str = "log_bidding",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Dict[str, Any]:
    """Time registry vs compiled selection on one wheel.

    The default configuration (``n=1000``, ``draws=10**6``) is the
    acceptance gate: ``speedup_compiled_vs_registry`` must stay >= 3.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if draws <= 0:
        raise ValueError(f"draws must be positive, got {draws}")
    f = validate_fitness(1.0 - np.random.default_rng(seed).random(n))
    sel = get_method(method)

    registry_s = timed(lambda: sel.select_many(f, np.random.default_rng(seed + 1), draws))

    compiled_auto = CompiledWheel(f, method, kernel="auto", chunk_bytes=chunk_bytes)
    compiled_s = timed(
        lambda: compiled_auto.select_many(draws, rng=np.random.default_rng(seed + 1))
    )

    compiled_race = CompiledWheel(f, method, kernel="faithful", chunk_bytes=chunk_bytes)
    race_s = timed(
        lambda: compiled_race.select_many(draws, rng=np.random.default_rng(seed + 1))
    )

    counts_s = timed(lambda: compiled_auto.counts(draws, rng=np.random.default_rng(seed + 1)))

    workers = suggest_workers(draws)
    parallel_s = timed(
        lambda: parallel_counts(
            f, draws, method=method, seed=seed, workers=workers, chunk_bytes=chunk_bytes
        )
    )

    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "n": n,
            "draws": draws,
            "seed": seed,
            "method": method,
            "chunk_bytes": chunk_bytes,
            "kernel_auto": compiled_auto.kernel,
            "kernel_faithful": compiled_race.kernel,
            "workers": workers,
        },
        "results": {
            "registry_select_many_s": registry_s,
            "compiled_select_many_s": compiled_s,
            "compiled_race_select_many_s": race_s,
            "stream_counts_s": counts_s,
            "parallel_counts_s": parallel_s,
            "speedup_compiled_vs_registry": registry_s / compiled_s if compiled_s else float("inf"),
            "speedup_race_vs_registry": registry_s / race_s if race_s else float("inf"),
            "registry_ns_per_draw": 1e9 * registry_s / draws,
            "compiled_ns_per_draw": 1e9 * compiled_s / draws,
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed bench record."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"schema mismatch: {report.get('schema')!r} != {BENCH_SCHEMA!r}")
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    missing = [k for k in _REQUIRED_RESULT_KEYS if k not in report["results"]]
    if missing:
        raise ValueError(f"missing result keys: {missing}")
    for key in _REQUIRED_RESULT_KEYS:
        value = report["results"][key]
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"result {key!r} must be a non-negative number, got {value!r}")


def write_bench(report: Dict[str, Any], path: str = "BENCH_engine.json") -> str:
    """Validate and write a bench report; returns the path."""
    validate_bench(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_bench(report: Dict[str, Any]) -> str:
    """One-screen human summary of a bench report."""
    c, r = report["config"], report["results"]
    lines = [
        f"== engine bench: n={c['n']}, draws={c['draws']}, method={c['method']} ==",
        f"registry select_many      {r['registry_select_many_s']:.3f} s"
        f"  ({r['registry_ns_per_draw']:.0f} ns/draw)",
        f"compiled ({c['kernel_auto']:>12s})  {r['compiled_select_many_s']:.3f} s"
        f"  ({r['compiled_ns_per_draw']:.0f} ns/draw)",
        f"compiled ({c['kernel_faithful']:>12s})  {r['compiled_race_select_many_s']:.3f} s",
        f"stream_counts             {r['stream_counts_s']:.3f} s",
        f"parallel_counts (w={c['workers']})    {r['parallel_counts_s']:.3f} s",
        f"speedup compiled/registry {r['speedup_compiled_vs_registry']:.1f}x",
        f"speedup race/registry     {r['speedup_race_vs_registry']:.2f}x",
    ]
    return "\n".join(lines)
