"""The end-to-end ACO bench: tours/s scalar vs lockstep, recorded.

:func:`run_bench_aco` times full colony iterations on a paper-scale
Euclidean TSP instance for every lockstep-capable selection method,
three ways: the scalar per-ant loop (desirability hoisted), the
vectorized lockstep engine, and the faithful per-ant-stream replay.  It
also records the run's sparsity profile (mean candidate count ``k`` per
construction step — the ``k << n`` regime the paper targets), times the
dynamic Fenwick wheel's batched vs scalar paths, and certifies
seed-for-seed equivalence of the scalar and lockstep constructions on a
small instance for all three colonies.  :func:`write_bench_aco`
persists the report as ``BENCH_aco.json``; exposed on the CLI as
``python -m repro bench-aco``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.engine.colony import (
    DEFAULT_BLOCK,
    LOCKSTEP_METHODS,
    AntStreams,
    tsp_lockstep_orders,
    tsp_lockstep_orders_faithful,
)
from repro.tune.timers import best_of

__all__ = [
    "run_bench_aco",
    "validate_bench_aco",
    "write_bench_aco",
    "render_bench_aco",
    "BENCH_ACO_SCHEMA",
]

#: Schema tag for BENCH_aco.json (bump on layout changes).
BENCH_ACO_SCHEMA = "repro/bench-aco/v1"

#: Keys every result block must carry (used by the CI smoke check).
_REQUIRED_RESULT_KEYS = (
    "per_method",
    "sparsity",
    "dynamic_wheel",
    "equivalence",
    "gate_method",
    "gate_target",
    "gate_speedup",
    "gate_met",
)

#: Keys every per-method entry must carry.
_REQUIRED_METHOD_KEYS = (
    "scalar_tours_per_s",
    "vectorized_tours_per_s",
    "faithful_tours_per_s",
    "speedup",
    "scalar_us_per_draw",
    "vectorized_us_per_draw",
)

#: Points kept when decimating the per-step sparsity profile for JSON.
_PROFILE_POINTS = 50


def _tsp_colony(instance, method: str, n_ants: int, engine: str, seed: int):
    from repro.aco.tsp.colony import AntSystem, AntSystemConfig

    cfg = AntSystemConfig(n_ants=n_ants, selection=method, engine=engine)
    return AntSystem(instance, cfg, rng=seed)


def _time_steps(colony, iterations: int) -> float:
    """Best per-iteration wall time over ``iterations`` colony steps.

    Min-of-reps (``repro.tune.timers.best_of``): the standard throughput
    estimator on shared machines — scheduler preemption only ever *adds*
    time, so the minimum is the closest observation to the true cost.
    Each repeat advances the same colony, so pheromone state evolves
    exactly as in the pre-timers loop.
    """
    return best_of(colony.step, repeats=iterations)


def _bench_dynamic_wheel(n: int, seed: int, batch: int = 64, draws: int = 4096) -> Dict[str, Any]:
    """Batched vs scalar timings of the Fenwick wheel at wheel size ``n``."""
    from repro.core.dynamic import FenwickSampler

    rng = np.random.default_rng(seed)
    base = rng.random(n) + 0.01
    idx = rng.integers(0, n, size=batch)
    vals = rng.random(batch) + 0.01

    s1 = FenwickSampler(base)
    start = time.perf_counter()
    for i, v in zip(idx.tolist(), vals.tolist()):
        s1.update(i, v)
    loop_update_s = time.perf_counter() - start

    s2 = FenwickSampler(base)
    start = time.perf_counter()
    s2.update_many(idx, vals)
    batch_update_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(draws):
        s2.select(rng)
    loop_select_s = time.perf_counter() - start

    start = time.perf_counter()
    s2.select_many(draws, rng)
    batch_select_s = time.perf_counter() - start

    return {
        "n": n,
        "batch": batch,
        "draws": draws,
        "rebuild_cutoff": s2.rebuild_cutoff,
        "update_loop_s": loop_update_s,
        "update_many_s": batch_update_s,
        "update_speedup": loop_update_s / batch_update_s if batch_update_s else float("inf"),
        "select_loop_s": loop_select_s,
        "select_many_s": batch_select_s,
        "select_speedup": loop_select_s / batch_select_s if batch_select_s else float("inf"),
    }


def _equivalence_certificate(
    methods: Sequence[str], n: int, n_ants: int, seed: int
) -> Dict[str, Any]:
    """Scalar-vs-faithful-lockstep equality on small instances, all colonies."""
    from repro.aco.coloring.colony import ColoringColony, ColoringConfig
    from repro.aco.coloring.instance import ColoringInstance
    from repro.aco.qap.colony import QAPColony, QAPConfig
    from repro.aco.qap.instance import QAPInstance
    from repro.aco.tsp.colony import AntSystem, AntSystemConfig
    from repro.aco.tsp.instance import TSPInstance

    tsp = TSPInstance.random_euclidean(n, seed=seed)
    qap = QAPInstance.random_uniform(max(8, n // 2), seed=seed)
    graph = ColoringInstance.random_gnp(max(8, n // 2), 0.3, seed=seed)
    out: Dict[str, Any] = {"n": n, "n_ants": n_ants, "per_method": {}}
    all_ok = True
    for method in methods:
        cfg = AntSystemConfig(n_ants=n_ants, selection=method)
        scalar = AntSystem(tsp, cfg, rng=seed)
        streams = AntStreams((seed, 0), n_ants)
        tours_s = [scalar.construct_tour(rng=streams.generator(i)) for i in range(n_ants)]
        lock = AntSystem(tsp, cfg, rng=seed)
        tours_v = lock.construct_tours_lockstep(streams=AntStreams((seed, 0), n_ants))
        tsp_ok = all(
            np.array_equal(a.order, b.order) for a, b in zip(tours_s, tours_v)
        ) and scalar.stats.k_histogram == lock.stats.k_histogram

        qcfg = QAPConfig(n_ants=n_ants, selection=method)
        q1 = QAPColony(qap, qcfg, rng=seed)
        qs = AntStreams((seed, 1), n_ants)
        a1 = [q1.construct(rng=qs.generator(i)) for i in range(n_ants)]
        q2 = QAPColony(qap, qcfg, rng=seed)
        a2 = q2.construct_lockstep(streams=AntStreams((seed, 1), n_ants))
        qap_ok = all(np.array_equal(x, y) for x, y in zip(a1, a2)) and (
            q1.stats.k_histogram == q2.stats.k_histogram
        )

        ccfg = ColoringConfig(n_ants=n_ants, selection=method)
        c1 = ColoringColony(graph, ccfg, rng=seed)
        cs = AntStreams((seed, 2), n_ants)
        b1 = [c1.construct(rng=cs.generator(i)) for i in range(n_ants)]
        c2 = ColoringColony(graph, ccfg, rng=seed)
        b2 = c2.construct_lockstep(streams=AntStreams((seed, 2), n_ants))
        col_ok = all(np.array_equal(x, y) for x, y in zip(b1, b2)) and (
            c1.stats.k_histogram == c2.stats.k_histogram
        )

        out["per_method"][method] = {
            "tsp": bool(tsp_ok),
            "qap": bool(qap_ok),
            "coloring": bool(col_ok),
        }
        all_ok = all_ok and tsp_ok and qap_ok and col_ok
    out["all_identical"] = bool(all_ok)
    return out


def run_bench_aco(
    n: int = 500,
    n_ants: int = 128,
    iterations: int = 2,
    seed: int = 0,
    methods: Sequence[str] = LOCKSTEP_METHODS,
    scalar_ants: Optional[int] = None,
    block: int = DEFAULT_BLOCK,
    gate_method: str = "log_bidding",
    gate_target: float = 20.0,
    equivalence_n: int = 32,
    equivalence_ants: int = 6,
) -> Dict[str, Any]:
    """Time scalar vs lockstep colony construction and assemble the report.

    The default configuration is the acceptance gate: a paper-scale
    Euclidean TSP (``n = 500``) with ``n_ants = 128`` and a >= 20x
    tours/s ratio of the vectorized engine over the scalar per-ant loop
    for ``gate_method``.  The scalar leg runs ``scalar_ants`` ants
    (default ``min(n_ants, 8)``) so the bench stays minutes-free —
    tours/s is per-tour throughput, independent of the colony size.
    """
    from repro.aco.tsp.instance import TSPInstance

    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    if n_ants <= 0 or iterations <= 0:
        raise ValueError("n_ants and iterations must be positive")
    methods = [str(m) for m in methods]
    unknown = [m for m in methods if m not in LOCKSTEP_METHODS]
    if unknown:
        raise ValueError(f"methods without a lockstep kernel: {unknown}")
    if gate_method not in methods:
        raise ValueError(f"gate_method {gate_method!r} not in methods {methods}")
    if scalar_ants is None:
        scalar_ants = min(n_ants, 8)

    instance = TSPInstance.random_euclidean(n, seed=seed)
    draws_per_tour = n - 1
    per_method: Dict[str, Any] = {}
    for method in methods:
        scalar = _tsp_colony(instance, method, scalar_ants, "scalar", seed)
        scalar.step()  # warm-up (visibility powers, allocator)
        scalar_s = _time_steps(scalar, iterations)

        vec = _tsp_colony(instance, method, n_ants, "vectorized", seed)
        vec.step()  # warm-up (workspace allocation)
        vec_s = _time_steps(vec, iterations)

        faithful_streams = AntStreams((seed, 3), n_ants)
        desirability = vec._desirability()
        start = time.perf_counter()
        tsp_lockstep_orders_faithful(
            desirability, faithful_streams, method=method
        )
        faithful_s = time.perf_counter() - start

        scalar_tps = scalar_ants / scalar_s
        vec_tps = n_ants / vec_s
        per_method[method] = {
            "scalar_ants": scalar_ants,
            "vectorized_ants": n_ants,
            "iterations": iterations,
            "scalar_iteration_s": scalar_s,
            "vectorized_iteration_s": vec_s,
            "faithful_s": faithful_s,
            "scalar_tours_per_s": scalar_tps,
            "vectorized_tours_per_s": vec_tps,
            "faithful_tours_per_s": n_ants / faithful_s,
            "speedup": vec_tps / scalar_tps,
            "scalar_us_per_draw": 1e6 * scalar_s / (scalar_ants * draws_per_tour),
            "vectorized_us_per_draw": 1e6 * vec_s / (n_ants * draws_per_tour),
        }

    # Sparsity profile: mean candidate count per construction step of one
    # lockstep iteration (k = n - step on strictly positive wheels; the
    # k << n regime is the paper's motivation).
    profile_colony = _tsp_colony(instance, gate_method, n_ants, "vectorized", seed)
    k_profile: list = []
    tsp_lockstep_orders(
        profile_colony._desirability(),
        n_ants,
        profile_colony.rng,
        method=gate_method,
        block=block,
        k_profile=k_profile,
    )
    stride = max(1, len(k_profile) // _PROFILE_POINTS)
    sparsity = {
        "steps": len(k_profile),
        "stride": stride,
        "mean_k": [round(v, 2) for v in k_profile[::stride]],
        "k_first": k_profile[0] if k_profile else None,
        "k_last": k_profile[-1] if k_profile else None,
    }

    dynamic_wheel = _bench_dynamic_wheel(n, seed)
    equivalence = _equivalence_certificate(
        methods, equivalence_n, equivalence_ants, seed
    )
    gate_speedup = per_method[gate_method]["speedup"]

    return {
        "schema": BENCH_ACO_SCHEMA,
        "config": {
            "n": n,
            "n_ants": n_ants,
            "iterations": iterations,
            "seed": seed,
            "methods": methods,
            "scalar_ants": scalar_ants,
            "block": block,
            "equivalence_n": equivalence_n,
            "equivalence_ants": equivalence_ants,
        },
        "results": {
            "per_method": per_method,
            "sparsity": sparsity,
            "dynamic_wheel": dynamic_wheel,
            "equivalence": equivalence,
            "gate_method": gate_method,
            "gate_target": gate_target,
            "gate_speedup": gate_speedup,
            "gate_met": bool(gate_speedup >= gate_target),
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench_aco(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed ACO bench.

    Checks layout, not performance: a tiny CI smoke run on a loaded
    shared runner may legitimately miss the speedup gate, so
    ``gate_met`` is recorded but not required to be true.
    """
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_ACO_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_ACO_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    results = report["results"]
    missing = [k for k in _REQUIRED_RESULT_KEYS if k not in results]
    if missing:
        raise ValueError(f"missing result keys: {missing}")
    per_method = results["per_method"]
    if not isinstance(per_method, dict) or not per_method:
        raise ValueError("results.per_method must be a non-empty object")
    for method, entry in per_method.items():
        if not isinstance(entry, dict):
            raise ValueError(f"per_method[{method!r}] must be an object")
        entry_missing = [k for k in _REQUIRED_METHOD_KEYS if k not in entry]
        if entry_missing:
            raise ValueError(
                f"per_method[{method!r}] missing keys: {entry_missing}"
            )
        for key in _REQUIRED_METHOD_KEYS:
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"per_method[{method!r}].{key} must be a non-negative "
                    f"number, got {value!r}"
                )
    if not isinstance(results["gate_target"], (int, float)):
        raise ValueError("gate_target must be a number")
    if results["gate_method"] not in per_method:
        raise ValueError("gate_method must name a benchmarked method")
    equivalence = results["equivalence"]
    if not isinstance(equivalence, dict) or "all_identical" not in equivalence:
        raise ValueError("results.equivalence must carry all_identical")
    if equivalence["all_identical"] is not True:
        raise ValueError(
            "seed-for-seed equivalence failed: scalar and lockstep "
            "constructions diverged"
        )
    sparsity = results["sparsity"]
    if not isinstance(sparsity, dict) or not sparsity.get("mean_k"):
        raise ValueError("results.sparsity must carry a non-empty mean_k profile")


def write_bench_aco(report: Dict[str, Any], path: str = "BENCH_aco.json") -> str:
    """Validate and write an ACO bench report; returns the path."""
    validate_bench_aco(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_bench_aco(report: Dict[str, Any]) -> str:
    """One-screen human summary of an ACO bench report."""
    c, r = report["config"], report["results"]
    lines = [
        f"== ACO bench: n={c['n']}, n_ants={c['n_ants']}, "
        f"iterations={c['iterations']}, seed={c['seed']} ==",
        f"{'method':>12s}  {'scalar t/s':>10s}  {'lockstep t/s':>12s}  "
        f"{'faithful t/s':>12s}  {'speedup':>8s}  {'us/draw':>8s}",
    ]
    for method, e in r["per_method"].items():
        lines.append(
            f"{method:>12s}  {e['scalar_tours_per_s']:>10.1f}  "
            f"{e['vectorized_tours_per_s']:>12.1f}  "
            f"{e['faithful_tours_per_s']:>12.1f}  "
            f"{e['speedup']:>7.1f}x  {e['vectorized_us_per_draw']:>8.2f}"
        )
    s = r["sparsity"]
    lines.append(
        f"sparsity: k {s['k_first']:.0f} -> {s['k_last']:.0f} over "
        f"{s['steps']} steps (mean per-step candidate count)"
    )
    d = r["dynamic_wheel"]
    lines.append(
        f"fenwick n={d['n']}: update_many {d['update_speedup']:.1f}x, "
        f"select_many {d['select_speedup']:.1f}x (cutoff {d['rebuild_cutoff']})"
    )
    lines.append(
        f"equivalence (n={r['equivalence']['n']}): all colonies identical = "
        f"{r['equivalence']['all_identical']}"
    )
    lines.append(
        f"gate [{r['gate_method']}]: {r['gate_speedup']:.1f}x "
        f"(target {r['gate_target']:.0f}x) -> "
        f"{'MET' if r['gate_met'] else 'NOT MET'}"
    )
    return "\n".join(lines)
