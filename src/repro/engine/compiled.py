"""Compiled selection kernels: validate once, stream draws forever.

The method registry in :mod:`repro.core.methods` optimises for clarity:
every ``select_many`` call re-validates nothing but *recomputes* all
per-wheel constants (``1/f``, ``log f``, cumulative sums, alias tables)
and materialises intermediate key matrices chunk by chunk.  That is the
right trade-off for single draws on a changing wheel — the paper's
regime — but the wrong one for the paper's *evidence*: Tables I and II
need ~10⁹ draws from a **static** wheel per configuration.

:class:`CompiledWheel` moves all method-specific preprocessing to
construction time and exposes two streaming entry points:

* :meth:`CompiledWheel.select_many` — draws into a caller-visible array,
* :meth:`CompiledWheel.counts` — accumulates ``np.bincount`` per chunk,
  so a 10⁹-draw histogram runs in O(n + chunk) memory.

Three concrete kernels cover every registered method:

``race``
    The paper's key race (one key per item per draw), fused and
    buffer-reusing: uniforms are generated directly into a pinned
    ``(rows, n)`` chunk buffer, transformed in place, and arg-maxed.
    Bit-compatible with the registry methods — same RNG consumption,
    same keys, same winners — at a bounded memory footprint.
``searchsorted``
    Inverse-CDF lookup over precomputed prefix sums, O(log n) per draw.
    Bit-compatible with ``binary_search`` / ``prefix_sum``.
``alias``
    Walker/Vose table built once, O(1) per draw.  Bit-compatible with
    the ``alias`` registry method.

Kernel selection policies:

``"faithful"``
    Reproduce the bound method's registry output bit-for-bit (the
    Monte-Carlo harness uses this, so compiled table replications are
    byte-identical to the uncompiled ones).
``"auto"``
    Fastest kernel *with the method's exact selection distribution*.
    The three monotone-equivalent race formulations (``log_bidding``,
    ``gumbel``, ``efraimidis_spirakis``) and every other exact method
    compile to the precomputed samplers; the ``independent`` baseline's
    *bias* is part of its contract, so it always keeps its faithful
    race.  ``auto`` never changes a method's distribution — only its
    implementation.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.fitness import FitnessVector
from repro.core.methods.alias import AliasTable
from repro.core.methods.base import SelectionMethod
from repro.core.methods.binary_search import BinarySearchSelection
from repro.errors import UnknownMethodError
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = [
    "CompiledWheel",
    "compile_wheel",
    "stream_counts",
    "DEFAULT_CHUNK_BYTES",
    "KERNELS",
]

#: Default per-chunk buffer budget.  Small enough to stay cache-friendly
#: (the race kernel is measurably faster with chunks that fit in L2/L3),
#: large enough to amortise per-chunk Python overhead.
DEFAULT_CHUNK_BYTES = 2 << 20

#: Concrete kernel names (policies ``auto`` / ``faithful`` resolve to one).
KERNELS = ("race", "searchsorted", "alias")

#: Methods realised as a fused key race (key transform per method).
_RACE_METHODS = ("log_bidding", "gumbel", "efraimidis_spirakis", "independent")

#: Fastest distribution-preserving kernel per method.
_AUTO_KERNEL: Dict[str, str] = {
    "log_bidding": "alias",
    "gumbel": "alias",
    "efraimidis_spirakis": "alias",
    "stochastic_acceptance": "alias",
    "linear_scan": "searchsorted",
    "fenwick": "searchsorted",
    "prefix_sum": "searchsorted",
    "binary_search": "searchsorted",
    "alias": "alias",
    "independent": "race",  # the bias is the point; never resample it
}

#: Kernel that reproduces the registry method's draws bit-for-bit.
_FAITHFUL_KERNEL: Dict[str, str] = {
    "log_bidding": "race",
    "gumbel": "race",
    "efraimidis_spirakis": "race",
    "independent": "race",
    "prefix_sum": "searchsorted",
    "binary_search": "searchsorted",
    "alias": "alias",
}

#: Positive fitness below this can overflow ``log(u)/f`` to -inf
#: (|log u| <= log 2^53 ~ 36.75, overflow at f < ~2e-307).
_CLAMP_THRESHOLD = 1e-306


def _fill_uniform(rng, buf: np.ndarray) -> None:
    """Fill ``buf`` with uniforms on [0, 1) without allocating when possible."""
    if isinstance(rng, np.random.Generator):
        rng.random(out=buf)
    else:
        buf[...] = rng.random(buf.shape)


class CompiledWheel:
    """A fitness vector compiled to a streaming selection kernel.

    Parameters
    ----------
    fitness:
        The wheel (anything :class:`repro.core.fitness.FitnessVector`
        accepts); validated exactly once.
    method:
        Registry name or :class:`SelectionMethod` instance whose
        selection distribution (and, under ``faithful``, exact draws)
        this wheel reproduces.  Default: the paper's ``log_bidding``.
    kernel:
        ``"auto"`` (default), ``"faithful"``, or a concrete kernel name
        from :data:`KERNELS`.
    chunk_bytes:
        Memory budget for the per-chunk work buffer.  The race kernel
        never allocates more than ``chunk_bytes`` for its key chunk
        (``rows = chunk_bytes // (8 n)`` draws at a time); the lookup
        kernels bound their per-chunk temporaries the same way.  No
        ``(size, n)`` allocation ever happens.
    """

    def __init__(
        self,
        fitness: Union[FitnessLike, FitnessVector],
        method: Union[str, SelectionMethod, None] = None,
        *,
        kernel: str = "auto",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self.fitness = fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        if method is None:
            self.method = "log_bidding"
        elif isinstance(method, SelectionMethod):
            self.method = method.name
        else:
            self.method = str(method)
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.chunk_bytes = int(chunk_bytes)
        self.kernel = self._resolve_kernel(kernel)
        self._precompute()

    # ------------------------------------------------------------------
    def _resolve_kernel(self, kernel: str) -> str:
        if kernel == "auto":
            try:
                return _AUTO_KERNEL[self.method]
            except KeyError:
                raise UnknownMethodError(
                    f"no compiled kernel for method {self.method!r}; "
                    f"compilable: {sorted(_AUTO_KERNEL)}"
                ) from None
        if kernel == "faithful":
            try:
                return _FAITHFUL_KERNEL[self.method]
            except KeyError:
                raise UnknownMethodError(
                    f"method {self.method!r} has no bit-faithful compiled kernel; "
                    f"faithful-compilable: {sorted(_FAITHFUL_KERNEL)}"
                ) from None
        if kernel not in KERNELS:
            choices = ("auto", "faithful") + KERNELS
            raise ValueError(f"unknown kernel {kernel!r}; choose from {choices}")
        if kernel == "race" and self.method not in _RACE_METHODS:
            raise ValueError(
                f"the race kernel simulates a key race; method {self.method!r} "
                f"has none (race methods: {_RACE_METHODS})"
            )
        if kernel in ("searchsorted", "alias") and self.method == "independent":
            raise ValueError(
                "the independent baseline's bias must be simulated, not resampled; "
                "only its faithful race kernel is available"
            )
        return kernel

    def _precompute(self) -> None:
        f = self.fitness.values
        self.n = self.fitness.n
        self._zero_mask = f == 0.0
        self._has_zeros = bool(self._zero_mask.any())
        if self.kernel == "race":
            positive = f[~self._zero_mask]
            self._clamp_low = bool(positive.size and positive.min() < _CLAMP_THRESHOLD)
            self._positive_mask = ~self._zero_mask
            if self.method == "gumbel":
                with np.errstate(divide="ignore"):
                    self._log_f = np.log(f)
            elif self.method == "efraimidis_spirakis":
                with np.errstate(divide="ignore", over="ignore"):
                    self._inv_f = 1.0 / f
        elif self.kernel == "searchsorted":
            self._prefix = self.fitness.prefix_sums
        elif self.kernel == "alias":
            self._table = AliasTable(f)

    # ------------------------------------------------------------------
    @property
    def chunk_rows(self) -> int:
        """Draws processed per chunk under the memory budget."""
        if self.kernel == "race":
            return max(1, self.chunk_bytes // (8 * self.n))
        # 1-D kernels hold a handful of chunk-length temporaries.
        return max(1, self.chunk_bytes // (8 * 4))

    def select(self, rng=None) -> int:
        """Draw one index."""
        return int(self.select_many(1, rng=rng)[0])

    def select_many(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` indices into a fresh ``(size,)`` int64 array.

        Peak *additional* memory is O(chunk): the output array is the
        only size-proportional allocation.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        out = np.empty(size, dtype=np.int64)
        self._stream(size, resolve_rng(rng), out=out, counts=None)
        return out

    def counts(self, size: int, rng=None) -> np.ndarray:
        """Histogram of ``size`` draws in O(n + chunk) memory.

        Equivalent to ``np.bincount(self.select_many(size), minlength=n)``
        (identical for the same RNG state) without materialising draws.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        counts = np.zeros(self.n, dtype=np.int64)
        self._stream(size, resolve_rng(rng), out=None, counts=counts)
        return counts

    # ------------------------------------------------------------------
    def _stream(
        self, size: int, rng, out: Optional[np.ndarray], counts: Optional[np.ndarray]
    ) -> None:
        if size == 0:
            return
        if self.kernel == "race":
            self._stream_race(size, rng, out, counts)
        elif self.kernel == "searchsorted":
            self._stream_searchsorted(size, rng, out, counts)
        else:
            self._stream_alias(size, rng, out, counts)

    def _emit(self, winners: np.ndarray, start: int, stop: int, out, counts) -> None:
        if out is not None:
            out[start:stop] = winners
        else:
            counts += np.bincount(winners, minlength=self.n)

    def _stream_race(self, size, rng, out, counts) -> None:
        rows = min(self.chunk_rows, size)
        buf = np.empty((rows, self.n))
        fill = getattr(self, f"_fill_{self.method}")
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            chunk = buf[: stop - start]
            fill(chunk, rng)
            self._emit(np.argmax(chunk, axis=1), start, stop, out, counts)

    # -- race key fillers (each bit-compatible with its registry method) --
    def _fill_log_bidding(self, b: np.ndarray, rng) -> None:
        f = self.fitness.values
        _fill_uniform(rng, b)
        np.subtract(1.0, b, out=b)  # uniforms on (0, 1], safe under log
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            np.log(b, out=b)
            np.divide(b, f, out=b)
        if self._clamp_low:
            # Subnormal-but-positive fitness overflowed to -inf; clamp to
            # the largest finite loser so it still beats true zeros.
            overflowed = np.isneginf(b) & self._positive_mask
            if overflowed.any():
                b[overflowed] = np.finfo(np.float64).min
        if self._has_zeros:
            b[:, self._zero_mask] = -np.inf

    def _fill_gumbel(self, b: np.ndarray, rng) -> None:
        _fill_uniform(rng, b)
        np.subtract(1.0, b, out=b)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.log(b, out=b)
            np.negative(b, out=b)
            np.log(b, out=b)
            np.negative(b, out=b)
            np.add(b, self._log_f, out=b)
        if self._has_zeros:
            b[:, self._zero_mask] = -np.inf

    def _fill_efraimidis_spirakis(self, b: np.ndarray, rng) -> None:
        _fill_uniform(rng, b)
        np.subtract(1.0, b, out=b)
        with np.errstate(divide="ignore", over="ignore"):
            np.power(b, self._inv_f, out=b)
        # Tiny positive fitness underflows u**(1/f) to 0; lift above the
        # zero-fitness losers (mirrors es_keys).
        underflowed = (b == 0.0) & self._positive_mask
        if underflowed.any():
            b[underflowed] = np.nextafter(0.0, 1.0)
        if self._has_zeros:
            b[:, self._zero_mask] = 0.0

    def _fill_independent(self, b: np.ndarray, rng) -> None:
        _fill_uniform(rng, b)
        np.subtract(1.0, b, out=b)
        np.multiply(self.fitness.values, b, out=b)
        if self._has_zeros:
            # Mirror independent_keys: a zero-fitness entry must never tie
            # an underflowed positive key at 0.0 and steal the arg-max.
            b[:, self._zero_mask] = -np.inf

    # -- lookup kernels -------------------------------------------------
    def _stream_searchsorted(self, size, rng, out, counts) -> None:
        f = self.fitness.values
        prefix = self._prefix
        rows = min(self.chunk_rows, size)
        buf = np.empty(rows)
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            spins = buf[: stop - start]
            _fill_uniform(rng, spins)
            np.multiply(spins, prefix[-1], out=spins)
            idx = np.searchsorted(prefix, spins, side="right").astype(np.int64)
            np.minimum(idx, self.n - 1, out=idx)
            if self._has_zeros:
                # FP boundary collisions can land on zero-width intervals;
                # repair the (measure-zero) stragglers one by one.
                for bad in np.flatnonzero(f[idx] == 0.0):
                    idx[bad] = BinarySearchSelection._skip_zeros(
                        f, prefix, int(idx[bad]), float(spins[bad])
                    )
            self._emit(idx, start, stop, out, counts)

    def _stream_alias(self, size, rng, out, counts) -> None:
        rows = min(self.chunk_rows, size)
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            self._emit(self._table.draw_many(rng, stop - start), start, stop, out, counts)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledWheel(n={self.n}, method={self.method!r}, "
            f"kernel={self.kernel!r}, chunk_rows={self.chunk_rows})"
        )


def compile_wheel(
    wheel,
    *,
    kernel: str = "auto",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> CompiledWheel:
    """Compile a :class:`repro.core.RouletteWheel` (or raw fitness).

    Preserves the wheel's bound method; raw arrays compile the default
    ``log_bidding``.
    """
    from repro.core.selector import RouletteWheel

    if isinstance(wheel, RouletteWheel):
        return CompiledWheel(
            wheel.fitness, wheel.method, kernel=kernel, chunk_bytes=chunk_bytes
        )
    return CompiledWheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)


def stream_counts(
    wheel,
    size: int,
    *,
    rng=None,
    kernel: str = "faithful",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Constant-memory selection histogram — the Table I/II driver.

    Accumulates ``np.bincount`` chunk by chunk, so 10⁹-draw replications
    run in O(n + chunk) memory regardless of ``size``.

    Parameters
    ----------
    wheel:
        A :class:`repro.core.RouletteWheel` (its method and RNG are
        honoured), a :class:`CompiledWheel` (used as-is), or a raw
        fitness vector (compiled with the default method).
    size:
        Number of draws.
    rng:
        Override the uniform source (defaults to the wheel's RNG, or a
        fresh NumPy generator for raw fitness).
    kernel:
        Kernel policy; ``"faithful"`` (default) keeps the replication an
        honest simulation of the bound method, ``"auto"`` switches to
        the fastest distribution-preserving sampler.
    chunk_bytes:
        Memory budget per chunk (ignored for an existing CompiledWheel).
    """
    from repro.core.selector import RouletteWheel

    if isinstance(wheel, CompiledWheel):
        return wheel.counts(size, rng=rng)
    if isinstance(wheel, RouletteWheel):
        compiled = compile_wheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)
        return compiled.counts(size, rng=wheel.rng if rng is None else rng)
    compiled = CompiledWheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)
    return compiled.counts(size, rng=rng)
