"""Compiled selection kernels: validate once, stream draws forever.

The method registry in :mod:`repro.core.methods` optimises for clarity:
every ``select_many`` call re-validates nothing but *recomputes* all
per-wheel constants (``1/f``, ``log f``, cumulative sums, alias tables)
and materialises intermediate key matrices chunk by chunk.  That is the
right trade-off for single draws on a changing wheel — the paper's
regime — but the wrong one for the paper's *evidence*: Tables I and II
need ~10⁹ draws from a **static** wheel per configuration.

:class:`CompiledWheel` moves all method-specific preprocessing to
construction time and exposes two streaming entry points:

* :meth:`CompiledWheel.select_many` — draws into a caller-visible array,
* :meth:`CompiledWheel.counts` — accumulates ``np.bincount`` per chunk,
  so a 10⁹-draw histogram runs in O(n + chunk) memory.

Three concrete kernels cover every registered method:

``race``
    The paper's key race (one key per item per draw), fused and
    buffer-reusing: uniforms are generated directly into a pinned
    ``(rows, n)`` chunk buffer, transformed in place, and arg-maxed.
    Bit-compatible with the registry methods — same RNG consumption,
    same keys, same winners — at a bounded memory footprint.
``searchsorted``
    Inverse-CDF lookup over precomputed prefix sums, O(log n) per draw.
    Bit-compatible with ``binary_search`` / ``prefix_sum``.
``alias``
    Walker/Vose table built once, O(1) per draw.  Bit-compatible with
    the ``alias`` registry method.

Kernel selection policies:

``"faithful"``
    Reproduce the bound method's registry output bit-for-bit (the
    Monte-Carlo harness uses this, so compiled table replications are
    byte-identical to the uncompiled ones).
``"auto"``
    Fastest kernel *with the method's exact selection distribution*.
    The three monotone-equivalent race formulations (``log_bidding``,
    ``gumbel``, ``efraimidis_spirakis``) and every other exact method
    compile to the precomputed samplers; the ``independent`` baseline's
    *bias* is part of its contract, so it always keeps its faithful
    race.  ``auto`` never changes a method's distribution — only its
    implementation.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fitness import FitnessVector
from repro.core.methods.alias import AliasTable
from repro.core.methods.base import SelectionMethod
from repro.core.methods.binary_search import BinarySearchSelection
from repro.errors import FitnessError, UnknownMethodError
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = [
    "CompiledWheel",
    "AcceptanceWheel",
    "compile_wheel",
    "stream_counts",
    "wheel_from_bytes",
    "DEFAULT_CHUNK_BYTES",
    "KERNELS",
    "WHEEL_FORMAT",
    "ACCEPTANCE_FORMAT",
]

#: Default per-chunk buffer budget.  Small enough to stay cache-friendly
#: (the race kernel is measurably faster with chunks that fit in L2/L3),
#: large enough to amortise per-chunk Python overhead.
DEFAULT_CHUNK_BYTES = 2 << 20

#: Concrete kernel names (policies ``auto`` / ``faithful`` resolve to one).
KERNELS = ("race", "searchsorted", "alias")

#: Methods realised as a fused key race (key transform per method).
_RACE_METHODS = ("log_bidding", "gumbel", "efraimidis_spirakis", "independent")

#: Fastest distribution-preserving kernel per method.
_AUTO_KERNEL: Dict[str, str] = {
    "log_bidding": "alias",
    "gumbel": "alias",
    "efraimidis_spirakis": "alias",
    "stochastic_acceptance": "alias",
    "linear_scan": "searchsorted",
    "fenwick": "searchsorted",
    "prefix_sum": "searchsorted",
    "binary_search": "searchsorted",
    "alias": "alias",
    "independent": "race",  # the bias is the point; never resample it
}

#: Kernel that reproduces the registry method's draws bit-for-bit.
_FAITHFUL_KERNEL: Dict[str, str] = {
    "log_bidding": "race",
    "gumbel": "race",
    "efraimidis_spirakis": "race",
    "independent": "race",
    "prefix_sum": "searchsorted",
    "binary_search": "searchsorted",
    "alias": "alias",
}

#: Positive fitness below this can overflow ``log(u)/f`` to -inf
#: (|log u| <= log 2^53 ~ 36.75, overflow at f < ~2e-307).
_CLAMP_THRESHOLD = 1e-306

#: Serialization format tag for :meth:`CompiledWheel.to_bytes` /
#: ``__getstate__`` (bump on layout changes).
WHEEL_FORMAT = "repro/compiled-wheel/v1"

#: Serialization format tag for :meth:`AcceptanceWheel.to_bytes`.
ACCEPTANCE_FORMAT = "repro/acceptance-wheel/v1"


def _canonical_delta(
    indices, values, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise an ``(indices, values)`` delta.

    Duplicate indices resolve last-wins (matching a sequential update
    loop and :meth:`repro.core.dynamic.FenwickSampler.update_many`).
    Validation is atomic and O(k): a bad index or value raises before
    any caller state changes.
    """
    idx = np.asarray(indices, dtype=np.int64).ravel()
    vals = np.asarray(values, dtype=np.float64).ravel()
    if idx.shape != vals.shape:
        raise ValueError(
            f"indices and values must match, got {idx.shape} vs {vals.shape}"
        )
    if idx.size == 0:
        raise ValueError("update delta is empty")
    if int(idx.min()) < 0 or int(idx.max()) >= n:
        bad = idx[(idx < 0) | (idx >= n)][0]
        raise IndexError(f"index {int(bad)} out of range for n={n}")
    if not np.all(np.isfinite(vals)) or np.any(vals < 0.0):
        raise FitnessError("fitness values must be finite and >= 0")
    uniq, first = np.unique(idx[::-1], return_index=True)
    return uniq, vals[::-1][first]


def _fill_uniform(rng, buf: np.ndarray) -> None:
    """Fill ``buf`` with uniforms on [0, 1) without allocating when possible."""
    if isinstance(rng, np.random.Generator):
        rng.random(out=buf)
    else:
        buf[...] = rng.random(buf.shape)


class CompiledWheel:
    """A fitness vector compiled to a streaming selection kernel.

    Parameters
    ----------
    fitness:
        The wheel (anything :class:`repro.core.fitness.FitnessVector`
        accepts); validated exactly once.
    method:
        Registry name or :class:`SelectionMethod` instance whose
        selection distribution (and, under ``faithful``, exact draws)
        this wheel reproduces.  Default: the paper's ``log_bidding``.
    kernel:
        ``"auto"`` (default), ``"faithful"``, or a concrete kernel name
        from :data:`KERNELS`.
    chunk_bytes:
        Memory budget for the per-chunk work buffer.  The race kernel
        never allocates more than ``chunk_bytes`` for its key chunk
        (``rows = chunk_bytes // (8 n)`` draws at a time); the lookup
        kernels bound their per-chunk temporaries the same way.  No
        ``(size, n)`` allocation ever happens.
    """

    def __init__(
        self,
        fitness: Union[FitnessLike, FitnessVector],
        method: Union[str, SelectionMethod, None] = None,
        *,
        kernel: str = "auto",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self.fitness = fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        if method is None:
            self.method = "log_bidding"
        elif isinstance(method, SelectionMethod):
            self.method = method.name
        else:
            self.method = str(method)
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.chunk_bytes = int(chunk_bytes)
        #: The caller's kernel request ("auto"/"faithful"/concrete); part
        #: of the wheel's content address in repro.service.registry.
        self.policy = str(kernel)
        self.kernel = self._resolve_kernel(kernel)
        self._precompute()

    # ------------------------------------------------------------------
    def _resolve_kernel(self, kernel: str) -> str:
        if kernel == "auto":
            try:
                return _AUTO_KERNEL[self.method]
            except KeyError:
                raise UnknownMethodError(
                    f"no compiled kernel for method {self.method!r}; "
                    f"compilable: {sorted(_AUTO_KERNEL)}"
                ) from None
        if kernel == "faithful":
            try:
                return _FAITHFUL_KERNEL[self.method]
            except KeyError:
                raise UnknownMethodError(
                    f"method {self.method!r} has no bit-faithful compiled kernel; "
                    f"faithful-compilable: {sorted(_FAITHFUL_KERNEL)}"
                ) from None
        if kernel not in KERNELS:
            choices = ("auto", "faithful") + KERNELS
            raise ValueError(f"unknown kernel {kernel!r}; choose from {choices}")
        if kernel == "race" and self.method not in _RACE_METHODS:
            raise ValueError(
                f"the race kernel simulates a key race; method {self.method!r} "
                f"has none (race methods: {_RACE_METHODS})"
            )
        if kernel in ("searchsorted", "alias") and self.method == "independent":
            raise ValueError(
                "the independent baseline's bias must be simulated, not resampled; "
                "only its faithful race kernel is available"
            )
        return kernel

    def _precompute(self) -> None:
        f = self.fitness.values
        self.n = self.fitness.n
        self._zero_mask = f == 0.0
        self._has_zeros = bool(self._zero_mask.any())
        if self.kernel == "race":
            positive = f[~self._zero_mask]
            self._clamp_low = bool(positive.size and positive.min() < _CLAMP_THRESHOLD)
            self._positive_mask = ~self._zero_mask
            if self.method == "gumbel":
                with np.errstate(divide="ignore"):
                    self._log_f = np.log(f)
            elif self.method == "efraimidis_spirakis":
                with np.errstate(divide="ignore", over="ignore"):
                    self._inv_f = 1.0 / f
        elif self.kernel == "searchsorted":
            self._prefix = self.fitness.prefix_sums
        elif self.kernel == "alias":
            self._table = AliasTable(f)

    # ------------------------------------------------------------------
    @property
    def chunk_rows(self) -> int:
        """Draws processed per chunk under the memory budget."""
        if self.kernel == "race":
            return max(1, self.chunk_bytes // (8 * self.n))
        # 1-D kernels hold a handful of chunk-length temporaries.
        return max(1, self.chunk_bytes // (8 * 4))

    def select(self, rng=None) -> int:
        """Draw one index."""
        return int(self.select_many(1, rng=rng)[0])

    def select_many(self, size: int, rng=None) -> np.ndarray:
        """Draw ``size`` indices into a fresh ``(size,)`` int64 array.

        Peak *additional* memory is O(chunk): the output array is the
        only size-proportional allocation.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        out = np.empty(size, dtype=np.int64)
        self._stream(size, resolve_rng(rng), out=out, counts=None)
        return out

    def counts(self, size: int, rng=None) -> np.ndarray:
        """Histogram of ``size`` draws in O(n + chunk) memory.

        Equivalent to ``np.bincount(self.select_many(size), minlength=n)``
        (identical for the same RNG state) without materialising draws.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        counts = np.zeros(self.n, dtype=np.int64)
        self._stream(size, resolve_rng(rng), out=None, counts=counts)
        return counts

    # ------------------------------------------------------------------
    def _stream(
        self, size: int, rng, out: Optional[np.ndarray], counts: Optional[np.ndarray]
    ) -> None:
        if size == 0:
            return
        if self.kernel == "race":
            self._stream_race(size, rng, out, counts)
        elif self.kernel == "searchsorted":
            self._stream_searchsorted(size, rng, out, counts)
        else:
            self._stream_alias(size, rng, out, counts)

    def _emit(self, winners: np.ndarray, start: int, stop: int, out, counts) -> None:
        if out is not None:
            out[start:stop] = winners
        else:
            counts += np.bincount(winners, minlength=self.n)

    def _stream_race(self, size, rng, out, counts) -> None:
        rows = min(self.chunk_rows, size)
        buf = np.empty((rows, self.n))
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            chunk = buf[: stop - start]
            _fill_uniform(rng, chunk)
            self._emit(self._race_chunk(chunk), start, stop, out, counts)

    def _race_chunk(self, chunk: np.ndarray) -> np.ndarray:
        """Transform a uniform chunk into keys in place and arg-max each row.

        Row-independent by construction, so any row partitioning of the
        draw stream (solo requests, coalesced batches, chunk boundaries)
        yields identical winners — the property :meth:`select_segments`
        is built on.
        """
        getattr(self, f"_transform_{self.method}")(chunk)
        return np.argmax(chunk, axis=1)

    # -- race key transforms (uniforms -> keys, in place; each
    # bit-compatible with its registry method) --------------------------
    def _transform_log_bidding(self, b: np.ndarray) -> None:
        f = self.fitness.values
        np.subtract(1.0, b, out=b)  # uniforms on (0, 1], safe under log
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            np.log(b, out=b)
            np.divide(b, f, out=b)
        if self._clamp_low:
            # Subnormal-but-positive fitness overflowed to -inf; clamp to
            # the largest finite loser so it still beats true zeros.
            overflowed = np.isneginf(b) & self._positive_mask
            if overflowed.any():
                b[overflowed] = np.finfo(np.float64).min
        if self._has_zeros:
            b[:, self._zero_mask] = -np.inf

    def _transform_gumbel(self, b: np.ndarray) -> None:
        np.subtract(1.0, b, out=b)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.log(b, out=b)
            np.negative(b, out=b)
            np.log(b, out=b)
            np.negative(b, out=b)
            np.add(b, self._log_f, out=b)
        if self._has_zeros:
            b[:, self._zero_mask] = -np.inf

    def _transform_efraimidis_spirakis(self, b: np.ndarray) -> None:
        np.subtract(1.0, b, out=b)
        with np.errstate(divide="ignore", over="ignore"):
            np.power(b, self._inv_f, out=b)
        # Tiny positive fitness underflows u**(1/f) to 0; lift above the
        # zero-fitness losers (mirrors es_keys).
        underflowed = (b == 0.0) & self._positive_mask
        if underflowed.any():
            b[underflowed] = np.nextafter(0.0, 1.0)
        if self._has_zeros:
            b[:, self._zero_mask] = 0.0

    def _transform_independent(self, b: np.ndarray) -> None:
        np.subtract(1.0, b, out=b)
        np.multiply(self.fitness.values, b, out=b)
        if self._has_zeros:
            # Mirror independent_keys: a zero-fitness entry must never tie
            # an underflowed positive key at 0.0 and steal the arg-max.
            b[:, self._zero_mask] = -np.inf

    # -- lookup kernels -------------------------------------------------
    def _lookup_searchsorted(self, spins: np.ndarray) -> np.ndarray:
        """Scale spins in place to wheel coordinates and binary-search.

        Element-independent, so spin-stream partitioning never changes
        the draws (see :meth:`select_segments`).
        """
        f = self.fitness.values
        prefix = self._prefix
        np.multiply(spins, prefix[-1], out=spins)
        idx = np.searchsorted(prefix, spins, side="right").astype(np.int64)
        np.minimum(idx, self.n - 1, out=idx)
        if self._has_zeros:
            # FP boundary collisions can land on zero-width intervals;
            # repair the (measure-zero) stragglers one by one.
            for bad in np.flatnonzero(f[idx] == 0.0):
                idx[bad] = BinarySearchSelection._skip_zeros(
                    f, prefix, int(idx[bad]), float(spins[bad])
                )
        return idx

    def _stream_searchsorted(self, size, rng, out, counts) -> None:
        rows = min(self.chunk_rows, size)
        buf = np.empty(rows)
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            spins = buf[: stop - start]
            _fill_uniform(rng, spins)
            self._emit(self._lookup_searchsorted(spins), start, stop, out, counts)

    def _stream_alias(self, size, rng, out, counts) -> None:
        rows = min(self.chunk_rows, size)
        for start in range(0, size, rows):
            stop = min(start + rows, size)
            self._emit(self._table.draw_many(rng, stop - start), start, stop, out, counts)

    # ------------------------------------------------------------------
    # batched multi-request entry point
    # ------------------------------------------------------------------
    def select_segments(
        self, segments: Sequence[Tuple[int, object]]
    ) -> np.ndarray:
        """Draw every ``(size, rng)`` segment in one fused kernel pass.

        Returns the concatenation of the per-segment draws in segment
        order, **bitwise identical** to calling ``select_many(size,
        rng=rng)`` once per segment: each segment's uniforms come from
        its own source in the same order, and every kernel transform is
        element- (or row-) independent.  This is the coalescing
        primitive behind :mod:`repro.service` — concurrent requests with
        per-request substreams are served by one kernel invocation
        without changing any response.

        Peak additional memory is O(chunk) exactly as in
        :meth:`select_many`; segment boundaries and chunk boundaries are
        independent.
        """
        sizes = []
        for size, _rng in segments:
            size = int(size)
            if size < 0:
                raise ValueError(f"segment sizes must be non-negative, got {size}")
            sizes.append(size)
        total = int(sum(sizes))
        out = np.empty(total, dtype=np.int64)
        if total == 0:
            return out
        if total <= self.chunk_rows and self._fused_segments(segments, sizes, total, out):
            return out
        if self.kernel == "race":
            rows = min(self.chunk_rows, total)
            buf = np.empty((rows, self.n))
            self._stream_segments(segments, out, buf, self._race_chunk)
        elif self.kernel == "searchsorted":
            buf = np.empty(min(self.chunk_rows, total))
            self._stream_segments(segments, out, buf, self._lookup_searchsorted)
        else:
            buf = np.empty(min(self.chunk_rows, total))
            self._stream_segments(segments, out, buf, self._table.draw_many_from)
        return out

    def _fused_segments(self, segments, sizes, total, out) -> bool:
        """Single-pass fast path for batches of fresh counter streams.

        When every segment source is an unused
        :class:`repro.rng.streams.SplitMixStream`, the whole batch's
        uniforms are one vectorized :func:`segment_uniforms` call — no
        per-segment fill loop.  Bit-identical to the generic path (the
        counters are pure functions of position) and within the chunk
        memory budget (the caller checks ``total <= chunk_rows``).
        Returns False to fall back to the generic streaming loop.
        """
        from repro.rng.streams import SplitMixStream, segment_uniforms

        rngs = [rng for _, rng in segments]
        if not all(type(rng) is SplitMixStream and rng.count == 0 for rng in rngs):
            return False
        seeds = [rng.seed for rng in rngs]
        if self.kernel == "race":
            counts = np.asarray(sizes, dtype=np.int64) * self.n
            keys = segment_uniforms(seeds, counts).reshape(total, self.n)
            out[:] = self._race_chunk(keys)
            per_draw = self.n
        else:
            uniforms = segment_uniforms(seeds, sizes)
            if self.kernel == "searchsorted":
                out[:] = self._lookup_searchsorted(uniforms)
            else:
                out[:] = self._table.draw_many_from(uniforms)
            per_draw = 1
        for rng, size in zip(rngs, sizes):
            rng.advance(size * per_draw)
        return True

    @staticmethod
    def _stream_segments(segments, out, buf, finish) -> None:
        """Fill ``buf`` across segment boundaries; flush full chunks.

        ``finish(chunk)`` maps a filled prefix of the work buffer to
        int64 draws (keys -> argmax for the race kernel, uniforms ->
        indices for the lookup kernels).
        """
        rows = buf.shape[0]
        filled = 0
        emitted = 0
        for size, rng in segments:
            done = 0
            while done < size:
                take = min(int(size) - done, rows - filled)
                _fill_uniform(rng, buf[filled : filled + take])
                filled += take
                done += take
                if filled == rows:
                    out[emitted : emitted + filled] = finish(buf[:filled])
                    emitted += filled
                    filled = 0
        if filled:
            out[emitted : emitted + filled] = finish(buf[:filled])

    # ------------------------------------------------------------------
    # incremental recompilation (the delta path behind versioned wheels
    # in repro.service.registry)
    # ------------------------------------------------------------------
    def apply_updates(
        self, indices, values, *, new_values: Optional[np.ndarray] = None
    ) -> "CompiledWheel":
        """Copy-on-write clone with ``values[indices]`` replaced.

        Instead of the full registration path (content hashing plus
        ``_precompute`` — an O(n) *Python-loop* Vose build for the alias
        kernel), the clone patches the per-method key constants at the
        touched indices and recomputes only the vectorised O(n)
        artifacts (masks, prefix sums).  A wheel on the ``alias`` kernel
        under the ``auto`` policy recompiles to ``searchsorted`` — the
        cheapest kernel to rebuild, with the method's exact
        distribution; ``faithful`` and explicitly-requested alias wheels
        keep their table (full rebuild) so the bit-contract survives
        updates.

        The result serves draws bitwise identically to a freshly
        compiled wheel on the same values with the same resolved kernel.

        Parameters
        ----------
        indices, values:
            The delta; duplicates resolve last-wins, validation is
            atomic (bounds, finite, non-negative).
        new_values:
            Optional precomputed result vector (e.g. from a
            :class:`repro.core.dynamic.FenwickSampler` mirror that
            already applied the same delta); skips the copy+scatter.
        """
        uniq, vals_u = _canonical_delta(indices, values, self.n)
        if new_values is None:
            f = np.array(self.fitness.values)  # writable copy
            f[uniq] = vals_u
        else:
            f = np.asarray(new_values, dtype=np.float64)
        new = CompiledWheel.__new__(CompiledWheel)
        new.fitness = FitnessVector(f)  # re-validates; raises on all-zero
        new.method = self.method
        new.policy = self.policy
        new.chunk_bytes = self.chunk_bytes
        new.n = self.n
        if self.kernel == "alias" and self.policy == "auto":
            new.kernel = "searchsorted"
        else:
            new.kernel = self.kernel
        fv = new.fitness.values
        new._zero_mask = fv == 0.0
        new._has_zeros = bool(new._zero_mask.any())
        if new.kernel == "race":
            positive = fv[~new._zero_mask]
            new._clamp_low = bool(
                positive.size and positive.min() < _CLAMP_THRESHOLD
            )
            new._positive_mask = ~new._zero_mask
            # Patch the key constants at the touched indices only; the
            # elementwise transforms make the patch bitwise identical
            # to a full recompute.
            if self.method == "gumbel":
                log_f = self._log_f.copy()
                with np.errstate(divide="ignore"):
                    log_f[uniq] = np.log(vals_u)
                new._log_f = log_f
            elif self.method == "efraimidis_spirakis":
                inv_f = self._inv_f.copy()
                with np.errstate(divide="ignore", over="ignore"):
                    inv_f[uniq] = 1.0 / vals_u
                new._inv_f = inv_f
        elif new.kernel == "searchsorted":
            new._prefix = new.fitness.prefix_sums
        else:
            new._table = AliasTable(fv)
        return new

    # ------------------------------------------------------------------
    # serialization (ships compiled artifacts to workers without
    # re-running _precompute; see repro.service.registry)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: fitness + precomputed tables, no lazy caches."""
        state: Dict[str, object] = {
            "format": WHEEL_FORMAT,
            "values": np.asarray(self.fitness.values),
            "method": self.method,
            "kernel": self.kernel,
            "policy": self.policy,
            "chunk_bytes": self.chunk_bytes,
        }
        if self.kernel == "race":
            if self.method == "gumbel":
                state["log_f"] = self._log_f
            elif self.method == "efraimidis_spirakis":
                state["inv_f"] = self._inv_f
        elif self.kernel == "searchsorted":
            state["prefix"] = np.asarray(self._prefix)
        else:
            state["prob"] = self._table._prob
            state["alias"] = self._table._alias
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore without recomputing any table (``_precompute`` is not run).

        Only the O(n) boolean masks are rederived from the fitness
        values; the expensive artifacts — the Vose alias table, prefix
        sums, per-method key constants — come straight from ``state``.
        """
        if state.get("format") != WHEEL_FORMAT:
            raise ValueError(
                f"unsupported compiled-wheel state {state.get('format')!r}; "
                f"expected {WHEEL_FORMAT!r}"
            )
        self.fitness = FitnessVector(np.asarray(state["values"], dtype=np.float64))
        self.method = str(state["method"])
        self.kernel = str(state["kernel"])
        self.policy = str(state.get("policy", state["kernel"]))
        self.chunk_bytes = int(state["chunk_bytes"])  # type: ignore[arg-type]
        f = self.fitness.values
        self.n = self.fitness.n
        self._zero_mask = f == 0.0
        self._has_zeros = bool(self._zero_mask.any())
        if self.kernel == "race":
            positive = f[~self._zero_mask]
            self._clamp_low = bool(positive.size and positive.min() < _CLAMP_THRESHOLD)
            self._positive_mask = ~self._zero_mask
            if "log_f" in state:
                self._log_f = np.asarray(state["log_f"], dtype=np.float64)
            if "inv_f" in state:
                self._inv_f = np.asarray(state["inv_f"], dtype=np.float64)
        elif self.kernel == "searchsorted":
            self._prefix = np.asarray(state["prefix"], dtype=np.float64)
        else:
            table = AliasTable.__new__(AliasTable)
            table.n = self.n
            table._prob = np.asarray(state["prob"], dtype=np.float64)
            table._alias = np.asarray(state["alias"], dtype=np.int64)
            self._table = table

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing ``npz`` blob (no pickle).

        The blob carries the fitness values and every precomputed table,
        so :meth:`from_bytes` restores a wheel whose ``select_many`` is
        bitwise identical without re-running ``_precompute`` — cheap to
        ship to worker processes or cache on disk.
        """
        state = self.__getstate__()
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        meta = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        bio = io.BytesIO()
        header = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(bio, __meta__=header, **arrays)
        return bio.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledWheel":
        """Restore a wheel serialized by :meth:`to_bytes`."""
        state = _load_wheel_state(blob)
        wheel = cls.__new__(cls)
        wheel.__setstate__(state)
        return wheel

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledWheel(n={self.n}, method={self.method!r}, "
            f"kernel={self.kernel!r}, chunk_rows={self.chunk_rows})"
        )


def _load_wheel_state(blob: bytes) -> Dict[str, object]:
    """Decode a wheel ``npz`` blob into its state dict (meta + arrays)."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
        if "__meta__" not in npz.files:
            raise ValueError("not a wheel blob (missing __meta__)")
        state: Dict[str, object] = json.loads(bytes(npz["__meta__"]).decode("utf-8"))
        for name in npz.files:
            if name != "__meta__":
                state[name] = npz[name]
    return state


def wheel_from_bytes(blob: bytes) -> Union["CompiledWheel", "AcceptanceWheel"]:
    """Restore either serving-wheel kind from its blob (format sniffing)."""
    state = _load_wheel_state(blob)
    fmt = state.get("format")
    if fmt == ACCEPTANCE_FORMAT:
        return AcceptanceWheel(
            np.asarray(state["values"], dtype=np.float64),
            policy=str(state.get("policy", "auto")),
        )
    if fmt == WHEEL_FORMAT:
        wheel = CompiledWheel.__new__(CompiledWheel)
        wheel.__setstate__(state)
        return wheel
    raise ValueError(f"unsupported wheel blob format {fmt!r}")


class AcceptanceWheel:
    """Update-free serving backend: stochastic acceptance over raw values.

    Lipowski & Lipowska's rejection sampler needs **no precomputation**
    — the only derived state is the running maximum weight — which makes
    it the natural backend for wheels that churn faster than they are
    drawn from (``backend="stochastic_acceptance"`` in the serving
    registry).  :meth:`apply_updates` is O(k) plus the copy-on-write
    value copy; the only O(n) scan happens when an update lowers the
    current maximum itself.

    Draws are bitwise identical to the registry method
    :class:`repro.core.methods.stochastic_acceptance.StochasticAcceptanceSelection`
    on the same uniform stream (same propose/accept loop, same batch
    size), so direct replay against the uncompiled method is the
    determinism oracle.
    """

    #: Mirrors ``StochasticAcceptanceSelection._BATCH`` — part of the
    #: bit-contract with the registry method.
    _BATCH = 4096

    method = "stochastic_acceptance"
    kernel = "acceptance"

    def __init__(
        self,
        fitness: Union[FitnessLike, FitnessVector],
        *,
        policy: str = "auto",
        fmax: Optional[float] = None,
    ) -> None:
        self.fitness = (
            fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        )
        self.n = self.fitness.n
        self.policy = str(policy)
        # FitnessVector rejects the all-zero wheel, so fmax > 0 here.
        self._fmax = float(self.fitness.values.max()) if fmax is None else float(fmax)

    @property
    def fmax(self) -> float:
        """The running maximum weight — the backend's entire derived state."""
        return self._fmax

    def select(self, rng=None) -> int:
        """Draw one index."""
        return int(self.select_many(1, rng=rng)[0])

    def select_many(self, size: int, rng=None) -> np.ndarray:
        """``size`` draws via the batched propose/accept loop.

        Identical uniform consumption and outputs as
        ``StochasticAcceptanceSelection.select_many`` with a fresh
        ``max(f)`` — except the max comes from the running value, so no
        O(n) pass happens per call.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        f = self.fitness.values
        n = self.n
        fmax = self._fmax
        rng = resolve_rng(rng)
        out = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            m = max(self._BATCH, size - filled)
            idx = np.minimum(
                (np.asarray(rng.random(m)) * n).astype(np.int64), n - 1
            )
            accept = np.asarray(rng.random(m)) * fmax < f[idx]
            won = idx[accept]
            take = min(len(won), size - filled)
            out[filled : filled + take] = won[:take]
            filled += take
        return out

    def select_segments(
        self, segments: Sequence[Tuple[int, object]]
    ) -> np.ndarray:
        """Per-segment draws, concatenated in segment order.

        Rejection sampling consumes a data-dependent number of uniforms,
        so there is no fused multi-segment pass — but each segment's
        stream is independent, so coalescing still never changes a
        response.
        """
        outs = [self.select_many(int(size), rng=rng) for size, rng in segments]
        if not outs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(outs)

    def apply_updates(
        self, indices, values, *, new_values: Optional[np.ndarray] = None
    ) -> "AcceptanceWheel":
        """Copy-on-write clone with ``values[indices]`` replaced.

        Tracks the running max: O(k) when no patched position lowers the
        current maximum, one vectorised O(n) re-scan when it does.  The
        resulting ``fmax`` is exactly ``float(new.values.max())``, so
        draws stay bit-identical to a fresh backend on the same values.
        """
        uniq, vals_u = _canonical_delta(indices, values, self.n)
        old = self.fitness.values
        if new_values is None:
            f = np.array(old)
            f[uniq] = vals_u
        else:
            f = np.asarray(new_values, dtype=np.float64)
        lowered = bool(np.any((old[uniq] == self._fmax) & (vals_u < self._fmax)))
        if lowered:
            fmax = None  # the maximum may have moved; re-scan in __init__
        else:
            fmax = max(self._fmax, float(vals_u.max()))
        return AcceptanceWheel(f, policy=self.policy, fmax=fmax)

    def to_bytes(self) -> bytes:
        """Serialize to the same self-describing ``npz`` blob scheme as
        :meth:`CompiledWheel.to_bytes` (restored by :func:`wheel_from_bytes`)."""
        meta = {"format": ACCEPTANCE_FORMAT, "method": self.method, "policy": self.policy}
        bio = io.BytesIO()
        header = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(bio, __meta__=header, values=np.asarray(self.fitness.values))
        return bio.getvalue()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AcceptanceWheel(n={self.n}, fmax={self._fmax:g})"


def compile_wheel(
    wheel,
    *,
    kernel: str = "auto",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> CompiledWheel:
    """Compile a :class:`repro.core.RouletteWheel` (or raw fitness).

    Preserves the wheel's bound method; raw arrays compile the default
    ``log_bidding``.
    """
    from repro.core.selector import RouletteWheel

    if isinstance(wheel, RouletteWheel):
        return CompiledWheel(
            wheel.fitness, wheel.method, kernel=kernel, chunk_bytes=chunk_bytes
        )
    return CompiledWheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)


def stream_counts(
    wheel,
    size: int,
    *,
    rng=None,
    kernel: str = "faithful",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> np.ndarray:
    """Constant-memory selection histogram — the Table I/II driver.

    Accumulates ``np.bincount`` chunk by chunk, so 10⁹-draw replications
    run in O(n + chunk) memory regardless of ``size``.

    Parameters
    ----------
    wheel:
        A :class:`repro.core.RouletteWheel` (its method and RNG are
        honoured), a :class:`CompiledWheel` (used as-is), or a raw
        fitness vector (compiled with the default method).
    size:
        Number of draws.
    rng:
        Override the uniform source (defaults to the wheel's RNG, or a
        fresh NumPy generator for raw fitness).
    kernel:
        Kernel policy; ``"faithful"`` (default) keeps the replication an
        honest simulation of the bound method, ``"auto"`` switches to
        the fastest distribution-preserving sampler.
    chunk_bytes:
        Memory budget per chunk (ignored for an existing CompiledWheel).
    """
    from repro.core.selector import RouletteWheel

    if isinstance(wheel, CompiledWheel):
        return wheel.counts(size, rng=rng)
    if isinstance(wheel, RouletteWheel):
        compiled = compile_wheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)
        return compiled.counts(size, rng=wheel.rng if rng is None else rng)
    compiled = CompiledWheel(wheel, kernel=kernel, chunk_bytes=chunk_bytes)
    return compiled.counts(size, rng=rng)
