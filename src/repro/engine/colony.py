"""Lockstep batched colony construction: every ant advances per kernel call.

The ACO colonies are the paper's motivating workload — visited-city
zeroing drives ``k`` far below ``n`` — yet the scalar colonies draw one
next-city at a time through Python-level ``SelectionMethod.select``
calls, so a tour costs ``n`` interpreter round-trips per ant.  This
module advances **all** ants one construction step per kernel
invocation: the choice weights form an ``(n_ants, n)`` matrix (one wheel
per row) and a single vectorised batched selection draws every ant's
next city at once — the data-parallel layout of the GPU implementations
the paper cites (ref [6]).

Two selection modes, mirroring the compiled-wheel policy split of
:mod:`repro.engine.compiled`:

* **fast** (default) — the exact methods (``log_bidding`` / ``gumbel`` /
  ``prefix_sum``) share one two-level *blocked inverse-CDF* kernel
  (:func:`blocked_choice`): per row, block sums are fused with the
  unvisited mask in a single ``einsum`` pass, a tiny cumulative scan
  over ``n/block`` blocks locates the winning block, and the winner is
  resolved inside one block.  Distributionally identical to the scalar
  draw (every exact method samples the same law ``F_i``) but touches
  ``O(n + block)`` cumsum entries instead of ``O(n)``, which is what
  clears the end-to-end speedup gate on one core.  The biased
  ``independent`` baseline keeps its key form (``f_i * u_i`` row-wise)
  so the bias demonstration survives vectorisation.
* **faithful** (``streams=``) — per-ant RNG substreams
  (:class:`AntStreams`) replay the scalar methods' arithmetic
  bit-for-bit: ant ``i``'s row consumes exactly the draws that
  ``construct(rng=streams.generator(i))`` would, so lockstep and scalar
  construction produce **identical** tours and identical
  ``ConstructionStats`` — the seed-for-seed equivalence mode the tests
  pin for all three colonies.

The public entry points are the per-problem kernels
(:func:`tsp_lockstep_orders`, :func:`qap_lockstep_assignments`,
:func:`coloring_lockstep_colors`) wired into the colonies behind their
``engine="vectorized"`` switch, plus :func:`lockstep_select` — the
audit-facing batched selection that enforces the unified input contract
(invalid input raises ``FitnessError``, all-zero rows raise
``DegenerateFitnessError``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bidding import gumbel_keys, independent_keys, log_bid_keys
from repro.errors import DegenerateFitnessError, FitnessError, UnknownMethodError
from repro.rng.adapters import resolve_rng

__all__ = [
    "AntStreams",
    "LOCKSTEP_METHODS",
    "CDF_METHODS",
    "DEFAULT_BLOCK",
    "blocked_choice",
    "lockstep_keys",
    "lockstep_select",
    "tsp_lockstep_orders",
    "qap_lockstep_assignments",
    "coloring_lockstep_colors",
]

#: Methods with a lockstep batched implementation (same set as
#: ``repro.core.batched.BATCH_METHODS``).
LOCKSTEP_METHODS = ("log_bidding", "gumbel", "independent", "prefix_sum")

#: Exact methods that share the fast inverse-CDF kernel: they all sample
#: the same law ``F_i``, so one exact sampler serves every one of them
#: (the compiled-wheel "auto" policy, applied row-wise).
CDF_METHODS = ("log_bidding", "gumbel", "prefix_sum")

#: Default block width of the two-level scan.  Tuned on the benchmark
#: machine at n=500: small enough that the per-row block scan stays in
#: cache, large enough that the block count n/b keeps the level-1 cumsum
#: tiny.
DEFAULT_BLOCK = 32

_KEY_FUNCTIONS = {
    "log_bidding": log_bid_keys,
    "gumbel": gumbel_keys,
    "independent": independent_keys,
}


# ----------------------------------------------------------------------
# Per-ant RNG substreams (the shared adapter of the equivalence mode)
# ----------------------------------------------------------------------
class AntStreams:
    """Independent per-ant generators spawned from one master seed.

    ``AntStreams(seed, m).generator(i)`` is ant ``i``'s private stream.
    Running the scalar colony with ant ``i`` on ``generator(i)`` and the
    lockstep kernel with the same ``AntStreams`` consumes the streams in
    the same per-ant order, so both paths draw identical variates and
    construct identical tours.
    """

    def __init__(self, seed, n_ants: int) -> None:
        n_ants = int(n_ants)
        if n_ants <= 0:
            raise ValueError(f"n_ants must be positive, got {n_ants}")
        self.seed = seed
        self.n_ants = n_ants
        self._generators = [
            np.random.default_rng(s)
            for s in np.random.SeedSequence(seed).spawn(n_ants)
        ]

    def __len__(self) -> int:
        return self.n_ants

    def generator(self, i: int) -> np.random.Generator:
        """Ant ``i``'s private generator."""
        return self._generators[i]

    def scalars(self) -> np.ndarray:
        """One scalar uniform per ant (ant ``i`` from stream ``i``)."""
        return np.fromiter(
            (g.random() for g in self._generators),
            dtype=np.float64,
            count=self.n_ants,
        )

    def row_uniforms(self, width: int) -> np.ndarray:
        """``(n_ants, width)`` raw uniforms; row ``i`` from stream ``i``."""
        out = np.empty((self.n_ants, int(width)), dtype=np.float64)
        for i, g in enumerate(self._generators):
            out[i] = g.random(int(width))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AntStreams(seed={self.seed!r}, n_ants={self.n_ants})"


# ----------------------------------------------------------------------
# Row-wise primitives
# ----------------------------------------------------------------------
def _validate_rows(fitness: np.ndarray) -> np.ndarray:
    arr = np.asarray(fitness, dtype=np.float64)
    if arr.ndim != 2:
        raise FitnessError(
            f"fitness must be 2-D (rows = wheels), got shape {arr.shape}"
        )
    if arr.size == 0:
        raise FitnessError("fitness matrix is empty")
    if not np.all(np.isfinite(arr)):
        raise FitnessError("fitness values must be finite")
    if np.any(arr < 0.0):
        raise FitnessError("fitness values must be non-negative")
    return arr


def lockstep_keys(
    W: np.ndarray,
    rng=None,
    *,
    method: str = "log_bidding",
    uniforms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Selection keys for every row of a fitness matrix at once.

    ``uniforms`` are *raw* ``[0, 1)`` draws of ``W``'s shape (drawn from
    ``rng`` when omitted); they are reflected to ``(0, 1]`` exactly as
    the scalar key transforms do, so feeding row ``i`` the draws of ant
    ``i``'s stream reproduces the scalar keys bit-for-bit.
    """
    try:
        key_fn = _KEY_FUNCTIONS[method]
    except KeyError:
        raise UnknownMethodError(
            f"method {method!r} has no key form; available: {sorted(_KEY_FUNCTIONS)}"
        ) from None
    if uniforms is None:
        uniforms = np.asarray(resolve_rng(rng).random(W.shape), dtype=np.float64)
    return key_fn(W, None, uniforms=1.0 - uniforms)


def _last_positive_column(rows: np.ndarray) -> np.ndarray:
    """Per row, the index of the last strictly positive entry."""
    n = rows.shape[1]
    return n - 1 - np.argmax(rows[:, ::-1] > 0.0, axis=1)


def _prefix_replay(W: np.ndarray, raw_spins: np.ndarray) -> np.ndarray:
    """Row-wise replay of ``PrefixSumSelection.select``'s arithmetic.

    ``raw_spins[i]`` is the single uniform ant ``i``'s scalar call would
    draw; the interval test ``p_{j-1} <= R < p_j`` and the FP boundary
    fallback (last positive item) match the scalar method exactly.
    """
    cs = np.cumsum(W, axis=1)
    r = raw_spins * cs[:, -1]
    prev = np.empty_like(cs)
    prev[:, 0] = 0.0
    prev[:, 1:] = cs[:, :-1]
    hit = (prev <= r[:, None]) & (r[:, None] < cs)
    winners = hit.argmax(axis=1).astype(np.int64)
    miss = ~hit.any(axis=1)
    if miss.any():  # pragma: no cover - FP corner
        rows = np.flatnonzero(miss)
        winners[rows] = _last_positive_column(W[rows])
    return winners


def blocked_choice(
    W: np.ndarray,
    spins: np.ndarray,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Exact inverse-CDF winner per row via a two-level blocked scan.

    Parameters
    ----------
    W:
        ``(m, n)`` non-negative weight matrix (caller-validated).
    spins:
        ``(m,)`` uniforms in ``[0, 1)``; row ``i`` is located at
        ``spins[i] * total_i``.
    block:
        Width of the level-0 blocks.

    Returns
    -------
    numpy.ndarray
        ``(m,)`` winner columns; ``-1`` for rows with zero total mass.

    The half-open interval convention matches the prefix-sum method: a
    spin landing exactly on a boundary belongs to the next item, and
    zero-width (zero-weight) positions can never win.  A spin that
    rounds up to the total falls back to the row's last positive column
    (the same FP guard every prefix-sum backend carries).
    """
    m, n = W.shape
    b = max(1, min(int(block), n))
    nb = -(-n // b)
    npad = nb * b
    if npad != n:
        Wp = np.zeros((m, npad), dtype=np.float64)
        Wp[:, :n] = W
    else:
        Wp = np.ascontiguousarray(W, dtype=np.float64)
    W3 = Wp.reshape(m, nb, b)
    BS = W3.sum(axis=2)
    CB = np.cumsum(BS, axis=1)
    totals = CB[:, -1]
    alive = totals > 0.0
    rows = np.arange(m)
    sv = np.asarray(spins, dtype=np.float64) * totals
    above = CB > sv[:, None]
    blk = above.argmax(axis=1)
    prev = np.where(blk > 0, CB[rows, np.maximum(blk - 1, 0)], 0.0)
    rem = sv - prev
    inner = np.cumsum(W3[rows, blk], axis=1)
    hit = inner > rem[:, None]
    winners = (hit.argmax(axis=1) + blk * b).astype(np.int64)
    miss = alive & (~above.any(axis=1) | ~hit.any(axis=1))
    if miss.any():  # pragma: no cover - FP corner
        bad = np.flatnonzero(miss)
        winners[bad] = _last_positive_column(W[bad])
    winners[~alive] = -1
    return winners


def lockstep_select(
    fitness_rows: np.ndarray,
    rng=None,
    *,
    method: str = "log_bidding",
    streams: Optional[AntStreams] = None,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """One batched lockstep selection under the unified input contract.

    This is the audit-facing entry point of the vectorized colony path:
    row ``i`` of ``fitness_rows`` is wheel ``i`` and the return value is
    one winner per row.  Unlike the colony-internal kernels (which apply
    their own uniform-over-unvisited fallback before selecting), invalid
    input raises :class:`~repro.errors.FitnessError` and a row with no
    positive fitness raises
    :class:`~repro.errors.DegenerateFitnessError`.

    With ``streams`` the faithful per-ant replay is used (row ``i``
    consumes stream ``i`` exactly as the scalar method would); otherwise
    the fast mode draws from the shared ``rng``.
    """
    if method not in LOCKSTEP_METHODS:
        raise UnknownMethodError(
            f"method {method!r} has no lockstep implementation; "
            f"available: {LOCKSTEP_METHODS}"
        )
    W = _validate_rows(fitness_rows)
    m, _n = W.shape
    dead = ~np.any(W > 0.0, axis=1)
    if dead.any():
        raise DegenerateFitnessError(
            f"row {int(np.flatnonzero(dead)[0])} has no positive fitness "
            f"({int(dead.sum())} degenerate of {m} rows)"
        )
    if streams is not None:
        if len(streams) != m:
            raise ValueError(
                f"streams carries {len(streams)} ants but fitness has {m} rows"
            )
        if method == "prefix_sum":
            return _prefix_replay(W, streams.scalars())
        keys = lockstep_keys(W, method=method, uniforms=streams.row_uniforms(W.shape[1]))
        return np.argmax(keys, axis=1).astype(np.int64)
    rng = resolve_rng(rng)
    if method in CDF_METHODS:
        spins = np.asarray(rng.random(m), dtype=np.float64)
        return blocked_choice(W, spins, block=block)
    keys = lockstep_keys(W, rng, method=method)
    return np.argmax(keys, axis=1).astype(np.int64)


# ----------------------------------------------------------------------
# TSP kernel
# ----------------------------------------------------------------------
class _TspWorkspace:
    """Preallocated buffers of the hot TSP loop (reused across iterations)."""

    def __init__(self, m: int, n: int, block: int, dtype=np.float64) -> None:
        b = max(1, min(int(block), n))
        dt = np.dtype(dtype)
        self.m, self.n, self.block, self.dtype = m, n, b, dt
        self.nb = -(-n // b)
        self.npad = self.nb * b
        self.Dp = np.zeros((n, self.npad), dtype=dt)
        self.uv = np.empty((m, self.npad), dtype=dt)
        self.W = np.empty((m, self.npad), dtype=dt)
        self.WM = np.empty((m, self.npad), dtype=dt)
        self.BS = np.empty((m, self.nb), dtype=dt)
        # Zero-prepended block cumsum: CB[:, j] is the mass of blocks
        # < j, so the winning block's prefix is a single plain gather.
        self.CB = np.zeros((m, self.nb + 1), dtype=dt)
        self.above = np.empty((m, self.nb), dtype=bool)
        self.hit = np.empty((m, b), dtype=bool)
        self.ics = np.empty((m, b), dtype=dt)
        self.ks = np.empty(m, dtype=np.int64)
        # Upper-triangular all-ones: ``X @ T`` is the row-wise prefix sum
        # of ``X`` through BLAS, ~4x faster than np.cumsum at these
        # shapes (sequential scalar scan vs a vectorised small GEMM).
        self.Tnb = np.triu(np.ones((self.nb, self.nb), dtype=dt))
        self.Tb = np.triu(np.ones((b, b), dtype=dt))


def _workspace(
    cache: Optional[Dict[Tuple[int, int, int, str], "_TspWorkspace"]],
    m: int,
    n: int,
    block: int,
    dtype=np.float64,
) -> _TspWorkspace:
    if cache is None:
        return _TspWorkspace(m, n, block, dtype)
    key = (m, n, block, np.dtype(dtype).name)
    ws = cache.get(key)
    if ws is None:
        ws = cache[key] = _TspWorkspace(m, n, block, dtype)
    return ws


def _validate_square(desirability: np.ndarray, what: str) -> np.ndarray:
    D = np.asarray(desirability, dtype=np.float64)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise FitnessError(f"{what} must be square, got shape {D.shape}")
    if not np.all(np.isfinite(D)) or np.any(D < 0.0):
        raise FitnessError(f"{what} must be finite and non-negative")
    return D


def _all_offdiagonal_positive(D: np.ndarray) -> bool:
    """True when every off-diagonal weight is strictly positive.

    Then every unvisited city is always a live candidate, so the
    candidate count is exactly ``k = n - step`` for every ant — the
    O(1) shortcut that lets the fast path skip materialising the masked
    matrix just to count its nonzeros.
    """
    positive = D > 0.0
    np.fill_diagonal(positive, True)
    return bool(positive.all())


def tsp_lockstep_orders(
    desirability: np.ndarray,
    count: int,
    rng=None,
    *,
    method: str = "log_bidding",
    stats=None,
    block: int = DEFAULT_BLOCK,
    starts: Optional[np.ndarray] = None,
    workspace: Optional[Dict[Tuple[int, int, int, str], _TspWorkspace]] = None,
    k_profile: Optional[List[float]] = None,
    dtype=None,
) -> np.ndarray:
    """Construct ``count`` TSP tours in lockstep (fast mode).

    Parameters
    ----------
    desirability:
        ``(n, n)`` matrix ``tau^alpha * eta^beta`` (hoisted by the
        caller — computed once per colony iteration).
    count:
        Number of ants (= rows advanced per step).
    rng:
        Shared generator for start cities and selection draws.
    method:
        One of :data:`LOCKSTEP_METHODS`.
    stats:
        Optional :class:`~repro.aco.tsp.colony.ConstructionStats`;
        receives the exact per-step ``k`` of every ant.
    block:
        Block width of the two-level scan.
    starts:
        Optional ``(count,)`` start cities (default: uniform draws).
    workspace:
        Optional dict cache for buffer reuse across iterations.
    k_profile:
        Optional list; appends the mean candidate count of each step
        (the sparsity profile the benchmark records).
    dtype:
        Arithmetic precision of the scan buffers.  Default: float32 for
        the inverse-CDF methods, float64 otherwise.  Single precision
        halves the memory traffic of the two O(m*n) passes (the
        dominant cost) and perturbs each selection probability only at
        the 2^-24 rounding level — the law stays the method's exact
        distribution, unlike the *method-level* bias of
        ``independent``.  Pass ``np.float64`` to scan in full
        precision; faithful mode (:func:`tsp_lockstep_orders_faithful`)
        is always bit-exact float64.

    Returns
    -------
    numpy.ndarray
        ``(count, n)`` city orders, one valid tour per row.
    """
    if method not in LOCKSTEP_METHODS:
        raise UnknownMethodError(
            f"method {method!r} has no lockstep implementation; "
            f"available: {LOCKSTEP_METHODS}"
        )
    D = _validate_square(desirability, "desirability")
    n = D.shape[0]
    m = int(count)
    if m <= 0:
        raise ValueError(f"count must be positive, got {m}")
    rng = resolve_rng(rng)
    cdf = method in CDF_METHODS
    if dtype is None:
        dtype = np.float32 if cdf else np.float64
    ws = _workspace(workspace, m, n, block, dtype)
    b, nb = ws.block, ws.nb
    ws.Dp[:, :n] = D
    uv, W, WM = ws.uv, ws.W, ws.WM
    uv[:, :n] = 1.0
    uv[:, n:] = 0.0
    allpos = _all_offdiagonal_positive(D)

    orders = np.empty((m, n), dtype=np.int64)
    rows = np.arange(m)
    if starts is None:
        cur = (np.asarray(rng.random(m)) * n).astype(np.int64) % n
    else:
        cur = np.asarray(starts, dtype=np.int64) % n
    orders[:, 0] = cur
    uv[rows, cur] = 0.0
    spins = (
        np.asarray(rng.random((n - 1, m))).astype(ws.dtype, copy=False)
        if cdf and n > 1
        else None
    )

    W3 = W.reshape(m, nb, b)
    U3 = uv.reshape(m, nb, b)
    WM3 = WM.reshape(m, nb, b)
    CB1 = ws.CB[:, 1:]
    fused = cdf and allpos
    record_uniform = getattr(stats, "record_uniform", None)
    for step in range(1, n):
        np.take(ws.Dp, cur, axis=0, out=W)
        uniform_k = True
        ks = None
        if not fused:
            # Materialise the masked weights: needed to count candidates
            # exactly when zeros can appear, and for the key methods.
            np.multiply(W, uv, out=WM)
            if not allpos:
                ks = np.count_nonzero(WM, axis=1)
                uniform_k = False
                dead = ks == 0
                if dead.any():
                    # Same fallback as the scalar path: uniform over the
                    # unvisited cities.
                    WM[dead] = uv[dead]
                    ks[dead] = n - step
        if uniform_k:
            # Every unvisited city is a live candidate: k = n - step for
            # all ants, so stats need no per-row array at all.
            if stats is not None:
                if record_uniform is not None:
                    record_uniform(n - step, m)
                else:  # pragma: no cover - duck-typed stats objects
                    ws.ks.fill(n - step)
                    stats.record_many(ws.ks)
            if k_profile is not None:
                k_profile.append(float(n - step))
        else:
            if stats is not None:
                stats.record_many(ks)
            if k_profile is not None:
                k_profile.append(float(ks.mean()))

        if cdf:
            if fused:
                # Fused mask-multiply + block-sum: one pass over W and uv.
                np.einsum("mjb,mjb->mj", W3, U3, out=ws.BS)
            else:
                np.add.reduce(WM3, axis=2, out=ws.BS)
            np.matmul(ws.BS, ws.Tnb, out=CB1)
            sv = spins[step - 1] * CB1[:, -1]
            np.greater(CB1, sv[:, None], out=ws.above)
            blk = ws.above.argmax(axis=1)
            rem = sv - ws.CB[rows, blk]
            # BLAS computes each prefix column independently, so an ulp
            # of non-monotonicity could push rem below zero — and a
            # negative rem would let a visited (zero-weight) leading
            # element win the inner scan.  Clamp.
            np.maximum(rem, 0.0, out=rem)
            if fused:
                inner = W3[rows, blk] * U3[rows, blk]
            else:
                inner = WM3[rows, blk]
            np.matmul(inner, ws.Tb, out=ws.ics)
            np.greater(ws.ics, rem[:, None], out=ws.hit)
            win = ws.hit.argmax(axis=1) + blk * b
            # Prefix sums of non-negative weights are non-decreasing, so
            # a row has any hit iff its last column hits.
            ok = ws.above[:, -1] & ws.hit[:, -1]
            if not ok.all():  # pragma: no cover - FP corner
                bad = np.flatnonzero(~ok)
                masked = W[bad, :n] * uv[bad, :n]
                win[bad] = _last_positive_column(masked)
        else:
            keys = lockstep_keys(WM[:, :n], rng, method=method)
            win = np.argmax(keys, axis=1).astype(np.int64)

        orders[:, step] = win
        uv[rows, win] = 0.0
        cur = win
    return orders


def tsp_lockstep_orders_faithful(
    desirability: np.ndarray,
    streams: AntStreams,
    *,
    method: str = "log_bidding",
    stats=None,
    starts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Construct tours in lockstep, bit-identical to the scalar path.

    Row ``i`` consumes ``streams.generator(i)`` in exactly the order the
    scalar ``construct_tour(rng=streams.generator(i))`` would: one start
    draw, then per step either ``n`` key uniforms or one prefix-sum
    spin.  Identical draws through identical arithmetic give identical
    tours and identical ``ConstructionStats``.
    """
    if method not in LOCKSTEP_METHODS:
        raise UnknownMethodError(
            f"method {method!r} has no lockstep implementation; "
            f"available: {LOCKSTEP_METHODS}"
        )
    D = _validate_square(desirability, "desirability")
    n = D.shape[0]
    m = len(streams)
    orders = np.empty((m, n), dtype=np.int64)
    visited = np.zeros((m, n), dtype=bool)
    rows = np.arange(m)
    if starts is None:
        cur = (streams.scalars() * n).astype(np.int64) % n
    else:
        cur = np.asarray(starts, dtype=np.int64) % n
    orders[:, 0] = cur
    visited[rows, cur] = True
    F = np.empty((m, n), dtype=np.float64)
    for step in range(1, n):
        np.take(D, cur, axis=0, out=F)
        F[visited] = 0.0
        ks = np.count_nonzero(F, axis=1)
        dead = ks == 0
        if dead.any():
            F[dead] = (~visited[dead]).astype(np.float64)
            ks[dead] = n - step
        if stats is not None:
            stats.record_many(ks)
        if method == "prefix_sum":
            win = _prefix_replay(F, streams.scalars())
        else:
            keys = lockstep_keys(F, method=method, uniforms=streams.row_uniforms(n))
            win = np.argmax(keys, axis=1).astype(np.int64)
        orders[:, step] = win
        visited[rows, win] = True
        cur = win
    return orders


# ----------------------------------------------------------------------
# QAP kernel
# ----------------------------------------------------------------------
def _step_winners(
    F: np.ndarray,
    rng,
    method: str,
    streams: Optional[AntStreams],
    block: int,
) -> np.ndarray:
    """One lockstep selection over already-masked fitness rows."""
    if streams is not None:
        if method == "prefix_sum":
            return _prefix_replay(F, streams.scalars())
        keys = lockstep_keys(F, method=method, uniforms=streams.row_uniforms(F.shape[1]))
        return np.argmax(keys, axis=1).astype(np.int64)
    if method in CDF_METHODS:
        spins = np.asarray(rng.random(F.shape[0]), dtype=np.float64)
        return blocked_choice(F, spins, block=block)
    keys = lockstep_keys(F, rng, method=method)
    return np.argmax(keys, axis=1).astype(np.int64)


def _ant_orders(
    n: int, m: int, rng, streams: Optional[AntStreams]
) -> np.ndarray:
    """Random per-ant processing orders (argsort of per-ant uniforms)."""
    if streams is not None:
        return np.stack(
            [np.argsort(np.asarray(streams.generator(i).random(n))) for i in range(m)]
        )
    return np.argsort(np.asarray(rng.random((m, n))), axis=1)


def qap_lockstep_assignments(
    tau_alpha: np.ndarray,
    count: Optional[int] = None,
    rng=None,
    *,
    method: str = "log_bidding",
    stats=None,
    streams: Optional[AntStreams] = None,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Construct QAP assignments in lockstep.

    Each ant processes the facilities in its own random order and places
    the current facility on a free location by roulette over
    ``tau_alpha[facility]``; occupied locations carry fitness zero.
    With ``streams`` the construction is bit-identical to per-ant scalar
    ``construct(rng=streams.generator(i))`` calls.

    Returns ``(count, n)`` assignments (``assignment[i, f]`` = location
    of facility ``f`` for ant ``i``).
    """
    if method not in LOCKSTEP_METHODS:
        raise UnknownMethodError(
            f"method {method!r} has no lockstep implementation; "
            f"available: {LOCKSTEP_METHODS}"
        )
    T = _validate_square(tau_alpha, "tau_alpha")
    n = T.shape[0]
    m = len(streams) if streams is not None else int(count)
    if m <= 0:
        raise ValueError(f"count must be positive, got {m}")
    rng = resolve_rng(rng)
    orders = _ant_orders(n, m, rng, streams)
    assignment = np.full((m, n), -1, dtype=np.int64)
    free = np.ones((m, n), dtype=bool)
    rows = np.arange(m)
    F = np.empty((m, n), dtype=np.float64)
    for t in range(n):
        fac = orders[:, t]
        np.take(T, fac, axis=0, out=F)
        F[~free] = 0.0
        ks = np.count_nonzero(F, axis=1)
        dead = ks == 0
        if dead.any():
            # Pheromone underflow: uniform over the free locations.
            F[dead] = free[dead].astype(np.float64)
            ks[dead] = n - t
        if stats is not None:
            stats.record_many(ks)
        win = _step_winners(F, rng, method, streams, block)
        assignment[rows, fac] = win
        free[rows, win] = False
    return assignment


# ----------------------------------------------------------------------
# Graph-coloring kernel
# ----------------------------------------------------------------------
def coloring_lockstep_colors(
    pheromone: np.ndarray,
    adjacency: np.ndarray,
    count: Optional[int] = None,
    rng=None,
    *,
    method: str = "log_bidding",
    stats=None,
    streams: Optional[AntStreams] = None,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Construct colorings in lockstep.

    Each ant colors the vertices in its own random order; the fitness of
    color ``c`` for vertex ``v`` is ``pheromone[v, c]`` unless an
    already-colored neighbour holds ``c`` (then zero).  When no color in
    the budget is feasible the scalar colony falls back to a uniform
    choice over the *whole* budget (a conflict is unavoidable) — the
    lockstep rows do the same.

    Returns ``(count, n)`` per-ant vertex colors.
    """
    if method not in LOCKSTEP_METHODS:
        raise UnknownMethodError(
            f"method {method!r} has no lockstep implementation; "
            f"available: {LOCKSTEP_METHODS}"
        )
    P = np.asarray(pheromone, dtype=np.float64)
    if P.ndim != 2:
        raise FitnessError(f"pheromone must be 2-D, got shape {P.shape}")
    if not np.all(np.isfinite(P)) or np.any(P < 0.0):
        raise FitnessError("pheromone must be finite and non-negative")
    A = np.asarray(adjacency, dtype=bool)
    n, budget = P.shape
    if A.shape != (n, n):
        raise FitnessError(
            f"adjacency must be ({n}, {n}) to match pheromone, got {A.shape}"
        )
    m = len(streams) if streams is not None else int(count)
    if m <= 0:
        raise ValueError(f"count must be positive, got {m}")
    rng = resolve_rng(rng)
    orders = _ant_orders(n, m, rng, streams)
    colors = np.full((m, n), -1, dtype=np.int64)
    rows = np.arange(m)
    F = np.empty((m, budget), dtype=np.float64)
    forbidden = np.empty((m, budget), dtype=bool)
    for t in range(n):
        v = orders[:, t]
        forbidden[:] = False
        neigh = A[v] & (colors >= 0)
        r, c = np.nonzero(neigh)
        forbidden[r, colors[r, c]] = True
        np.take(P, v, axis=0, out=F)
        F[forbidden] = 0.0
        ks = np.count_nonzero(F, axis=1)
        dead = ks == 0
        if dead.any():
            # No feasible color in budget: uniform over the whole budget
            # (matching the scalar colony's least-bad fallback).
            F[dead] = 1.0
            ks[dead] = budget
        if stats is not None:
            stats.record_many(ks)
        win = _step_winners(F, rng, method, streams, block)
        colors[rows, v] = win
    return colors
