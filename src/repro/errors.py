"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still discriminating finer-grained failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FitnessError",
    "DegenerateFitnessError",
    "SelectionError",
    "UnknownMethodError",
    "TeamTimeoutError",
    "RNGError",
    "ServiceError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "ServiceDrainingError",
    "UnknownWheelError",
    "ProtocolError",
    "PRAMError",
    "MemoryAccessError",
    "ReadConflictError",
    "WriteConflictError",
    "CommonWriteViolation",
    "ProgramError",
    "DeadlockError",
    "ACOError",
    "InvalidTourError",
    "InvalidColoringError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class FitnessError(ReproError, ValueError):
    """A fitness vector violates the algorithm's preconditions.

    Raised for negative entries, NaN/inf entries, or empty vectors.
    """


class DegenerateFitnessError(FitnessError):
    """Every fitness value is zero, so no selection probability exists."""


class SelectionError(ReproError):
    """A selection method failed to produce an index."""


class UnknownMethodError(SelectionError, KeyError):
    """A selection-method name was not found in the registry."""


class TeamTimeoutError(ReproError, TimeoutError):
    """A parallel team run expired with workers still alive.

    Raised instead of silently returning ``None`` placeholders for the
    unfinished ranks; the message names the stuck ranks so a hung race
    is reproducible.
    """


class RNGError(ReproError):
    """A pseudo-random number generator was misused or mis-seeded."""


class ServiceError(ReproError):
    """Base class for selection-service errors."""


class ServiceOverloadedError(ServiceError):
    """The service shed a request instead of queueing it.

    Raised (and mapped to an ``overloaded`` protocol response) when the
    admission-controlled queue is at its bound; the request was never
    enqueued, so retrying later is always safe.
    """


class DeadlineExceededError(ServiceOverloadedError):
    """A queued request's deadline expired before its batch was served."""


class ServiceDrainingError(ServiceError):
    """The service is draining: in-flight work completes, new work is refused.

    Raised (and mapped to a ``draining`` protocol response) between the
    shutdown signal and process exit.  Every request accepted *before*
    the drain began still completes normally; requests arriving after it
    get this typed refusal instead of a dropped connection, so clients
    can fail over without ambiguity about in-flight state.
    """


class UnknownWheelError(ServiceError, KeyError):
    """A wheel id is not (or no longer) present in the registry.

    Content-addressed ids are stable, so after an LRU eviction the client
    can simply re-register the same fitness vector and get the same id.
    """


class ProtocolError(ServiceError, ValueError):
    """A service request line is malformed or semantically invalid."""


class PRAMError(ReproError):
    """Base class for PRAM simulator errors."""


class MemoryAccessError(PRAMError):
    """An out-of-range or otherwise illegal shared-memory access."""


class ReadConflictError(PRAMError):
    """Two processors read the same cell in one step under EREW."""


class WriteConflictError(PRAMError):
    """Two processors wrote the same cell in one step under EREW/CREW."""


class CommonWriteViolation(PRAMError):
    """CRCW-COMMON processors wrote *different* values to one cell."""


class ProgramError(PRAMError):
    """A processor program yielded an unknown request object."""


class DeadlockError(PRAMError):
    """No processor can make progress (e.g. mismatched barriers)."""


class ACOError(ReproError):
    """Base class for ant-colony application errors."""


class InvalidTourError(ACOError, ValueError):
    """A tour is not a permutation of the instance's cities."""


class InvalidColoringError(ACOError, ValueError):
    """A color assignment references unknown vertices or colors."""
