"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still discriminating finer-grained failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FitnessError",
    "DegenerateFitnessError",
    "SelectionError",
    "UnknownMethodError",
    "TeamTimeoutError",
    "RNGError",
    "PRAMError",
    "MemoryAccessError",
    "ReadConflictError",
    "WriteConflictError",
    "CommonWriteViolation",
    "ProgramError",
    "DeadlockError",
    "ACOError",
    "InvalidTourError",
    "InvalidColoringError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class FitnessError(ReproError, ValueError):
    """A fitness vector violates the algorithm's preconditions.

    Raised for negative entries, NaN/inf entries, or empty vectors.
    """


class DegenerateFitnessError(FitnessError):
    """Every fitness value is zero, so no selection probability exists."""


class SelectionError(ReproError):
    """A selection method failed to produce an index."""


class UnknownMethodError(SelectionError, KeyError):
    """A selection-method name was not found in the registry."""


class TeamTimeoutError(ReproError, TimeoutError):
    """A parallel team run expired with workers still alive.

    Raised instead of silently returning ``None`` placeholders for the
    unfinished ranks; the message names the stuck ranks so a hung race
    is reproducible.
    """


class RNGError(ReproError):
    """A pseudo-random number generator was misused or mis-seeded."""


class PRAMError(ReproError):
    """Base class for PRAM simulator errors."""


class MemoryAccessError(PRAMError):
    """An out-of-range or otherwise illegal shared-memory access."""


class ReadConflictError(PRAMError):
    """Two processors read the same cell in one step under EREW."""


class WriteConflictError(PRAMError):
    """Two processors wrote the same cell in one step under EREW/CREW."""


class CommonWriteViolation(PRAMError):
    """CRCW-COMMON processors wrote *different* values to one cell."""


class ProgramError(PRAMError):
    """A processor program yielded an unknown request object."""


class DeadlockError(PRAMError):
    """No processor can make progress (e.g. mismatched barriers)."""


class ACOError(ReproError):
    """Base class for ant-colony application errors."""


class InvalidTourError(ACOError, ValueError):
    """A tour is not a permutation of the instance's cities."""


class InvalidColoringError(ACOError, ValueError):
    """A color assignment references unknown vertices or colors."""
