"""Weighted sampling *without* replacement via the race keys.

A direct corollary of the paper's construction: ranking items by the
logarithmic bid ``log(u_i)/f_i`` (descending) gives the same joint
distribution as sequentially drawing by roulette wheel and removing each
winner — the Efraimidis–Spirakis theorem with the numerically robust
logarithmic keys.  The whole k-sample costs one key per item plus a
partial sort, and parallelises exactly like the single-item race.

:func:`sequential_sample_without_replacement` implements the
draw-remove-renormalise reference the equivalence tests compare against.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.bidding import log_bid_keys
from repro.core.fitness import validate_fitness
from repro.core.methods.base import SelectionMethod, get_method
from repro.errors import SelectionError
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = ["sample_without_replacement", "sequential_sample_without_replacement"]


def sample_without_replacement(fitness: FitnessLike, k: int, rng=None) -> np.ndarray:
    """Draw ``k`` distinct indices, weighted without replacement.

    Item ``i`` appears first with probability ``F_i``; conditioned on the
    prefix, each later position follows the renormalised wheel over the
    remaining items (Efraimidis–Spirakis).

    Parameters
    ----------
    fitness:
        Non-negative weights; the number of *positive* weights must be at
        least ``k``.
    k:
        Sample size.
    rng:
        Anything :func:`repro.rng.adapters.resolve_rng` accepts.

    Returns
    -------
    numpy.ndarray
        ``k`` distinct indices, in selection order (first = wheel winner).
    """
    f = validate_fitness(fitness)
    rng = resolve_rng(rng)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    support = int(np.count_nonzero(f > 0.0))
    if k > support:
        raise SelectionError(
            f"cannot sample {k} items without replacement from {support} "
            "positive-fitness items"
        )
    if k == 0:
        return np.empty(0, dtype=np.int64)
    keys = log_bid_keys(f, rng)
    # Top-k keys, descending: partial selection then exact ordering of the
    # selected block — O(n + k log k).
    if k < len(f):
        top = np.argpartition(keys, len(f) - k)[len(f) - k :]
    else:
        top = np.arange(len(f))
    order = np.argsort(keys[top])[::-1]
    return top[order].astype(np.int64)


def sequential_sample_without_replacement(
    fitness: FitnessLike,
    k: int,
    rng=None,
    method: Union[str, SelectionMethod, None] = None,
) -> np.ndarray:
    """Reference implementation: draw, zero the winner, repeat.

    Distributionally identical to :func:`sample_without_replacement`
    (asserted statistically in the tests) but costs ``k`` full selections.
    """
    f = validate_fitness(fitness)
    rng = resolve_rng(rng)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    support = int(np.count_nonzero(f > 0.0))
    if k > support:
        raise SelectionError(
            f"cannot sample {k} items without replacement from {support} "
            "positive-fitness items"
        )
    sel: SelectionMethod = (
        get_method("log_bidding")
        if method is None
        else (method if isinstance(method, SelectionMethod) else get_method(method))
    )
    out = np.empty(k, dtype=np.int64)
    remaining = f.copy()
    for j in range(k):
        winner = sel.select(remaining, rng)
        out[j] = winner
        remaining[winner] = 0.0
    return out
