"""Batched selection: one draw from each of many wheels at once.

A parallel ACO iteration runs ``m`` ants simultaneously; at every
construction step each ant spins its *own* wheel (its own fitness row).
That is one arg-max per row of a key matrix — exactly how the GPU
implementations the paper cites organise the computation.  This module
provides that data-parallel path for the key-based methods and the
prefix-sum method:

* :func:`select_rows` — winner per row, ``Pr[row i picks j] = F_j(row i)``,
* rows whose fitness is all-zero are reported via the ``degenerate``
  mask rather than raising, so callers (the vectorised colony) can apply
  their own fallback.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.bidding import gumbel_keys, independent_keys, log_bid_keys
from repro.errors import FitnessError
from repro.rng.adapters import resolve_rng

__all__ = ["select_rows", "BATCH_METHODS"]

#: Methods with a batched row-wise implementation.
BATCH_METHODS = ("log_bidding", "gumbel", "independent", "prefix_sum")


def _validate_matrix(fitness: np.ndarray) -> np.ndarray:
    arr = np.asarray(fitness, dtype=np.float64)
    if arr.ndim != 2:
        raise FitnessError(f"fitness must be 2-D (rows = wheels), got shape {arr.shape}")
    if arr.size == 0:
        raise FitnessError("fitness matrix is empty")
    if not np.all(np.isfinite(arr)):
        raise FitnessError("fitness values must be finite")
    if np.any(arr < 0.0):
        raise FitnessError("fitness values must be non-negative")
    return arr


def select_rows(
    fitness: np.ndarray,
    rng=None,
    method: str = "log_bidding",
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw one index per row of a fitness matrix.

    Parameters
    ----------
    fitness:
        ``(m, n)`` matrix; row ``i`` is wheel ``i``.
    rng:
        Anything :func:`repro.rng.adapters.resolve_rng` accepts.
    method:
        One of :data:`BATCH_METHODS`.

    Returns
    -------
    (winners, degenerate):
        ``winners[i]`` is row ``i``'s selected column (0 for degenerate
        rows — check the mask); ``degenerate[i]`` is True when row ``i``
        had no positive fitness.
    """
    f = _validate_matrix(fitness)
    rng = resolve_rng(rng)
    m, n = f.shape
    degenerate = ~np.any(f > 0.0, axis=1)
    if method == "log_bidding":
        keys = log_bid_keys(f.ravel(), rng).reshape(m, n)
        winners = np.argmax(keys, axis=1)
    elif method == "gumbel":
        keys = gumbel_keys(f.ravel(), rng).reshape(m, n)
        winners = np.argmax(keys, axis=1)
    elif method == "independent":
        keys = independent_keys(f.ravel(), rng).reshape(m, n)
        winners = np.argmax(keys, axis=1)
    elif method == "prefix_sum":
        cs = np.cumsum(f, axis=1)
        totals = cs[:, -1]
        safe_totals = np.where(totals > 0.0, totals, 1.0)
        spins = np.asarray(rng.random(m), dtype=np.float64) * safe_totals
        # First column with cumulative mass strictly above the spin:
        # implements the half-open interval [p_{j-1}, p_j) row-wise and
        # skips zero-width (zero-fitness) columns.
        winners = (cs > spins[:, None]).argmax(axis=1)
        # FP guard: a spin rounding to the total selects nothing; give the
        # row its last positive column (row-wise masked argmax over the
        # reversed positivity mask — no per-row Python loop).
        missed = ~degenerate & ~(cs > spins[:, None]).any(axis=1)
        if missed.any():  # pragma: no cover - FP corner
            rows = np.flatnonzero(missed)
            winners[rows] = n - 1 - np.argmax(f[rows, ::-1] > 0.0, axis=1)
    else:
        raise KeyError(
            f"method {method!r} has no batched implementation; "
            f"available: {BATCH_METHODS}"
        )
    winners = winners.astype(np.int64)
    winners[degenerate] = 0
    return winners, degenerate
