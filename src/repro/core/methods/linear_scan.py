"""Sequential linear-scan roulette selection — the textbook O(n) algorithm.

Spin the wheel once (``R = rand() * sum(f)``) and walk the items
accumulating fitness until the running sum exceeds ``R``.  Exact, requires
one uniform per draw, and serves as the ground-truth oracle the parallel
methods are compared against in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["LinearScanSelection"]


@register_method
class LinearScanSelection(SelectionMethod):
    """O(n) accumulate-and-scan selection."""

    name = "linear_scan"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        total = float(fitness.sum())
        r = float(rng.random()) * total
        acc = 0.0
        last_positive = -1
        for i, f in enumerate(fitness):
            if f > 0.0:
                last_positive = i
                acc += f
                if r < acc:
                    return i
        # Floating-point accumulation can leave r marginally >= acc at the
        # end (r < total but acc rounded below total); the mass belongs to
        # the final positive-fitness item.
        return last_positive

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        # A vectorised scan is exactly the prefix-sum method; keep the loop
        # so this class stays a faithful sequential reference.
        return super().select_many(fitness, rng, size)
