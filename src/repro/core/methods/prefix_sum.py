"""The paper's prefix-sum-based parallel roulette wheel selection (§I).

1. Compute all prefix sums ``p_0 .. p_{n-1}``.
2. Processor 0 spins ``R = rand() * p_{n-1}``.
3. Processor ``i`` claims the selection iff ``p_{i-1} <= R < p_i``.

On a real EREW PRAM this is O(log n) time and O(n) memory (the simulator
in :mod:`repro.pram.algorithms.roulette` counts exactly that); here the
data-parallel comparison of step 3 is realised as a vectorised interval
test.  Exact: ``Pr[i] = (p_i - p_{i-1}) / p_{n-1} = F_i``, and
zero-fitness items own empty intervals.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method
from repro.core.methods.binary_search import BinarySearchSelection

__all__ = ["PrefixSumSelection"]


@register_method
class PrefixSumSelection(SelectionMethod):
    """Data-parallel interval test over prefix sums (paper §I, exact)."""

    name = "prefix_sum"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        prefix = np.cumsum(fitness)
        r = float(rng.random()) * prefix[-1]
        # The paper's step 3, all processors at once: p_{i-1} <= R < p_i.
        hits = np.flatnonzero((np.concatenate(([0.0], prefix[:-1])) <= r) & (r < prefix))
        if hits.size:
            return int(hits[0])
        # R == p_{n-1} is impossible in real arithmetic but reachable by FP
        # rounding; the final positive item owns the boundary.
        return int(np.flatnonzero(fitness > 0.0)[-1])

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        # Batch draws share the prefix sums; locating each spin by bisection
        # is the same inverse-CDF map the interval test computes.
        return BinarySearchSelection().select_many(fitness, rng, size)
