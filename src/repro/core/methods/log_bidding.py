"""Logarithmic random bidding — the paper's contribution (§II).

Each processor draws ``r_i = log(rand()) / f_i`` and the maximum wins.
Because ``-log(rand())`` is Exp(1), the keys run an exponential race at
rates ``f_i``, so ``Pr[i wins] = f_i / sum(f)`` **exactly** (the paper's
§II integral).  Zero-fitness processors receive ``-inf`` and can never
win, which is what makes the CRCW race's running time depend on ``k``
(non-zero count) rather than ``n``.

This module is the *data-parallel* realisation (one vectorised key batch
plus an arg-max); the step-faithful PRAM realisation with the O(log k)
max race lives in :mod:`repro.pram.algorithms.roulette`, and a true
thread-backed race in :mod:`repro.parallel`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bidding import log_bid_keys
from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["LogBiddingSelection"]


@register_method
class LogBiddingSelection(SelectionMethod):
    """Arg-max of ``log(u_i)/f_i`` — exact roulette selection (paper §II)."""

    name = "log_bidding"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        keys = log_bid_keys(fitness, rng)
        return int(np.argmax(keys))

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        return self._chunked_key_argmax(fitness, rng, size, log_bid_keys)
