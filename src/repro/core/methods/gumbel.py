"""Gumbel-max selection — the standard-ML formulation of the same race.

``argmax_i (log f_i + G_i)`` with i.i.d. standard Gumbel noise ``G_i``
selects exactly with probability ``F_i``.  Since
``G = -log(-log u)`` and the paper's key is ``log(u)/f = -E/f`` with
``E = -log u``, the two arg-maxes coincide *for the same uniforms* —
a property the equivalence tests assert draw-by-draw.  Registered
separately so the benchmarks can show the formulations are
computationally interchangeable.
"""

from __future__ import annotations

import numpy as np

from repro.core.bidding import gumbel_keys
from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["GumbelMaxSelection"]


@register_method
class GumbelMaxSelection(SelectionMethod):
    """Arg-max of ``log f_i - log(-log u_i)`` — exact."""

    name = "gumbel"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        keys = gumbel_keys(fitness, rng)
        return int(np.argmax(keys))

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        return self._chunked_key_argmax(fitness, rng, size, gumbel_keys)
