"""Registry adapter for the dynamic Fenwick-tree wheel.

Exposes :class:`repro.core.dynamic.FenwickSampler` through the
:class:`SelectionMethod` interface so it participates in the common
contract tests and the throughput benchmarks: O(n) build, O(log n) per
draw — between alias (O(1)) and the key race (O(n)) — with the unique
ability (used directly, not via this adapter) to mutate fitness between
draws in O(log n).
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["FenwickSelection"]


@register_method
class FenwickSelection(SelectionMethod):
    """Inverse-CDF selection through a Fenwick tree."""

    name = "fenwick"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        from repro.core.dynamic import FenwickSampler

        return FenwickSampler(fitness).select(rng)

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        from repro.core.dynamic import FenwickSampler

        return FenwickSampler(fitness).select_many(size, rng)
