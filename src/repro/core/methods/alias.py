"""Walker/Vose alias method — O(n) build, O(1) per draw, exact.

The alias table partitions the probability mass into ``n`` equal-width
columns, each containing at most two outcomes.  A draw picks a column
uniformly and flips a biased coin between the column's own outcome and its
alias.  Vose's construction (small/large worklists) is numerically robust
and builds in a single O(n) pass.

Included as the classic serial answer to "many draws from one wheel" —
the regime where the paper's per-draw parallel race is compared against
amortised preprocessing in the throughput benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["AliasTable", "AliasSelection"]


class AliasTable:
    """A frozen Vose alias table for one fitness vector."""

    __slots__ = ("n", "_prob", "_alias")

    def __init__(self, fitness: np.ndarray) -> None:
        """Build the table in O(n).

        ``fitness`` must be validated (non-negative, not all zero).
        Zero-fitness outcomes end up with acceptance probability 0 and are
        always redirected to their alias, so they are never returned.
        """
        f = np.asarray(fitness, dtype=np.float64)
        n = f.size
        # Normalise before scaling: (f / sum) * n stays finite even for
        # subnormal fitness values where n / sum would overflow.
        scaled = (f / f.sum()) * n  # mean 1 per column
        prob = np.empty(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        # Leftovers are numerically 1.0 columns.
        for i in large:
            prob[i] = 1.0
        for i in small:
            # Only reachable through FP cancellation; treat as full columns
            # unless the outcome truly has zero mass.
            prob[i] = 1.0 if f[i] > 0.0 else 0.0
            if f[i] == 0.0 and n > 1:
                # Redirect the empty column to any positive outcome.
                alias[i] = int(np.flatnonzero(f > 0.0)[0])
        self.n = n
        self._prob = prob
        self._alias = alias

    def draw(self, rng) -> int:
        """One O(1) draw."""
        u = float(rng.random()) * self.n
        col = int(u)
        if col >= self.n:  # u == n from FP rounding of random()*n
            col = self.n - 1
        frac = u - col
        return col if frac < self._prob[col] else int(self._alias[col])

    def draw_many(self, rng, size: int) -> np.ndarray:
        """Vectorised batch of ``size`` draws (one uniform per draw)."""
        return self.draw_many_from(np.asarray(rng.random(size), dtype=np.float64))

    def draw_many_from(self, uniforms: np.ndarray) -> np.ndarray:
        """Map caller-supplied uniforms on ``[0, 1)`` to draws, one each.

        Splitting a uniform sequence across calls returns the same draws
        as one call — the property the batched selection service relies
        on to coalesce per-request substreams into a single lookup.
        """
        u = uniforms * self.n
        col = np.minimum(u.astype(np.int64), self.n - 1)
        frac = u - col
        return np.where(frac < self._prob[col], col, self._alias[col]).astype(np.int64)

    @property
    def acceptance(self) -> np.ndarray:
        """Per-column acceptance probabilities (for tests)."""
        return self._prob.copy()

    @property
    def aliases(self) -> np.ndarray:
        """Per-column alias targets (for tests)."""
        return self._alias.copy()

    def implied_probabilities(self) -> np.ndarray:
        """Reconstruct the outcome distribution the table encodes.

        Exactly ``F_i`` up to FP rounding — asserted by the unit tests.
        """
        p = np.zeros(self.n, dtype=np.float64)
        for col in range(self.n):
            p[col] += self._prob[col]
            p[self._alias[col]] += 1.0 - self._prob[col]
        return p / self.n


@register_method
class AliasSelection(SelectionMethod):
    """Selection through a per-call alias table.

    For repeated draws from the same wheel, build an :class:`AliasTable`
    once and call :meth:`AliasTable.draw_many`; ``select_many`` does
    exactly that internally.
    """

    name = "alias"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        return AliasTable(fitness).draw(rng)

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return AliasTable(fitness).draw_many(rng, size)
