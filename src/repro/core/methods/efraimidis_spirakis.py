"""Efraimidis–Spirakis key selection — ``argmax u_i ** (1/f_i)``.

The weighted-reservoir-sampling keys of Efraimidis & Spirakis (2006).
Their logarithm is precisely the paper's bid, so single-item selection is
again the same exponential race; the ES form is numerically *worse* for
tiny ``f`` (``u**(1/f)`` underflows to 0 for ``1/f`` large) — a practical
reason to prefer the paper's logarithmic form, quantified in the tests.
The k-item generalisation (top-k keys = weighted sampling *without*
replacement) lives in :mod:`repro.core.without_replacement`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bidding import es_keys
from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["EfraimidisSpirakisSelection"]


@register_method
class EfraimidisSpirakisSelection(SelectionMethod):
    """Arg-max of ``u_i ** (1/f_i)`` — exact up to floating-point underflow."""

    name = "efraimidis_spirakis"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        keys = es_keys(fitness, rng)
        winner = int(np.argmax(keys))
        if keys[winner] == 0.0:
            # Every key underflowed (all 1/f_i huge); fall back to the
            # numerically robust logarithmic form of the same race.
            from repro.core.bidding import log_bid_keys

            return int(np.argmax(log_bid_keys(fitness, rng)))
        return winner

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        return self._chunked_key_argmax(fitness, rng, size, es_keys)
