"""Roulette wheel selection by stochastic acceptance (Lipowski & Lipowska).

Repeat: pick an index uniformly, accept it with probability
``f_i / max(f)``.  Exact, O(1) memory, and O(n / (n * mean(f)/max(f)))
expected attempts — fast for flat fitness landscapes, slow for skewed
ones, which makes it an instructive contrast to the paper's race (whose
cost depends only on ``k``, not on the fitness skew).
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method
from repro.errors import DegenerateFitnessError

__all__ = ["StochasticAcceptanceSelection"]


def _checked_fmax(fitness: np.ndarray) -> float:
    """``max(f)``, rejecting the all-zero wheel the accept loop cannot leave.

    The accept test ``rng() * fmax < f_i`` is unsatisfiable when
    ``fmax == 0`` (every comparison is ``0 < 0``), so without this guard
    both selection loops below spin forever on a degenerate wheel.
    """
    fmax = float(fitness.max()) if len(fitness) else 0.0
    if fmax <= 0.0:
        raise DegenerateFitnessError(
            "all fitness values are zero; the acceptance loop cannot terminate"
        )
    return fmax


@register_method
class StochasticAcceptanceSelection(SelectionMethod):
    """Uniform-propose / fitness-accept rejection sampling."""

    name = "stochastic_acceptance"
    exact = True

    #: Batch size for the vectorised accept loop in ``select_many``.
    _BATCH = 4096

    def select(self, fitness: np.ndarray, rng) -> int:
        n = len(fitness)
        fmax = _checked_fmax(fitness)
        while True:
            # Floor of a uniform scaled by n: unbiased uniform index without
            # assuming the rng exposes an integers() API.
            i = int(float(rng.random()) * n)
            if i >= n:  # FP boundary
                i = n - 1
            if float(rng.random()) * fmax < fitness[i]:
                return i

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        n = len(fitness)
        fmax = _checked_fmax(fitness)
        out = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            m = max(self._BATCH, size - filled)
            idx = np.minimum(
                (np.asarray(rng.random(m)) * n).astype(np.int64), n - 1
            )
            accept = np.asarray(rng.random(m)) * fmax < fitness[idx]
            won = idx[accept]
            take = min(len(won), size - filled)
            out[filled : filled + take] = won[:take]
            filled += take
        return out
