"""Abstract base class and registry for selection methods.

A :class:`SelectionMethod` turns a validated fitness vector and a uniform
source into a selected index.  Methods are stateless value objects; batch
selection (:meth:`SelectionMethod.select_many`) has a generic loop
implementation that subclasses override with vectorised versions.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Type

import numpy as np

from repro.core.fitness import validate_fitness
from repro.errors import UnknownMethodError

__all__ = [
    "SelectionMethod",
    "register_method",
    "get_method",
    "available_methods",
    "exact_methods",
]

_REGISTRY: Dict[str, Type["SelectionMethod"]] = {}


def register_method(cls: Type["SelectionMethod"]) -> Type["SelectionMethod"]:
    """Class decorator adding ``cls`` to the global method registry."""
    name = cls.name
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    if name in _REGISTRY:
        raise ValueError(f"selection method {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def get_method(name: str) -> "SelectionMethod":
    """Instantiate the registered method called ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise UnknownMethodError(
            f"unknown selection method {name!r}; available: {available_methods()}"
        ) from None


def available_methods() -> List[str]:
    """Sorted names of every registered method."""
    return sorted(_REGISTRY)


def exact_methods() -> List[str]:
    """Names of methods whose selection distribution is exactly ``F_i``."""
    return sorted(name for name, cls in _REGISTRY.items() if cls.exact)


class SelectionMethod(abc.ABC):
    """One roulette-wheel selection algorithm.

    Attributes
    ----------
    name:
        Registry key (also used in experiment configs and the CLI).
    exact:
        ``True`` when the induced distribution is exactly ``F_i``
        (the paper's logarithmic bidding, prefix-sum, and the classical
        samplers); ``False`` for the independent-roulette baseline.
    """

    name: str = ""
    exact: bool = True

    #: Key-matrix entries per chunk in :meth:`_chunked_key_argmax`
    #: (bounds peak memory at ~_CHUNK * 8 bytes per chunk).
    _CHUNK = 65536

    @abc.abstractmethod
    def select(self, fitness: np.ndarray, rng) -> int:
        """Select one index from a *validated* fitness vector.

        ``fitness`` must have passed :func:`repro.core.fitness.validate_fitness`
        (the :class:`repro.core.selector.RouletteWheel` facade guarantees
        this); ``rng`` satisfies :class:`repro.typing.UniformSource`.
        """

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        """Draw ``size`` independent selections.

        Generic loop; subclasses override with vectorised batch paths.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        out = np.empty(size, dtype=np.int64)
        for i in range(size):
            out[i] = self.select(fitness, rng)
        return out

    def _chunked_key_argmax(self, fitness: np.ndarray, rng, size: int, key_fn) -> np.ndarray:
        """Batch selection for key-race methods: chunked keys, row arg-max.

        ``key_fn(fitness, rng, size=rows)`` must return a ``(rows, n)``
        key matrix (one of the :mod:`repro.core.bidding` transforms).
        Chunking keeps peak memory at ~``_CHUNK`` floats regardless of
        ``size`` without changing the draw stream (uniforms are consumed
        in the same order as one full-size matrix).  For bulk draws from
        a *static* wheel, prefer :class:`repro.engine.CompiledWheel`.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        out = np.empty(size, dtype=np.int64)
        chunk = max(1, self._CHUNK // max(1, len(fitness)))
        for start in range(0, size, chunk):
            stop = min(start + chunk, size)
            keys = key_fn(fitness, rng, size=stop - start)
            out[start:stop] = np.argmax(keys, axis=1)
        return out

    def select_checked(self, fitness, rng) -> int:
        """Validate then select — convenience for direct method use."""
        return self.select(validate_fitness(fitness), rng)

    def __eq__(self, other) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
