"""CDF bisection roulette selection — O(n) build, O(log n) per draw.

Compute the inclusive prefix sums ``p_i`` once, then locate the spin
``R ~ U[0, p_{n-1})`` with binary search for the smallest ``i`` with
``R < p_i``.  Exact; zero-fitness items occupy zero-length intervals and
the search is right-biased so they cannot be returned.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["BinarySearchSelection"]


def _searchsorted_select(prefix: np.ndarray, spins: np.ndarray) -> np.ndarray:
    """Map spin values to indices via right-continuous inverse CDF.

    ``side='right'`` makes a spin landing exactly on a boundary ``p_i``
    resolve to the *next* interval, which (a) matches the half-open
    ``[p_{i-1}, p_i)`` intervals of the paper's prefix-sum algorithm and
    (b) skips the empty intervals of zero-fitness items.
    """
    idx = np.searchsorted(prefix, spins, side="right")
    # Guard the measure-zero R == p_{n-1} case produced by FP rounding.
    return np.minimum(idx, len(prefix) - 1)


@register_method
class BinarySearchSelection(SelectionMethod):
    """Inverse-CDF selection by bisection over prefix sums."""

    name = "binary_search"
    exact = True

    def select(self, fitness: np.ndarray, rng) -> int:
        prefix = np.cumsum(fitness)
        r = float(rng.random()) * prefix[-1]
        idx = int(_searchsorted_select(prefix, np.asarray([r]))[0])
        return self._skip_zeros(fitness, prefix, idx, r)

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        prefix = np.cumsum(fitness)
        spins = np.asarray(rng.random(size), dtype=np.float64) * prefix[-1]
        idx = _searchsorted_select(prefix, spins).astype(np.int64)
        # Vectorised zero-skip: indices pointing at zero-fitness cells can
        # only arise from FP boundary collisions; repair them one by one
        # (measure-zero frequency, so the loop body almost never runs).
        bad = np.flatnonzero(fitness[idx] == 0.0)
        for b in bad:
            idx[b] = self._skip_zeros(fitness, prefix, int(idx[b]), float(spins[b]))
        return idx

    @staticmethod
    def _skip_zeros(fitness: np.ndarray, prefix: np.ndarray, idx: int, r: float) -> int:
        """Advance past zero-length intervals hit by exact boundary spins."""
        n = len(fitness)
        while idx < n and fitness[idx] == 0.0:
            idx += 1
        if idx >= n:
            # r rounded to (or past) the total: the last positive item owns
            # the closing boundary.
            positive = np.flatnonzero(fitness > 0.0)
            idx = int(positive[-1])
        return idx
