"""The independent roulette wheel selection — the paper's inexact baseline.

Each processor draws ``r_i = f_i * rand()`` and the maximum wins (paper
§I, after Cecilia et al. 2013).  A larger fitness is *more likely* to win
but the win probability is **not** ``F_i``: the paper's worked example has
``f = (2, 1)`` where processor 0 wins with probability 3/4 instead of 2/3,
and Table II shows a processor whose true probability is 1/199 winning
with probability ~1.6e-32.  :func:`repro.stats.exact.independent_win_probabilities`
computes the exact induced distribution for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.bidding import independent_keys
from repro.core.methods.base import SelectionMethod, register_method

__all__ = ["IndependentSelection"]


@register_method
class IndependentSelection(SelectionMethod):
    """Max of ``f_i * u_i`` — biased; kept as the paper's baseline."""

    name = "independent"
    exact = False  # the whole point of the paper

    def select(self, fitness: np.ndarray, rng) -> int:
        keys = independent_keys(fitness, rng)
        return int(np.argmax(keys))

    def select_many(self, fitness: np.ndarray, rng, size: int) -> np.ndarray:
        return self._chunked_key_argmax(fitness, rng, size, independent_keys)
