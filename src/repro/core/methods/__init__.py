"""Selection-method registry and implementations.

Methods from the paper:

* :class:`LogBiddingSelection` — the contribution (§II),
* :class:`PrefixSumSelection` — the exact prefix-sum baseline (§I),
* :class:`IndependentSelection` — the *inexact* independent roulette (§I).

Classical exact samplers included as references and for the throughput
benchmarks:

* :class:`LinearScanSelection` — O(n) sequential scan,
* :class:`BinarySearchSelection` — O(log n) CDF bisection,
* :class:`AliasSelection` — Walker/Vose O(1)-per-draw alias tables,
* :class:`StochasticAcceptanceSelection` — Lipowski–Lipowska rejection,
* :class:`GumbelMaxSelection` — the Gumbel-max formulation of the race,
* :class:`EfraimidisSpirakisSelection` — ES ``u**(1/f)`` keys.

Every method is registered by name; :func:`get_method` resolves names,
:func:`available_methods` lists them, and :func:`exact_methods` lists the
ones whose selection distribution is exactly ``F_i``.
"""

from repro.core.methods.base import (
    SelectionMethod,
    available_methods,
    exact_methods,
    get_method,
    register_method,
)
from repro.core.methods.linear_scan import LinearScanSelection
from repro.core.methods.binary_search import BinarySearchSelection
from repro.core.methods.prefix_sum import PrefixSumSelection
from repro.core.methods.alias import AliasSelection, AliasTable
from repro.core.methods.stochastic_acceptance import StochasticAcceptanceSelection
from repro.core.methods.independent import IndependentSelection
from repro.core.methods.log_bidding import LogBiddingSelection
from repro.core.methods.gumbel import GumbelMaxSelection
from repro.core.methods.efraimidis_spirakis import EfraimidisSpirakisSelection
from repro.core.methods.fenwick import FenwickSelection

__all__ = [
    "SelectionMethod",
    "available_methods",
    "exact_methods",
    "get_method",
    "register_method",
    "LinearScanSelection",
    "BinarySearchSelection",
    "PrefixSumSelection",
    "AliasSelection",
    "AliasTable",
    "StochasticAcceptanceSelection",
    "IndependentSelection",
    "LogBiddingSelection",
    "GumbelMaxSelection",
    "EfraimidisSpirakisSelection",
    "FenwickSelection",
]
