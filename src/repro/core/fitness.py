"""Fitness vectors and their validation.

A *fitness vector* is the paper's ``f_0, ..., f_{n-1}``: finite,
non-negative reals, at least one of them positive.  Every selection method
in :mod:`repro.core.methods` assumes its input has passed
:func:`validate_fitness`; the :class:`RouletteWheel` facade validates once
so repeated draws pay no re-validation cost.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import DegenerateFitnessError, FitnessError
from repro.typing import FitnessLike

__all__ = ["validate_fitness", "exact_probabilities", "FitnessVector"]


def validate_fitness(fitness: FitnessLike) -> np.ndarray:
    """Validate and canonicalise a fitness vector.

    Returns a contiguous ``float64`` copy (methods may rely on dtype and
    must never mutate a caller's array).

    Raises
    ------
    FitnessError
        If the vector is empty, has a non-1-D shape, or contains negative,
        NaN, or infinite entries.
    DegenerateFitnessError
        If every entry is zero (no selection probability exists).
    """
    arr = np.asarray(fitness, dtype=np.float64)
    if arr.ndim != 1:
        raise FitnessError(f"fitness must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise FitnessError("fitness vector is empty")
    if not np.all(np.isfinite(arr)):
        raise FitnessError("fitness values must be finite (no NaN/inf)")
    if np.any(arr < 0.0):
        raise FitnessError("fitness values must be non-negative")
    if not np.any(arr > 0.0):
        raise DegenerateFitnessError("all fitness values are zero")
    # Copy defensively; np.asarray may alias caller memory.
    return np.array(arr, dtype=np.float64, copy=True)


def exact_probabilities(fitness: FitnessLike) -> np.ndarray:
    """The paper's target distribution ``F_i = f_i / sum(f)``."""
    f = validate_fitness(fitness)
    return f / f.sum()


class FitnessVector:
    """A validated, immutable fitness vector with cached derived quantities.

    Wraps the raw array together with the quantities every selection method
    wants — total, prefix sums, the non-zero support, and the exact target
    probabilities — each computed lazily and cached.
    """

    __slots__ = ("_values", "_total", "_prefix", "_support", "_probs")

    def __init__(self, fitness: FitnessLike) -> None:
        values = validate_fitness(fitness)
        values.setflags(write=False)
        self._values = values
        self._total: float | None = None
        self._prefix: np.ndarray | None = None
        self._support: np.ndarray | None = None
        self._probs: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The validated read-only ``float64`` array."""
        return self._values

    @property
    def n(self) -> int:
        """Number of processors/items (the paper's ``n``)."""
        return int(self._values.size)

    @property
    def total(self) -> float:
        """``sum(f)`` — the roulette wheel's circumference."""
        if self._total is None:
            self._total = float(self._values.sum())
        return self._total

    @property
    def prefix_sums(self) -> np.ndarray:
        """The paper's ``p_i = f_0 + ... + f_i`` (inclusive prefix sums)."""
        if self._prefix is None:
            prefix = np.cumsum(self._values)
            prefix.setflags(write=False)
            self._prefix = prefix
        return self._prefix

    @property
    def support(self) -> np.ndarray:
        """Indices with non-zero fitness (the paper's ``k`` active set)."""
        if self._support is None:
            support = np.flatnonzero(self._values > 0.0)
            support.setflags(write=False)
            self._support = support
        return self._support

    @property
    def k(self) -> int:
        """Number of non-zero fitness values (the paper's ``k``)."""
        return int(self.support.size)

    @property
    def probabilities(self) -> np.ndarray:
        """Exact target distribution ``F_i``."""
        if self._probs is None:
            probs = self._values / self.total
            probs.setflags(write=False)
            self._probs = probs
        return self._probs

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, idx):
        return self._values[idx]

    def __eq__(self, other) -> bool:
        if isinstance(other, FitnessVector):
            return np.array_equal(self._values, other._values)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FitnessVector(n={self.n}, k={self.k}, total={self.total:g})"
