"""Dynamic roulette wheel: O(log n) updates and O(log n) draws.

ACO mutates fitness between selections (pheromone updates, visited-city
zeroing).  Rebuilding a prefix-sum array or alias table per change costs
O(n); a Fenwick (binary indexed) tree over the fitness values supports

* ``update(i, f)``   — change one fitness in O(log n),
* ``select(rng)``    — one exact roulette draw in O(log n) by descending
  the implicit tree with the spin value,
* ``prefix_sum(i)``  — the paper's ``p_i`` in O(log n).

This is the classic sequential answer to the workload the paper
parallelises; the throughput bench compares it against the race and the
static samplers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.fitness import validate_fitness
from repro.errors import DegenerateFitnessError, FitnessError
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = ["FenwickSampler"]


class FenwickSampler:
    """A mutable roulette wheel backed by a Fenwick tree.

    The tree array ``_tree`` uses 1-based indexing; node ``j`` stores the
    sum of fitness over the ``j & -j`` positions ending at ``j``.
    ``select`` walks down the highest power of two, the standard
    "find smallest prefix exceeding the spin" descent.
    """

    def __init__(self, fitness: FitnessLike) -> None:
        f = validate_fitness(fitness)
        self._n = len(f)
        self._values = f.copy()
        # Linear-time Fenwick construction.
        tree = np.zeros(self._n + 1, dtype=np.float64)
        tree[1:] = f
        for j in range(1, self._n + 1):
            parent = j + (j & -j)
            if parent <= self._n:
                tree[parent] += tree[j]
        self._tree = tree
        self._size = 1
        while self._size * 2 <= self._n:
            self._size *= 2

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of items on the wheel."""
        return self._n

    @property
    def total(self) -> float:
        """Current ``sum(f)``."""
        return float(self.prefix_sum(self._n - 1))

    @property
    def values(self) -> np.ndarray:
        """Copy of the current fitness values."""
        return self._values.copy()

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> float:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        return float(self._values[i])

    # ------------------------------------------------------------------
    def update(self, i: int, fitness: float) -> None:
        """Set item ``i``'s fitness to ``fitness`` in O(log n)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        if not np.isfinite(fitness) or fitness < 0.0:
            raise FitnessError(f"fitness must be finite and >= 0, got {fitness}")
        delta = fitness - self._values[i]
        if delta == 0.0:
            return
        self._values[i] = fitness
        j = i + 1
        while j <= self._n:
            self._tree[j] += delta
            j += j & -j

    def scale(self, factor: float) -> None:
        """Multiply every fitness by ``factor`` (evaporation) in O(n).

        Cheaper than n updates: both arrays scale linearly.
        """
        if not np.isfinite(factor) or factor < 0.0:
            raise FitnessError(f"factor must be finite and >= 0, got {factor}")
        self._values *= factor
        self._tree *= factor

    def prefix_sum(self, i: int) -> float:
        """The paper's inclusive ``p_i = f_0 + ... + f_i`` in O(log n)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        j = i + 1
        acc = 0.0
        while j > 0:
            acc += self._tree[j]
            j -= j & -j
        return float(acc)

    # ------------------------------------------------------------------
    def select(self, rng=None) -> int:
        """One exact roulette draw in O(log n).

        Descends the implicit tree: at each power-of-two stride, move
        right when the spin exceeds the left subtree's mass.  FP rounding
        can land the spin on a zero-fitness position; the repair loop
        walks to the next positive item (measure-zero frequency).
        """
        total = self.total
        if total <= 0.0:
            raise DegenerateFitnessError("all fitness values are zero")
        rng = resolve_rng(rng)
        spin = float(rng.random()) * total
        pos = 0
        stride = self._size
        remaining = spin
        while stride > 0:
            nxt = pos + stride
            # <= implements the half-open interval [p_{i-1}, p_i): a spin
            # landing exactly on a boundary belongs to the next item.
            if nxt <= self._n and self._tree[nxt] <= remaining:
                remaining -= self._tree[nxt]
                pos = nxt
            stride //= 2
        # pos is now the count of items strictly before the winner.
        idx = pos
        while idx < self._n and self._values[idx] == 0.0:
            idx += 1
        if idx >= self._n:
            idx = int(np.flatnonzero(self._values > 0.0)[-1])
        return idx

    def select_many(self, size: int, rng=None) -> np.ndarray:
        """``size`` draws from the *current* wheel state."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        rng = resolve_rng(rng)
        out = np.empty(size, dtype=np.int64)
        for i in range(size):
            out[i] = self.select(rng)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FenwickSampler(n={self._n}, total={self.total:g})"
