"""Dynamic roulette wheel: O(log n) updates and O(log n) draws.

ACO mutates fitness between selections (pheromone updates, visited-city
zeroing).  Rebuilding a prefix-sum array or alias table per change costs
O(n); a Fenwick (binary indexed) tree over the fitness values supports

* ``update(i, f)``   — change one fitness in O(log n),
* ``update_many``    — a batch of changes: per-index tree walks below a
  size cutoff, one vectorised linear rebuild above it,
* ``select(rng)``    — one exact roulette draw in O(log n) by descending
  the implicit tree with the spin value,
* ``select_many``    — a batch of draws from the current state in one
  vectorised ``searchsorted`` (same half-open interval semantics and
  the same uniform stream as repeated ``select`` calls),
* ``prefix_sum(i)``  — the paper's ``p_i`` in O(log n).

This is the classic sequential answer to the workload the paper
parallelises; the throughput bench compares it against the race and the
static samplers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.fitness import validate_fitness
from repro.errors import DegenerateFitnessError, FitnessError
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = ["FenwickSampler"]


class FenwickSampler:
    """A mutable roulette wheel backed by a Fenwick tree.

    The tree array ``_tree`` uses 1-based indexing; node ``j`` stores the
    sum of fitness over the ``j & -j`` positions ending at ``j``.
    ``select`` walks down the highest power of two, the standard
    "find smallest prefix exceeding the spin" descent.
    """

    def __init__(self, fitness: FitnessLike) -> None:
        f = validate_fitness(fitness)  # already a private, writable copy
        self._n = len(f)
        self._values = f
        # Vectorised linear-time construction: the tree is fully
        # determined by the prefix sums, so building it is the same pass
        # as the above-cutoff rebuild in :meth:`update_many`.
        self._tree = np.empty(self._n + 1, dtype=np.float64)
        self._rebuild()
        self._size = 1
        while self._size * 2 <= self._n:
            self._size *= 2

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of items on the wheel."""
        return self._n

    @property
    def total(self) -> float:
        """Current ``sum(f)``."""
        return float(self.prefix_sum(self._n - 1))

    @property
    def values(self) -> np.ndarray:
        """Copy of the current fitness values."""
        return self._values.copy()

    def __len__(self) -> int:
        return self._n

    def copy(self) -> "FenwickSampler":
        """An independent copy-on-write clone of the current state.

        O(n) array copies, no re-validation and no tree rebuild — the
        cheap way for the serving registry to branch a delta chain
        without mutating the parent version's sampler.
        """
        clone = object.__new__(FenwickSampler)
        clone._n = self._n
        clone._values = self._values.copy()
        clone._tree = self._tree.copy()
        clone._size = self._size
        return clone

    def __getitem__(self, i: int) -> float:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        return float(self._values[i])

    # ------------------------------------------------------------------
    def update(self, i: int, fitness: float) -> None:
        """Set item ``i``'s fitness to ``fitness`` in O(log n)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        if not np.isfinite(fitness) or fitness < 0.0:
            raise FitnessError(f"fitness must be finite and >= 0, got {fitness}")
        delta = fitness - self._values[i]
        if delta == 0.0:
            return
        self._values[i] = fitness
        j = i + 1
        while j <= self._n:
            self._tree[j] += delta
            j += j & -j

    def update_many(self, indices, values) -> None:
        """Set ``values[j]`` at ``indices[j]`` for a whole batch at once.

        Duplicate indices resolve last-wins, matching a sequential loop
        of :meth:`update` calls.  Below :attr:`rebuild_cutoff` distinct
        indices the per-index O(log n) tree walks win; at or above it
        the whole tree is rebuilt in one vectorised linear pass
        (``tree[j] = cs[j] - cs[j - (j & -j)]`` from the cumulative sum)
        — the crossover measured by the microbenchmark in
        ``tests/core/test_dynamic.py``.  Validation is atomic: a bad
        index or value raises before any state changes.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        vals = np.asarray(values, dtype=np.float64).ravel()
        if idx.shape != vals.shape:
            raise ValueError(
                f"indices and values must match, got {idx.shape} vs {vals.shape}"
            )
        if idx.size == 0:
            return
        if int(idx.min()) < 0 or int(idx.max()) >= self._n:
            bad = idx[(idx < 0) | (idx >= self._n)][0]
            raise IndexError(f"index {int(bad)} out of range for n={self._n}")
        if not np.all(np.isfinite(vals)) or np.any(vals < 0.0):
            raise FitnessError("fitness values must be finite and >= 0")
        # Last write wins: first occurrence in the reversed batch.
        uniq, first = np.unique(idx[::-1], return_index=True)
        vals_u = vals[::-1][first]
        if uniq.size < self.rebuild_cutoff:
            for i, f in zip(uniq.tolist(), vals_u.tolist()):
                self.update(i, f)
            return
        self._values[uniq] = vals_u
        self._rebuild()

    @property
    def rebuild_cutoff(self) -> int:
        """Distinct-update count above which a full rebuild is cheaper.

        A tree walk costs ~2-3 us of Python-level iteration per index
        while the vectorised rebuild costs ~10-40 us *total* for wheels
        in the hundreds-to-thousands range, so the measured crossover is
        startlingly low: ~6 updates at n <= 1000, ~14 at n = 4000
        (microbenchmark in ``tests/core/test_dynamic.py``).
        """
        return max(6, self._n // 256)

    def _rebuild(self) -> None:
        """Recompute the whole tree from ``_values`` in one linear pass.

        Node ``j`` (1-based) covers the ``j & -j`` positions ending at
        ``j``, so its mass is the prefix-sum difference
        ``cs[j] - cs[j - (j & -j)]``.
        """
        cs = np.empty(self._n + 1, dtype=np.float64)
        cs[0] = 0.0
        np.cumsum(self._values, out=cs[1:])
        j = np.arange(1, self._n + 1)
        self._tree[0] = 0.0
        self._tree[1:] = cs[j] - cs[j - (j & -j)]

    def scale(self, factor: float) -> None:
        """Multiply every fitness by ``factor`` (evaporation) in O(n).

        Cheaper than n updates: both arrays scale linearly.
        """
        if not np.isfinite(factor) or factor < 0.0:
            raise FitnessError(f"factor must be finite and >= 0, got {factor}")
        self._values *= factor
        self._tree *= factor

    def prefix_sum(self, i: int) -> float:
        """The paper's inclusive ``p_i = f_0 + ... + f_i`` in O(log n)."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range for n={self._n}")
        j = i + 1
        acc = 0.0
        while j > 0:
            acc += self._tree[j]
            j -= j & -j
        return float(acc)

    # ------------------------------------------------------------------
    def select(self, rng=None) -> int:
        """One exact roulette draw in O(log n).

        Descends the implicit tree: at each power-of-two stride, move
        right when the spin exceeds the left subtree's mass.  FP rounding
        can land the spin on a zero-fitness position; the repair loop
        walks to the next positive item (measure-zero frequency).
        """
        total = self.total
        if total <= 0.0:
            raise DegenerateFitnessError("all fitness values are zero")
        rng = resolve_rng(rng)
        spin = float(rng.random()) * total
        pos = 0
        stride = self._size
        remaining = spin
        while stride > 0:
            nxt = pos + stride
            # <= implements the half-open interval [p_{i-1}, p_i): a spin
            # landing exactly on a boundary belongs to the next item.
            if nxt <= self._n and self._tree[nxt] <= remaining:
                remaining -= self._tree[nxt]
                pos = nxt
            stride //= 2
        # pos is now the count of items strictly before the winner.
        idx = pos
        while idx < self._n and self._values[idx] == 0.0:
            idx += 1
        if idx >= self._n:
            idx = int(np.flatnonzero(self._values > 0.0)[-1])
        return idx

    def select_many(self, size: int, rng=None) -> np.ndarray:
        """``size`` draws from the *current* wheel state, vectorised.

        Consumes the same uniform stream as ``size`` sequential
        :meth:`select` calls (``Generator.random(size)`` is the same
        draw sequence as ``size`` scalar draws) and locates every spin
        with one ``searchsorted`` over the prefix sums.  ``side="right"``
        implements the identical half-open interval convention as the
        tree descent (a spin on a boundary belongs to the next item) and
        skips zero-width (zero-fitness) positions; on integer-valued
        wheels the two paths agree bit-for-bit.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        total = self.total
        if total <= 0.0:
            raise DegenerateFitnessError("all fitness values are zero")
        rng = resolve_rng(rng)
        spins = np.asarray(rng.random(size), dtype=np.float64) * total
        cs = np.cumsum(self._values)
        out = np.searchsorted(cs, spins, side="right").astype(np.int64)
        # FP guard: a spin rounding up to the total lands past the end;
        # the final positive item owns the boundary (same repair as the
        # scalar descent).
        over = out >= self._n
        if over.any():  # pragma: no cover - FP corner
            out[over] = int(np.flatnonzero(self._values > 0.0)[-1])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FenwickSampler(n={self._n}, total={self.total:g})"
