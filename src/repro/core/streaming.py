"""Streaming (one-pass, O(1)-memory) roulette selection.

The race view makes online selection trivial: feed items one at a time,
keep only the best bid seen so far.  After any prefix of the stream the
retained item is distributed exactly as the roulette wheel over that
prefix — the same invariant the paper's CRCW shared cell ``s`` maintains,
so :class:`StreamingSelector` doubles as the sequential reference model
for the PRAM race.

Also provides A-ExpJ-style exponential jumps (:meth:`StreamingSelector.skip_weight`)
so that long runs of low-fitness items can be consumed with O(1) RNG
draws per *winner change* instead of per item.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import heapq

from repro.errors import SelectionError
from repro.rng.adapters import resolve_rng

__all__ = ["StreamingSelector", "StreamingReservoir", "streaming_select"]


class StreamingSelector:
    """Online arg-max of logarithmic bids over a fitness stream."""

    def __init__(self, rng=None) -> None:
        self._rng = resolve_rng(rng)
        self._best_key = -math.inf
        self._best_index: Optional[int] = None
        self._count = 0
        self._total = 0.0

    # ------------------------------------------------------------------
    @property
    def winner(self) -> Optional[int]:
        """Index of the current roulette winner (None before any f > 0)."""
        return self._best_index

    @property
    def best_key(self) -> float:
        """The winning bid so far (the shared cell ``s`` of the paper)."""
        return self._best_key

    @property
    def items_seen(self) -> int:
        """How many items have been offered."""
        return self._count

    @property
    def total_fitness(self) -> float:
        """Running ``sum(f)`` over the stream."""
        return self._total

    # ------------------------------------------------------------------
    def offer(self, fitness: float, index: Optional[int] = None) -> bool:
        """Feed one item; return True iff it becomes the new winner.

        Parameters
        ----------
        fitness:
            The item's non-negative fitness.
        index:
            Identifier stored for the item; defaults to its stream
            position.
        """
        if fitness < 0.0 or not math.isfinite(fitness):
            raise SelectionError(f"fitness must be finite and >= 0, got {fitness}")
        idx = self._count if index is None else index
        self._count += 1
        self._total += fitness
        if fitness == 0.0:
            return False
        u = self._rng.random()
        key = math.log(1.0 - u) / fitness  # 1-u in (0,1], log <= 0
        if key > self._best_key:
            self._best_key = key
            self._best_index = idx
            return True
        return False

    def offer_many(self, fitnesses: Iterable[float]) -> Optional[int]:
        """Feed a whole iterable; return the winner afterwards."""
        for f in fitnesses:
            self.offer(f)
        return self._best_index

    def skip_weight(self) -> float:
        """Total future fitness that will pass before the winner changes.

        A-ExpJ jump: given the current best key ``s``, the amount of
        cumulative fitness ``W`` consumed until some later item beats it is
        distributed as ``Exp`` with rate ``-s`` — so
        ``W = log(u') / s`` for a fresh uniform.  Callers can skip whole
        blocks of items whose total fitness is below this threshold.
        """
        if self._best_index is None:
            return 0.0
        if self._best_key == 0.0:
            # A drawn u == 0 gives the maximal bid log(1)/f == 0.0, which
            # no later item can strictly beat; dividing by it would return
            # -inf (or NaN for a second u == 0).  The winner is final.
            return math.inf
        u = self._rng.random()
        w = math.log(1.0 - u) / self._best_key  # both logs negative -> W > 0
        # u == 0 yields the boundary draw W == 0 with the sign of -0.0;
        # normalise so callers always see a non-negative threshold.
        return w if w > 0.0 else 0.0

    def merge(self, other: "StreamingSelector") -> "StreamingSelector":
        """Combine two independent stream prefixes (parallel reduce).

        The winner of the merged stream is whichever partial winner holds
        the larger bid — exactly the tree-reduction the paper's §III
        describes for EREW machines.
        """
        merged = StreamingSelector(self._rng)
        merged._count = self._count + other._count
        merged._total = self._total + other._total
        if other._best_key > self._best_key:
            merged._best_key, merged._best_index = other._best_key, other._best_index
        else:
            merged._best_key, merged._best_index = self._best_key, self._best_index
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingSelector(items_seen={self._count}, winner={self._best_index})"
        )


class StreamingReservoir:
    """Weighted reservoir sampling of ``k`` items *without* replacement.

    Efraimidis–Spirakis A-ES with the paper's logarithmic keys: keep the
    ``k`` largest bids ``log(u_i)/f_i`` in a min-heap.  After any stream
    prefix, the retained set is distributed exactly as sequential
    roulette draw-and-remove over that prefix; the single-item case
    (``k=1``) degenerates to :class:`StreamingSelector`.

    O(k) memory, O(log k) per offered item.
    """

    def __init__(self, k: int, rng=None) -> None:
        if k <= 0:
            raise SelectionError(f"reservoir size must be positive, got {k}")
        self.k = k
        self._rng = resolve_rng(rng)
        self._heap: list = []  # (key, index) min-heap on key
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def items_seen(self) -> int:
        """How many items have been offered."""
        return self._count

    @property
    def threshold(self) -> float:
        """The smallest retained key (-inf while the reservoir has room)."""
        if len(self._heap) < self.k:
            return -math.inf
        return self._heap[0][0]

    def offer(self, fitness: float, index: Optional[int] = None) -> bool:
        """Feed one item; return True iff it entered the reservoir."""
        if fitness < 0.0 or not math.isfinite(fitness):
            raise SelectionError(f"fitness must be finite and >= 0, got {fitness}")
        idx = self._count if index is None else index
        self._count += 1
        if fitness == 0.0:
            return False
        u = self._rng.random()
        key = math.log(1.0 - u) / fitness
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (key, idx))
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, idx))
            return True
        return False

    def offer_many(self, fitnesses: Iterable[float]) -> None:
        """Feed a whole iterable."""
        for f in fitnesses:
            self.offer(f)

    def sample(self) -> list:
        """Current reservoir, in selection order (best key first)."""
        return [idx for _key, idx in sorted(self._heap, reverse=True)]


def streaming_select(fitnesses: Iterable[float], rng=None) -> Tuple[int, int]:
    """One-pass selection over an iterable.

    Returns ``(winner_index, items_seen)``.

    Raises
    ------
    SelectionError
        If the stream contained no positive fitness.
    """
    sel = StreamingSelector(rng)
    sel.offer_many(fitnesses)
    if sel.winner is None:
        raise SelectionError("stream contained no positive fitness value")
    return sel.winner, sel.items_seen
