"""The paper's primary contribution: exact roulette wheel selection.

Public surface:

* :func:`repro.core.selector.select` / :class:`RouletteWheel` — one-stop
  selection with a pluggable method,
* :mod:`repro.core.methods` — every selection algorithm (the paper's
  logarithmic random bidding, the two baselines it discusses, and the
  classic exact samplers used as additional references),
* :func:`repro.core.bidding.log_bid_keys` and friends — the raw key
  transforms, exposed for the PRAM/thread substrates,
* :func:`repro.core.without_replacement.sample_without_replacement` —
  the natural k-item extension via Efraimidis–Spirakis keys,
* :class:`repro.core.streaming.StreamingSelector` — one-pass selection
  over a fitness stream in O(1) memory.
"""

from repro.core.fitness import FitnessVector, validate_fitness, exact_probabilities
from repro.core.bidding import (
    log_bid_keys,
    gumbel_keys,
    es_keys,
    independent_keys,
    winner_from_uniforms,
)
from repro.core.methods import (
    SelectionMethod,
    available_methods,
    exact_methods,
    get_method,
    register_method,
)
from repro.core.selector import RouletteWheel, select, select_many, selection_counts
from repro.core.without_replacement import sample_without_replacement
from repro.core.streaming import StreamingReservoir, StreamingSelector, streaming_select
from repro.core.dynamic import FenwickSampler
from repro.core.batched import BATCH_METHODS, select_rows

__all__ = [
    "FitnessVector",
    "validate_fitness",
    "exact_probabilities",
    "log_bid_keys",
    "gumbel_keys",
    "es_keys",
    "independent_keys",
    "winner_from_uniforms",
    "SelectionMethod",
    "available_methods",
    "exact_methods",
    "get_method",
    "register_method",
    "RouletteWheel",
    "select",
    "select_many",
    "selection_counts",
    "sample_without_replacement",
    "StreamingSelector",
    "StreamingReservoir",
    "streaming_select",
    "FenwickSampler",
    "select_rows",
    "BATCH_METHODS",
]
