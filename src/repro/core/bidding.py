"""Bidding-key transforms — the mathematical heart of the paper.

The paper's *logarithmic random bidding* assigns processor ``i`` the key

.. math:: r_i = \\frac{\\log(\\mathrm{rand}())}{f_i},

and selects the arg-max.  Writing ``E_i = -log(rand())`` (a standard
Exp(1) variate), the key is ``-E_i / f_i``, so the arg-max of the keys is
the arg-min of ``E_i / f_i`` — the winner of an *exponential race* whose
lanes run at rates ``f_i``.  By the race lemma,
``Pr[i wins] = f_i / sum(f)`` exactly.

Two classical transforms are monotone-equivalent and produce the *same
winner from the same uniforms*:

* Efraimidis–Spirakis keys ``u_i ** (1/f_i)`` (log of the ES key is the
  paper's key),
* Gumbel-max keys ``log f_i - log(-log u_i)`` (a decreasing transform of
  ``E_i / f_i``).

This module exposes all three, plus the *incorrect* independent-roulette
key ``f_i * u_i`` used as the paper's baseline, each in scalar and
vectorised (batch) forms.  Zero-fitness entries always receive the
identity-losing key (``-inf`` / ``0``), so they can never win — matching
the paper's convention that visited ACO cities have fitness 0.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "log_bid_key",
    "log_bid_keys",
    "gumbel_keys",
    "es_keys",
    "independent_keys",
    "winner_from_uniforms",
]


def log_bid_key(u: float, f: float) -> float:
    """The paper's scalar bid ``log(u)/f`` for one processor.

    Parameters
    ----------
    u:
        A uniform variate in ``(0, 1]``.  (The half-open interval avoids
        ``log(0)``; because the distribution is continuous this changes no
        probability.)
    f:
        The processor's non-negative fitness.

    Returns
    -------
    float
        The bid; ``-inf`` when ``f == 0`` so zero-fitness processors never
        win the race.
    """
    if f < 0.0:
        raise ValueError(f"fitness must be non-negative, got {f}")
    if not 0.0 < u <= 1.0:
        raise ValueError(f"uniform variate must be in (0, 1], got {u}")
    if f == 0.0:
        return -math.inf
    return math.log(u) / f


def _uniforms(rng, shape) -> np.ndarray:
    """Draw uniforms on ``(0, 1]`` (safe under log) from a UniformSource."""
    u = np.asarray(rng.random(shape), dtype=np.float64)
    # rng.random() is [0, 1); reflect to (0, 1].
    return 1.0 - u


def _resolve_uniforms(fitness, rng, size, uniforms) -> np.ndarray:
    """The key transforms' uniforms: drawn from ``rng`` or caller-supplied.

    ``fitness`` may be a matrix (one wheel per row, used by the lockstep
    colony kernels) only when ``uniforms`` of the same shape are passed
    explicitly — the drawn-shape convention below is defined for vectors.
    """
    if uniforms is not None:
        return np.asarray(uniforms, dtype=np.float64)
    if np.ndim(fitness) != 1:
        raise ValueError(
            "matrix fitness requires explicit uniforms of the same shape"
        )
    shape = (len(fitness),) if size is None else (size, len(fitness))
    return _uniforms(rng, shape)


def _mask_zero(keys: np.ndarray, fitness, value: float) -> None:
    """Assign ``value`` to the keys of zero-fitness items, in place.

    For vector fitness the mask applies along the last axis of ``keys``
    (which may be ``(size, n)``); for matrix fitness the shapes match
    elementwise.
    """
    zero = np.asarray(fitness) == 0.0
    if zero.ndim == keys.ndim:
        keys[zero] = value
    else:
        keys[..., zero] = value


def log_bid_keys(
    fitness: np.ndarray, rng, *, size: Optional[int] = None, uniforms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Vectorised logarithmic bids for a whole fitness vector.

    Parameters
    ----------
    fitness:
        Validated non-negative ``float64`` vector of length ``n``.
    rng:
        A :class:`repro.typing.UniformSource`; ignored when ``uniforms``
        is given.
    size:
        If given, return a ``(size, n)`` matrix of independent key rows.
    uniforms:
        Optional pre-drawn uniforms in ``(0, 1]`` with the output shape —
        used by the equivalence tests to feed identical randomness to all
        key transforms.

    Returns
    -------
    numpy.ndarray
        Keys; ``-inf`` where ``fitness == 0``.
    """
    u = _resolve_uniforms(fitness, rng, size, uniforms)
    # divide: f == 0 -> -inf (masked below); over: subnormal f overflows
    # the quotient; invalid: 0/0 when u == 1 and f == 0, masked below.
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        keys = np.log(u) / fitness
    # A subnormal-but-positive fitness must still beat every zero-fitness
    # item: clamp its overflowed bid to the largest finite loser instead
    # of -inf.  (Ties among clamped bids resolve by argmax order — a
    # regime 300 orders of magnitude beyond double precision.)
    overflowed = np.isneginf(keys) & (fitness > 0.0)
    if overflowed.any():
        keys[overflowed] = np.finfo(np.float64).min
    _mask_zero(keys, fitness, -np.inf)
    return keys


def gumbel_keys(
    fitness: np.ndarray, rng, *, size: Optional[int] = None, uniforms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gumbel-max keys ``log f_i + G_i`` with ``G_i = -log(-log u_i)``.

    Monotone-equivalent to :func:`log_bid_keys`: identical uniforms give an
    identical arg-max.  Zero fitness maps to ``-inf``.
    """
    u = _resolve_uniforms(fitness, rng, size, uniforms)
    with np.errstate(divide="ignore", invalid="ignore"):
        # -log(u) in [0, inf); a second log needs the open interval guard:
        # u == 1 gives E == 0 and a +inf Gumbel, a measure-zero event that
        # still produces the correct winner (it beats every finite key and
        # corresponds to E_i/f_i == 0 winning the race).  invalid covers
        # the -inf + inf = nan of (f == 0, u == 1), masked below.
        gumbel = -np.log(-np.log(u))
        keys = np.log(fitness) + gumbel
    _mask_zero(keys, fitness, -np.inf)
    return keys


def es_keys(
    fitness: np.ndarray, rng, *, size: Optional[int] = None, uniforms: Optional[np.ndarray] = None
) -> np.ndarray:
    """Efraimidis–Spirakis keys ``u_i ** (1/f_i)``.

    The exponential of the paper's key; identical uniforms give an
    identical arg-max.  Zero fitness maps to key ``0`` (``u ** inf`` for
    ``u < 1``), the unique losing value since positive-fitness keys are
    positive.
    """
    u = _resolve_uniforms(fitness, rng, size, uniforms)
    with np.errstate(divide="ignore", over="ignore"):
        keys = np.power(u, 1.0 / fitness)
    # Mirror of the log-form clamp: a tiny positive fitness underflows
    # u**(1/f) to 0, colliding with the zero-fitness losers; lift it to
    # the smallest positive double so it still outranks them.
    underflowed = (keys == 0.0) & (fitness > 0.0)
    if underflowed.any():
        keys[underflowed] = np.nextafter(0.0, 1.0)
    _mask_zero(keys, fitness, 0.0)
    return keys


def independent_keys(
    fitness: np.ndarray, rng, *, size: Optional[int] = None, uniforms: Optional[np.ndarray] = None
) -> np.ndarray:
    """The *incorrect* independent-roulette key ``f_i * u_i`` (paper §I).

    Kept as the paper's baseline: its arg-max is biased toward large
    fitness values and is **not** distributed as ``F_i``.

    Zero-fitness entries are masked to ``-inf`` rather than keeping their
    natural key ``0``: a subnormal positive fitness can underflow
    ``f_i * u_i`` to exactly ``0.0``, and an arg-max tie at ``0`` would
    let a zero-fitness index win — the one behaviour every backend
    forbids.  Positive-fitness keys are unchanged, so the baseline's bias
    (the paper's subject) is untouched.
    """
    u = _resolve_uniforms(fitness, rng, size, uniforms)
    keys = fitness * u
    _mask_zero(keys, fitness, -np.inf)
    return keys


def winner_from_uniforms(fitness: Sequence[float], uniforms: Sequence[float]) -> int:
    """Deterministic race winner given explicit uniforms (for testing).

    Computes the paper's keys from the supplied uniforms and returns the
    arg-max index.  Raises if every key is ``-inf`` (all-zero fitness).
    """
    f = np.asarray(fitness, dtype=np.float64)
    u = np.asarray(uniforms, dtype=np.float64)
    if f.shape != u.shape:
        raise ValueError("fitness and uniforms must have the same shape")
    keys = log_bid_keys(f, rng=None, uniforms=u)
    if np.all(np.isneginf(keys)):
        raise ValueError("no positive-fitness processor to win the race")
    return int(np.argmax(keys))
