"""High-level selection facade.

:class:`RouletteWheel` binds a fitness vector to a method and an RNG and
is the API most users touch::

    >>> from repro.core import RouletteWheel
    >>> wheel = RouletteWheel([0, 1, 2, 3], method="log_bidding", rng=42)
    >>> wheel.select()                     # one index, Pr[i] = f_i / 6
    >>> wheel.select_many(10_000)          # vectorised batch
    >>> wheel.counts(10_000)               # empirical histogram

Module-level :func:`select` / :func:`select_many` are one-shot
conveniences over the same machinery.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

import numpy as np

from repro.core.fitness import FitnessVector
from repro.core.methods.base import SelectionMethod, get_method
from repro.rng.adapters import resolve_rng
from repro.typing import FitnessLike

__all__ = ["RouletteWheel", "select", "select_many", "selection_counts"]

_DEFAULT_METHOD = "log_bidding"

#: Draws per chunk in the histogram fast path of :meth:`RouletteWheel.counts`.
#: Large histograms accumulate ``bincount`` per chunk instead of holding
#: every draw; below this size a single ``select_many`` call is used.
_COUNTS_CHUNK = 1 << 18


def _resolve_method(method: Union[str, SelectionMethod, None]) -> SelectionMethod:
    if method is None:
        return get_method(_DEFAULT_METHOD)
    if isinstance(method, SelectionMethod):
        return method
    return get_method(method)


class RouletteWheel:
    """A fitness vector bound to a selection method and an RNG.

    Parameters
    ----------
    fitness:
        Non-negative fitness values, at least one positive.
    method:
        Registry name (default ``"log_bidding"``, the paper's method) or a
        :class:`SelectionMethod` instance.
    rng:
        ``None`` (fresh NumPy generator), an int seed, a
        ``numpy.random.Generator``, a :class:`repro.rng.BitGenerator`, or
        anything satisfying :class:`repro.typing.UniformSource`.
    lock:
        ``True`` to serialize draws on an internal lock, or a caller-owned
        lock object with ``acquire``/``release``.  Default ``False``: see
        the thread-safety contract below.

    **Thread-safety / RNG-sharing contract.**  A wheel's fitness vector
    and compiled method are immutable after construction and safe to
    share across threads.  The *bound RNG* is the mutable part: two
    threads calling :meth:`select_many` through the same generator
    interleave its stream nondeterministically (NumPy generators are not
    even guaranteed internally consistent under races).  Pick one of:

    * **per-call streams** (preferred, what the selection service does):
      share the wheel freely and pass each call its own ``rng=`` —
      e.g. a :func:`repro.rng.streams.request_stream` substream — so no
      shared state is touched and results stay reproducible;
    * **locked wheel**: construct with ``lock=True`` and draws through
      the bound RNG serialize (correct but contended, and replay then
      depends on thread scheduling);
    * **wheel per thread**: clone via ``RouletteWheel(wheel.fitness,
      wheel.method, rng=seed_i)`` with distinct seeds.
    """

    def __init__(
        self,
        fitness: FitnessLike,
        method: Union[str, SelectionMethod, None] = None,
        rng=None,
        lock: Union[bool, object] = False,
    ) -> None:
        self.fitness = fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        self.method = _resolve_method(method)
        self.rng = resolve_rng(rng)
        if lock is True:
            self._lock: Optional[object] = threading.Lock()
        elif lock is False or lock is None:
            self._lock = None
        else:
            self._lock = lock

    def _resolve_call_rng(self, rng):
        """The RNG for one call: per-call override or the bound default."""
        return self.rng if rng is None else resolve_rng(rng)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of items on the wheel."""
        return self.fitness.n

    @property
    def k(self) -> int:
        """Number of items with non-zero fitness."""
        return self.fitness.k

    @property
    def probabilities(self) -> np.ndarray:
        """Exact target distribution ``F_i``."""
        return self.fitness.probabilities

    # ------------------------------------------------------------------
    def select(self, *, rng=None) -> int:
        """Draw one index.

        ``rng=`` draws from a caller-supplied stream instead of the
        bound one, leaving the wheel's own state untouched — the
        race-free way to share a wheel across threads or async requests.
        """
        source = self._resolve_call_rng(rng)
        if self._lock is not None and rng is None:
            with self._lock:
                return self.method.select(self.fitness.values, source)
        return self.method.select(self.fitness.values, source)

    def select_many(self, size: int, *, rng=None) -> np.ndarray:
        """Draw ``size`` independent indices (vectorised where possible).

        ``rng=`` overrides the bound RNG for this call only (see the
        class-level thread-safety contract).
        """
        source = self._resolve_call_rng(rng)
        if self._lock is not None and rng is None:
            with self._lock:
                return self.method.select_many(self.fitness.values, source, size)
        return self.method.select_many(self.fitness.values, source, size)

    def counts(self, size: int, *, rng=None) -> np.ndarray:
        """Histogram of ``size`` draws (length ``n``).

        Chunked: large ``size`` never materialises the full draws array
        (O(n + chunk) memory); ``select_many`` semantics are untouched.
        For a compiled constant-memory driver with precomputed kernels,
        see :func:`repro.engine.stream_counts`.
        """
        if size <= _COUNTS_CHUNK:
            draws = self.select_many(size, rng=rng)
            return np.bincount(draws, minlength=self.n).astype(np.int64)
        source = self._resolve_call_rng(rng)
        counts = np.zeros(self.n, dtype=np.int64)
        if self._lock is not None and rng is None:
            # Hold the lock across chunks so a concurrent caller cannot
            # interleave mid-histogram through the bound RNG.
            with self._lock:
                for start in range(0, size, _COUNTS_CHUNK):
                    draws = self.method.select_many(
                        self.fitness.values, source, min(_COUNTS_CHUNK, size - start)
                    )
                    counts += np.bincount(draws, minlength=self.n)
            return counts
        for start in range(0, size, _COUNTS_CHUNK):
            draws = self.select_many(min(_COUNTS_CHUNK, size - start), rng=source)
            counts += np.bincount(draws, minlength=self.n)
        return counts

    def empirical_probabilities(self, size: int, *, rng=None) -> np.ndarray:
        """Relative frequencies over ``size`` draws."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        return self.counts(size, rng=rng) / float(size)

    def with_method(self, method: Union[str, SelectionMethod]) -> "RouletteWheel":
        """A new wheel over the same fitness/RNG with a different method."""
        wheel = RouletteWheel.__new__(RouletteWheel)
        wheel.fitness = self.fitness
        wheel.method = _resolve_method(method)
        wheel.rng = self.rng
        wheel._lock = self._lock
        return wheel

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RouletteWheel(n={self.n}, k={self.k}, "
            f"method={self.method.name!r})"
        )


def select(fitness: FitnessLike, rng=None, method: Union[str, SelectionMethod, None] = None) -> int:
    """One-shot selection: validate, draw once, return the index."""
    return RouletteWheel(fitness, method=method, rng=rng).select()


def select_many(
    fitness: FitnessLike,
    size: int,
    rng=None,
    method: Union[str, SelectionMethod, None] = None,
) -> np.ndarray:
    """One-shot batch selection."""
    return RouletteWheel(fitness, method=method, rng=rng).select_many(size)


def selection_counts(
    fitness: FitnessLike,
    size: int,
    rng=None,
    method: Union[str, SelectionMethod, None] = None,
) -> np.ndarray:
    """One-shot histogram of ``size`` draws."""
    return RouletteWheel(fitness, method=method, rng=rng).counts(size)
