"""Smooth partial lotteries compiled to one precise roulette wheel.

Goldberg, Fanti & Shah ("Smooth Partial Lotteries for Stable Randomized
Selection", PAPERS.md) randomise competitive selection: instead of a
deterministic top-``k`` cut over noisy scores, each candidate ``i``
receives a *marginal* selection probability ``p_i`` that varies smoothly
with their score, and a size-``k`` committee is drawn realising exactly
those marginals.  The workload is exactness-sensitive by construction —
the marginals ARE the fairness contract — which makes it the natural
stage for the source paper's precise-probability guarantee.

Two steps, both exact:

1. **Marginals** (:func:`smooth_marginals`): exponential score weights
   ``w_i = exp(s_i / smoothing)`` water-filled to ``p_i = min(1, c w_i)``
   with ``c`` chosen so ``sum p_i = k``.  ``smoothing → 0`` recovers the
   deterministic top-``k``; ``smoothing → inf`` the uniform ``k/K``
   lottery.

2. **Realisation** (:func:`decompose_marginals`): Madow's systematic
   sampling turns any marginal vector with ``sum p = k``, ``p_i <= 1``
   into a mixture of at most ``K`` fixed size-``k`` committees — the
   cut points are the fractional parts of the cumulative sums ``C_i``,
   and every ``u`` in one sub-interval of ``[0, 1)`` selects the same
   committee ``{i : some integer point u + m lands in [C_{i-1}, C_i)}``.
   Drawing the committee therefore reduces to ONE roulette spin over the
   component weights (the interval lengths), so the whole lottery
   inherits the selection backend's probability guarantee: the paper's
   log-bidding draw realises the marginals exactly, while the
   independent-roulette baseline's per-draw bias (docs/THEORY.md §5)
   propagates straight into the committee marginals — and
   :meth:`CommitteeLottery.induced_marginals` computes that bias in
   closed form via ``repro.stats.exact``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fitness import FitnessVector, exact_probabilities
from repro.engine.compiled import CompiledWheel
from repro.errors import FitnessError

__all__ = [
    "smooth_marginals",
    "decompose_marginals",
    "CommitteeLottery",
]

#: Adjacent decomposition cut points closer than this collapse into one
#: boundary.  Slivers below it are pure float artifacts of the cumsum
#: (exact arithmetic never produces them) and would otherwise surface as
#: spurious committees with ~1e-16 weight and the wrong size.
_CUT_TOLERANCE = 1e-12


def smooth_marginals(
    scores: Sequence[float], k: int, smoothing: float
) -> np.ndarray:
    """Target marginal selection probabilities for a size-``k`` lottery.

    Water-fills ``p_i = min(1, c * w_i)`` with ``w_i = exp(s_i /
    smoothing)`` and ``c`` solving ``sum_i p_i = k``: repeatedly cap the
    items whose scaled weight exceeds 1 and rescale the rest to the
    remaining budget.  At most ``K`` passes; each pass either caps at
    least one item or terminates.

    Degenerate corners are all well-defined: all-tied (or all-zero)
    scores give the uniform lottery ``k/K``; ``k == K`` selects everyone
    with probability 1; ``smoothing → 0`` approaches the deterministic
    top-``k`` indicator.
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    if not np.isfinite(s).all():
        raise ValueError("scores must be finite")
    if not 1 <= k <= s.size:
        raise ValueError(f"need 1 <= k <= {s.size}, got k={k}")
    if not (smoothing > 0.0 and np.isfinite(smoothing)):
        raise ValueError(f"smoothing must be positive and finite, got {smoothing}")
    if k == s.size:
        return np.ones(s.size, dtype=np.float64)
    p = np.zeros_like(s)
    free = np.ones(s.size, dtype=bool)
    budget = float(k)
    for _ in range(s.size):
        if budget <= 0.0 or not free.any():
            break
        idx = np.flatnonzero(free)
        # exp is shift-invariant after normalisation; recentre on the
        # *remaining* max each pass so that at tiny smoothing (where the
        # capped leaders' weights dwarf everything) the still-free
        # weights never all flush to zero.
        w = np.exp((s[idx] - s[idx].max()) / smoothing)
        scaled = (budget / w.sum()) * w
        over = scaled >= 1.0
        if not over.any():
            p[idx] = scaled
            break
        p[idx[over]] = 1.0
        budget -= int(over.sum())
        free[idx[over]] = False
    return p


def decompose_marginals(
    marginals: Sequence[float], k: int
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Madow decomposition: marginals → (committees, component weights).

    Returns at most ``K + 1`` committees (index arrays, each of size
    exactly ``k``) and their mixture weights (positive, summing to 1).
    The mixture realises the marginals *identically*: item ``i`` lies in
    committees of total weight ``p_i``, because the set of starting
    offsets ``u`` for which some integer point ``u + m`` lands in
    ``[C_{i-1}, C_i)`` has measure exactly ``C_i - C_{i-1} = p_i``.
    """
    p = np.asarray(marginals, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("marginals must be a non-empty 1-D array")
    if (p < 0.0).any() or (p > 1.0 + 1e-9).any():
        raise ValueError("marginals must lie in [0, 1]")
    if abs(float(p.sum()) - k) > 1e-6:
        raise ValueError(
            f"marginals must sum to the committee size: sum={p.sum()!r}, k={k}"
        )
    cumulative = np.concatenate(([0.0], np.cumsum(p)))
    cumulative[-1] = float(k)  # kill cumsum drift at the far boundary
    cuts = np.sort(np.mod(cumulative, 1.0))
    cuts = np.concatenate((cuts[cuts < 1.0 - _CUT_TOLERANCE], [1.0]))
    # Merge float-coincident cut points; the survivors bound genuine
    # constant-committee intervals.
    keep = np.concatenate(([True], np.diff(cuts) > _CUT_TOLERANCE))
    cuts = cuts[keep]
    if cuts[0] > _CUT_TOLERANCE:
        cuts = np.concatenate(([0.0], cuts))
    components: List[np.ndarray] = []
    weights: List[float] = []
    offsets = np.arange(k, dtype=np.float64)
    for a, b in zip(cuts[:-1], cuts[1:]):
        u = 0.5 * (a + b)
        # The k systematic points u, u+1, ..., u+k-1 each land strictly
        # inside one item's cumulative interval (u keeps them at least
        # half an interval away from every boundary), naming k distinct
        # members.
        members = np.searchsorted(cumulative, u + offsets, side="right") - 1
        members = np.unique(members)
        if members.size != k:  # pragma: no cover - guarded by _CUT_TOLERANCE
            raise AssertionError(
                f"systematic committee has {members.size} members, expected {k}"
            )
        components.append(members.astype(np.int64))
        weights.append(float(b - a))
    w = np.asarray(weights, dtype=np.float64)
    return components, w / w.sum()


class CommitteeLottery:
    """A smooth partial lottery realised by one compiled roulette wheel.

    Parameters
    ----------
    scores:
        Candidate scores (any finite floats; larger is better).
    k:
        Committee size, ``1 <= k <= len(scores)``.
    smoothing:
        Temperature of the exponential score weights (> 0).
    method:
        Selection backend for the component draw — ``"log_bidding"``
        (precise, the paper's contribution) or ``"independent"`` (the
        biased baseline), or any other registry method.
    """

    def __init__(
        self,
        scores: Sequence[float],
        k: int,
        smoothing: float = 1.0,
        *,
        method: str = "log_bidding",
    ) -> None:
        self.scores = np.asarray(scores, dtype=np.float64)
        self.k = int(k)
        self.smoothing = float(smoothing)
        self.method = str(method)
        self.marginals = smooth_marginals(self.scores, self.k, self.smoothing)
        self.components, self.weights = decompose_marginals(self.marginals, self.k)
        self._wheel = CompiledWheel(self.weights, self.method)
        self._membership: Optional[np.ndarray] = None

    @classmethod
    def from_weights(
        cls,
        weights: Union[Sequence[float], FitnessVector],
        *,
        method: str = "log_bidding",
    ) -> "CommitteeLottery":
        """A size-1 lottery whose committees are the weight indices.

        The ``k = 1`` corner of the construction: marginals are the
        normalised weights and every committee is a singleton, so the
        component draw *is* the selection distribution under audit.
        This is the entry point the ``select:lottery:*`` backends of
        ``python -m repro audit`` drive over the adversarial wheel
        suite — the full committee machinery downstream of an arbitrary
        (possibly degenerate) weight vector.
        """
        vector = (
            weights if isinstance(weights, FitnessVector) else FitnessVector(weights)
        )
        self = cls.__new__(cls)
        self.scores = vector.values
        self.k = 1
        self.smoothing = float("nan")
        self.method = str(method)
        self.marginals = vector.probabilities
        self.components = [np.asarray([i], dtype=np.int64) for i in range(vector.n)]
        self.weights = vector.values / vector.total
        self._wheel = CompiledWheel(vector, method)
        self._membership = None
        return self

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of candidates."""
        return int(self.scores.size)

    @property
    def n_components(self) -> int:
        """Committees in the mixture (at most ``n + 1``)."""
        return len(self.components)

    @property
    def membership(self) -> np.ndarray:
        """``(n_components, n)`` float membership matrix (lazily built)."""
        if self._membership is None:
            m = np.zeros((self.n_components, self.n), dtype=np.float64)
            for row, members in enumerate(self.components):
                m[row, members] = 1.0
            self._membership = m
        return self._membership

    # ------------------------------------------------------------------
    def sample_components(self, draws: int, rng=None) -> np.ndarray:
        """Draw ``draws`` committee (component) indices."""
        return self._wheel.select_many(draws, rng=rng)

    def component_counts(self, draws: int, rng=None) -> np.ndarray:
        """Histogram of ``draws`` committee draws, in O(n) memory."""
        return self._wheel.counts(draws, rng=rng)

    def sample_committees(self, draws: int, rng=None) -> np.ndarray:
        """Draw ``draws`` committees as a ``(draws, k)`` index array."""
        idx = self.sample_components(draws, rng=rng)
        if idx.size == 0:
            return np.empty((0, self.k), dtype=np.int64)
        return np.stack([self.components[i] for i in idx])

    # ------------------------------------------------------------------
    def empirical_marginals(self, component_counts: np.ndarray) -> np.ndarray:
        """Per-candidate selection frequencies from a component histogram."""
        counts = np.asarray(component_counts, dtype=np.float64)
        if counts.shape != (self.n_components,):
            raise ValueError(
                f"expected a ({self.n_components},) component histogram, "
                f"got shape {counts.shape}"
            )
        total = counts.sum()
        if total <= 0:
            raise ValueError("component histogram is empty")
        return (counts / total) @ self.membership

    def induced_marginals(self, method: Optional[str] = None) -> np.ndarray:
        """Closed-form marginals the backend actually realises.

        Exact backends induce the target marginals identically (the
        component distribution is exactly the weights); the independent
        baseline's induced component distribution comes from
        :func:`repro.stats.exact.independent_win_probabilities`, so its
        marginal bias is computed analytically, not estimated.
        """
        method = self.method if method is None else str(method)
        if method == "independent":
            from repro.stats.exact import independent_win_probabilities

            probs = independent_win_probabilities(self.weights)
        else:
            from repro.core.methods import get_method

            if not get_method(method).exact:
                raise FitnessError(
                    f"no closed-form induced marginals for inexact method {method!r}"
                )
            probs = exact_probabilities(self.weights)
        return probs @ self.membership

    def marginal_error(self, marginals: Sequence[float]) -> Dict[str, float]:
        """Deviation of realised marginals from the targets.

        ``max_abs`` is the per-candidate worst case; ``tv_per_seat`` is
        the total-variation distance of the marginal vectors normalised
        by the committee size (marginals sum to ``k``, not 1), so both
        are comparable across ``k``.
        """
        realised = np.asarray(marginals, dtype=np.float64)
        if realised.shape != self.marginals.shape:
            raise ValueError(
                f"expected shape {self.marginals.shape}, got {realised.shape}"
            )
        diff = np.abs(realised - self.marginals)
        return {
            "max_abs": float(diff.max()),
            "tv_per_seat": float(0.5 * diff.sum() / self.k),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommitteeLottery(n={self.n}, k={self.k}, "
            f"smoothing={self.smoothing}, method={self.method!r}, "
            f"components={self.n_components})"
        )
