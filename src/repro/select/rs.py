"""Parallel ranking & selection: best-arm identification by screening.

Ni, Henderson & Ciocan ("Efficient Ranking and Selection in Parallel
Computing Environments", PAPERS.md) run large-scale R&S as rounds of
*screening*: simulate every surviving system a bit more, eliminate the
statistically dominated ones, repeat — and parallelise by fanning the
simulation work over many processors.  This module reproduces that shape
on this repo's stack:

* each *system* is a :class:`repro.engine.compiled.CompiledWheel` over a
  shared outcome grid, so its simulation output distribution — and in
  particular its true mean — is known in closed form (ground truth for
  PCS accounting comes for free);
* one screening *round* draws a geometrically growing batch per
  surviving system through the constant-memory ``counts`` kernel and
  updates running moments from the histogram (never materialising
  samples);
* elimination uses the Bonferroni-corrected normal screen: system ``j``
  leaves when some survivor ``i`` satisfies ``Xbar_i - Xbar_j >
  z_{1 - alpha/(K-1)} * sqrt(S_i^2/N_i + S_j^2/N_j)``.  Union-bounding
  over the ``K - 1`` inferior systems bounds the probability the best
  system is ever eliminated by ``alpha``, so the procedure attains
  ``PCS >= 1 - alpha`` whenever the configured indifference zone
  ``delta`` separates the best mean from the rest (the slippage
  configuration :func:`make_systems` builds);
* replications are embarrassingly parallel and *deterministically
  seeded*: replication ``r`` consumes only streams derived from
  ``derive_seed(seed, r, round, system)``, so :func:`run_rs` returns
  byte-identical selections for any worker-pool size — the same
  contract as :func:`repro.engine.parallel.parallel_counts`.

Screening-round wall times are captured as a
:class:`repro.tune.sample.RuntimeSample`, feeding the Las Vegas
speedup predictor of :mod:`repro.tune` (the bench's
prediction-vs-measurement check lives in :mod:`repro.select.bench`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.compiled import CompiledWheel
from repro.rng.streams import derive_seed
from repro.tune.sample import RuntimeSample

__all__ = [
    "RSInstance",
    "ScreenResult",
    "make_systems",
    "screen",
    "run_rs",
]

#: Mean of the best system in the default slippage configuration; the
#: inferior systems sit ``delta`` below it.  Centred so both sides keep
#: non-trivial variance on the unit outcome grid.
DEFAULT_BEST_MEAN = 0.6


@dataclass
class RSInstance:
    """``K`` simulated systems over one shared outcome grid.

    ``wheels[j]`` is system ``j``'s fitness vector over ``values``; the
    exact simulation-output mean of system ``j`` is
    ``sum_i F_i * values[i]`` — recorded in ``means`` so correctness of
    a selection is a table lookup, not an estimate.
    """

    values: np.ndarray
    wheels: List[np.ndarray]
    means: np.ndarray
    delta: float

    @property
    def n_systems(self) -> int:
        return len(self.wheels)

    @property
    def best(self) -> int:
        """Index of the true best system."""
        return int(np.argmax(self.means))


@dataclass
class ScreenResult:
    """Outcome of one screening replication."""

    selected: int
    correct: bool
    rounds: int
    total_samples: int
    survivors_per_round: List[int] = field(default_factory=list)
    round_seconds: List[float] = field(default_factory=list)


def _mean_of_beta(beta: float, values: np.ndarray) -> float:
    """Mean outcome of the exponentially tilted wheel ``exp(beta * v)``."""
    w = np.exp(beta * (values - values.max()))
    return float(np.dot(w, values) / w.sum())


def _solve_beta(target: float, values: np.ndarray) -> float:
    """Bisection for ``beta`` with ``mean(exp(beta v)) == target``."""
    lo, hi = -200.0, 200.0
    if not values.min() < target < values.max():
        raise ValueError(
            f"target mean {target} outside the open outcome range "
            f"({values.min()}, {values.max()})"
        )
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _mean_of_beta(mid, values) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def make_systems(
    n_systems: int,
    delta: float,
    *,
    outcomes: int = 33,
    best_mean: float = DEFAULT_BEST_MEAN,
    best: int = 0,
) -> RSInstance:
    """The slippage configuration: one best system, the rest ``delta`` back.

    Every system is an exponentially tilted wheel ``f_i = exp(beta_j
    v_i)`` over the unit grid ``v = linspace(0, 1, outcomes)``, with
    ``beta_j`` solved by bisection so system ``best`` has exact mean
    ``best_mean`` and every other system exactly ``best_mean - delta``.
    This is the worst case for the indifference-zone guarantee — every
    inferior system sits right at the edge of the zone.
    """
    if n_systems < 1:
        raise ValueError(f"need at least one system, got {n_systems}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if outcomes < 2:
        raise ValueError(f"need at least 2 outcomes, got {outcomes}")
    if not 0 <= best < n_systems:
        raise ValueError(f"best index {best} outside [0, {n_systems})")
    values = np.linspace(0.0, 1.0, outcomes)
    targets = np.full(n_systems, best_mean - delta)
    targets[best] = best_mean
    wheels = []
    means = np.empty(n_systems)
    for j, target in enumerate(targets):
        beta = _solve_beta(float(target), values)
        w = np.exp(beta * (values - values.max()))
        wheels.append(w / w.max())  # scale-free; keep magnitudes tame
        means[j] = _mean_of_beta(beta, values)
    return RSInstance(values=values, wheels=wheels, means=means, delta=delta)


def _bonferroni_z(alpha: float, n_systems: int) -> float:
    """``z_{1 - alpha/(K-1)}`` — the screen's elimination quantile."""
    from scipy import stats as sps

    comparisons = max(1, n_systems - 1)
    return float(sps.norm.ppf(1.0 - alpha / comparisons))


def screen(
    instance: RSInstance,
    *,
    alpha: float = 0.1,
    n0: int = 64,
    growth: float = 2.0,
    max_rounds: int = 10,
    seed: int = 0,
    round_sample: Optional[RuntimeSample] = None,
) -> ScreenResult:
    """One screening replication: rounds of simulate → eliminate.

    Round ``r`` draws ``n0 * growth**r`` samples from every surviving
    system (through the compiled ``counts`` kernel — running moments
    come from the histogram against the outcome grid) and then applies
    the Bonferroni normal screen.  Stops when one survivor remains or
    ``max_rounds`` is exhausted; the selection is the surviving system
    with the highest sample mean.

    Determinism: the draw for ``(round, system)`` always runs on the
    stream ``derive_seed(seed, round, system)``, independent of the
    survivor set's history or any parallel context.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if n0 < 2:
        raise ValueError(f"n0 must be >= 2 for a variance estimate, got {n0}")
    if growth < 1.0:
        raise ValueError(f"growth must be >= 1, got {growth}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    k = instance.n_systems
    values = instance.values
    sq_values = values * values
    wheels = [CompiledWheel(f, "log_bidding") for f in instance.wheels]
    z = _bonferroni_z(alpha, k)
    n = np.zeros(k, dtype=np.int64)
    total = np.zeros(k)
    total_sq = np.zeros(k)
    alive = np.ones(k, dtype=bool)
    survivors_per_round: List[int] = []
    round_seconds: List[float] = []
    rounds = 0
    for r in range(max_rounds):
        if int(alive.sum()) <= 1:
            break
        rounds = r + 1
        batch = int(round(n0 * growth**r))
        start = time.perf_counter()
        for j in np.flatnonzero(alive):
            rng = np.random.default_rng(derive_seed(seed, r, int(j)))
            hist = wheels[j].counts(batch, rng=rng)
            n[j] += batch
            total[j] += float(hist @ values)
            total_sq[j] += float(hist @ sq_values)
        elapsed = time.perf_counter() - start
        round_seconds.append(elapsed)
        if round_sample is not None:
            round_sample.record(elapsed)
        means = total[alive] / n[alive]
        # Unbiased per-system variance from the running moments.
        var = (total_sq[alive] - n[alive] * means**2) / np.maximum(
            n[alive] - 1, 1
        )
        var = np.maximum(var, 0.0)
        se_sq = var / n[alive]
        # Pairwise screen among survivors: j falls when some i beats it
        # by more than the Bonferroni margin.
        margin = z * np.sqrt(se_sq[:, None] + se_sq[None, :])
        dominated = (means[:, None] - means[None, :] > margin).any(axis=0)
        idx = np.flatnonzero(alive)
        # Never eliminate the current leader, even under float ties.
        dominated[int(np.argmax(means))] = False
        alive[idx[dominated]] = False
        survivors_per_round.append(int(alive.sum()))
    live = np.flatnonzero(alive)
    selected = int(live[np.argmax(total[live] / np.maximum(n[live], 1))])
    return ScreenResult(
        selected=selected,
        correct=selected == instance.best,
        rounds=rounds,
        total_samples=int(n.sum()),
        survivors_per_round=survivors_per_round,
        round_seconds=round_seconds,
    )


# ----------------------------------------------------------------------
# Multi-process replication fan-out
# ----------------------------------------------------------------------
def _replication_batch(payload) -> List[Dict[str, Any]]:
    """Top-level worker body (must be picklable for the process pool)."""
    (values, wheels, means, delta, alpha, n0, growth, max_rounds, seed, reps) = payload
    instance = RSInstance(
        values=values, wheels=list(wheels), means=means, delta=delta
    )
    out = []
    for r in reps:
        result = screen(
            instance,
            alpha=alpha,
            n0=n0,
            growth=growth,
            max_rounds=max_rounds,
            seed=derive_seed(seed, r),
        )
        out.append(
            {
                "replication": r,
                "selected": result.selected,
                "correct": result.correct,
                "rounds": result.rounds,
                "total_samples": result.total_samples,
                "round_seconds": result.round_seconds,
            }
        )
    return out


def run_rs(
    instance: RSInstance,
    replications: int,
    *,
    alpha: float = 0.1,
    n0: int = 64,
    growth: float = 2.0,
    max_rounds: int = 10,
    seed: int = 0,
    workers: Optional[int] = None,
    round_sample: Optional[RuntimeSample] = None,
) -> Dict[str, Any]:
    """Estimate PCS over independent screening replications.

    Replication ``r`` is a pure function of ``derive_seed(seed, r)``;
    the fan-out only changes *where* it runs.  Results are reduced in
    replication order, so the report (selections, PCS, sample counts)
    is byte-identical for every ``workers`` value — the determinism
    certificate ``python -m repro bench-select`` records.

    ``workers=None`` consults the calibrated
    :func:`repro.engine.parallel.suggest_workers` with the estimated
    total draw budget.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    if workers is None:
        from repro.engine.parallel import suggest_workers

        # Budget estimate: every system could survive all rounds.
        per_rep = int(n0 * (growth**max_rounds - 1) / max(growth - 1, 1e-9))
        workers = suggest_workers(replications * per_rep * instance.n_systems)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    workers = min(workers, replications)
    base = (
        instance.values,
        tuple(instance.wheels),
        instance.means,
        instance.delta,
        alpha,
        n0,
        growth,
        max_rounds,
        seed,
    )
    shards = [list(range(w, replications, workers)) for w in range(workers)]
    start = time.perf_counter()
    if workers == 1:
        shard_results = [_replication_batch((*base, shards[0]))]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            shard_results = list(
                pool.map(_replication_batch, [(*base, s) for s in shards])
            )
    wall_s = time.perf_counter() - start
    by_rep = sorted(
        (row for shard in shard_results for row in shard),
        key=lambda row: row["replication"],
    )
    if round_sample is not None:
        for row in by_rep:
            round_sample.record_many(row["round_seconds"])
    correct = np.asarray([row["correct"] for row in by_rep], dtype=bool)
    samples = np.asarray([row["total_samples"] for row in by_rep], dtype=np.int64)
    rounds = np.asarray([row["rounds"] for row in by_rep], dtype=np.int64)
    return {
        "replications": replications,
        "workers": workers,
        "pcs": float(correct.mean()),
        "correct": int(correct.sum()),
        "selected": [row["selected"] for row in by_rep],
        "total_samples": int(samples.sum()),
        "mean_samples": float(samples.mean()),
        "mean_rounds": float(rounds.mean()),
        "wall_s": wall_s,
        "samples_per_s": float(samples.sum() / wall_s) if wall_s > 0 else 0.0,
        "true_best": instance.best,
        "alpha": alpha,
        "delta": instance.delta,
    }
