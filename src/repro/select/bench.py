"""``python -m repro bench-select``: gate the selection workloads.

The record (``BENCH_select.json``) evaluates the subsystem's claims:

1. **Lottery exactness gate** — the headline precision win.  A smooth
   partial lottery (``K`` candidates, ``k`` seats, score-smoothed
   marginals) is compiled to one committee wheel and sampled with the
   precise log-bidding backend and with the paper's independent-
   roulette baseline *at the same draw budget*.  The gate requires the
   precise backend's worst marginal error to stay within tolerance
   while the independent baseline measurably exceeds it — the bias is
   structural (the closed-form induced marginals are recorded
   alongside), so no budget rescues it.

2. **R&S PCS gate** — screening on the slippage configuration (every
   inferior system exactly ``delta`` below the best) must select the
   true best in at least a ``1 - alpha`` fraction of replications.

3. **Parallel-screening speedup leg** — replication fan-out wall-clock
   at ``1`` vs ``N`` workers against the :func:`repro.tune.sharded_speedup`
   work-sharing model.  On hosts with fewer than 4 cores the measurement
   is meaningless (workers time-slice), so the leg auto-skips with the
   reason recorded — the BENCH_tune discipline.

4. **Prediction check** (satellite: tune integration) — screening-round
   runtimes recorded into a :class:`repro.tune.RuntimeSample` must yield
   a distribution whose ``expected_min(W)`` matches a seeded Monte
   Carlo resampling of min-of-``W`` from the same sample.  This
   validates the speedup-curve inputs on every host, with no wall-clock
   noise in the oracle.

Plus the acceptance-criterion **determinism certificate**: ``run_rs``
selections and sample counts are byte-identical for 1 and ``N``
workers.  The validator refuses records where the certificate fails.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Any, Dict

import numpy as np

from repro._version import __version__
from repro.rng.streams import derive_seed
from repro.select.lottery import CommitteeLottery
from repro.select.rs import make_systems, run_rs
from repro.tune.predictor import RuntimeDistribution
from repro.tune.sample import RuntimeSample

__all__ = [
    "run_bench_select",
    "validate_bench_select",
    "write_bench_select",
    "render_bench_select",
    "BENCH_SELECT_SCHEMA",
]

#: Schema tag for BENCH_select.json (bump on layout changes).
BENCH_SELECT_SCHEMA = "repro/bench-select/v1"

#: Sections every record must carry (used by the CI smoke check).
_REQUIRED_SECTIONS = (
    "lottery",
    "rs",
    "parallel",
    "prediction",
    "determinism",
)

#: Worst per-seat marginal error the precise backend must stay inside.
#: At the default 200k-draw budget the sampling noise on a marginal is
#: ~1e-3, two orders below the tolerance; the independent baseline's
#: structural bias on the default wheel is ~0.4, two orders above it.
LOTTERY_TOLERANCE = 0.02

#: Relative error allowed between ``expected_min`` and its Monte Carlo
#: resampling oracle (20k trials keeps the MC noise well inside this).
PREDICTION_TOLERANCE = 0.05

#: Relative error allowed between the work-sharing speedup model and
#: the measured fan-out speedup (wall-clock leg, multi-core hosts only).
SPEEDUP_TOLERANCE = 0.35

#: Worker count of the speedup leg and the determinism certificate.
_FANOUT_WORKERS = 4

#: Integer key namespace for :func:`repro.rng.streams.derive_seed`
#: (string keys are not supported): keeps the bench's substreams
#: disjoint from the replication streams ``derive_seed(seed, r)``.
_KEY_SCORES = 1_000_001
_KEY_DRAWS = {"log_bidding": 1_000_002, "independent": 1_000_003}
_KEY_PRED = 1_000_004


# ----------------------------------------------------------------------
def _lottery_section(
    seed: int, *, n: int, k: int, smoothing: float, draws: int
) -> Dict[str, Any]:
    """Precise vs independent committee marginals at one draw budget."""
    rng = np.random.default_rng(derive_seed(seed, _KEY_SCORES))
    scores = rng.normal(size=n)
    results: Dict[str, Any] = {}
    elapsed: Dict[str, float] = {}
    for method in ("log_bidding", "independent"):
        lottery = CommitteeLottery(scores, k, smoothing=smoothing, method=method)
        draw_rng = np.random.default_rng(derive_seed(seed, _KEY_DRAWS[method]))
        start = time.perf_counter()
        counts = lottery.component_counts(draws, rng=draw_rng)
        elapsed[method] = time.perf_counter() - start
        empirical = lottery.empirical_marginals(counts)
        emp_err = lottery.marginal_error(empirical)
        analytic = lottery.induced_marginals()
        ana_err = lottery.marginal_error(analytic)
        results[method] = {
            "empirical_max_abs": emp_err["max_abs"],
            "empirical_tv_per_seat": emp_err["tv_per_seat"],
            "analytic_max_abs": ana_err["max_abs"],
            "analytic_tv_per_seat": ana_err["tv_per_seat"],
            "elapsed_s": elapsed[method],
            "draws_per_s": draws / elapsed[method] if elapsed[method] else 0.0,
        }
    precise = results["log_bidding"]["empirical_max_abs"]
    biased = results["independent"]["empirical_max_abs"]
    return {
        "n": n,
        "k": k,
        "smoothing": smoothing,
        "draws": draws,
        "n_components": lottery.n_components,
        "methods": results,
        "tolerance": LOTTERY_TOLERANCE,
        "precise_within": bool(precise <= LOTTERY_TOLERANCE),
        "baseline_outside": bool(biased > LOTTERY_TOLERANCE),
        "separation": biased / precise if precise > 0 else math.inf,
        "gate_met": bool(
            precise <= LOTTERY_TOLERANCE and biased > LOTTERY_TOLERANCE
        ),
    }


# ----------------------------------------------------------------------
def _rs_section(
    seed: int,
    *,
    n_systems: int,
    delta: float,
    alpha: float,
    replications: int,
    n0: int,
    round_sample: RuntimeSample,
) -> Dict[str, Any]:
    """PCS on the slippage configuration, single-worker reference run."""
    instance = make_systems(n_systems, delta)
    report = run_rs(
        instance,
        replications,
        alpha=alpha,
        n0=n0,
        seed=seed,
        workers=1,
        round_sample=round_sample,
    )
    target = 1.0 - alpha
    return {
        "n_systems": n_systems,
        "delta": delta,
        "alpha": alpha,
        "replications": replications,
        "n0": n0,
        "true_best": report["true_best"],
        "pcs": report["pcs"],
        "correct": report["correct"],
        "mean_rounds": report["mean_rounds"],
        "mean_samples": report["mean_samples"],
        "total_samples": report["total_samples"],
        "wall_s": report["wall_s"],
        "samples_per_s": report["samples_per_s"],
        "target_pcs": target,
        "gate_met": bool(report["pcs"] >= target),
    }


# ----------------------------------------------------------------------
def _parallel_section(
    seed: int,
    *,
    n_systems: int,
    delta: float,
    alpha: float,
    replications: int,
    n0: int,
    cpu_count: int,
) -> Dict[str, Any]:
    """Measured fan-out speedup vs the work-sharing model, or a skip."""
    if cpu_count < _FANOUT_WORKERS:
        return {
            "workers": _FANOUT_WORKERS,
            "skipped": True,
            "skip_reason": (
                f"cpu_count={cpu_count} < {_FANOUT_WORKERS}: replication "
                f"workers would time-slice cores and the wall-clock speedup "
                f"would not reflect the work-sharing model"
            ),
            "gate_tolerance": SPEEDUP_TOLERANCE,
            "gate_met": True,
        }
    from repro.tune.predictor import sharded_speedup

    instance = make_systems(n_systems, delta)
    kwargs = dict(alpha=alpha, n0=n0, seed=seed)
    solo = run_rs(instance, replications, workers=1, **kwargs)
    fanned = run_rs(instance, replications, workers=_FANOUT_WORKERS, **kwargs)
    measured = solo["wall_s"] / fanned["wall_s"] if fanned["wall_s"] else 1.0
    # Pool startup is the only modelled overhead; estimate it from the
    # calibrated spawn cost when a calibration is cached, else zero.
    try:
        from repro.tune.calibration import load_calibration

        cal = load_calibration()
        overhead = cal.spawn_overhead_s if cal is not None else 0.0
    except Exception:
        overhead = 0.0
    predicted = sharded_speedup(
        solo["wall_s"], _FANOUT_WORKERS, overhead_s=overhead
    )
    error = abs(predicted - measured) / measured if measured else 0.0
    return {
        "workers": _FANOUT_WORKERS,
        "skipped": False,
        "skip_reason": None,
        "solo_wall_s": solo["wall_s"],
        "fanned_wall_s": fanned["wall_s"],
        "measured_speedup": measured,
        "predicted_speedup": predicted,
        "spawn_overhead_s": overhead,
        "relative_error": error,
        "gate_tolerance": SPEEDUP_TOLERANCE,
        "gate_met": bool(error <= SPEEDUP_TOLERANCE),
    }


# ----------------------------------------------------------------------
def _prediction_section(
    seed: int, round_sample: RuntimeSample, *, trials: int = 20_000
) -> Dict[str, Any]:
    """``expected_min`` vs seeded resampling of min-of-W round times.

    The distribution built from recorded screening-round runtimes is
    exactly what :func:`repro.tune.RuntimeDistribution.speedup_curve`
    consumes; resampling min-of-``W`` from the *same* empirical values
    is a noise-free-model / noisy-oracle check that runs identically on
    every host.
    """
    if round_sample.count < 2:
        raise ValueError(
            f"need at least 2 recorded round times, got {round_sample.count}"
        )
    dist = round_sample.distribution()
    rng = np.random.default_rng(derive_seed(seed, _KEY_PRED))
    values = np.asarray(round_sample.values)
    grid = (1, 2, 4, 8)
    per_worker: Dict[str, Any] = {}
    worst = 0.0
    for w in grid:
        predicted = dist.expected_min(w)
        resampled = float(
            values[rng.integers(0, values.size, size=(trials, w))]
            .min(axis=1)
            .mean()
        )
        error = abs(predicted - resampled) / resampled if resampled else 0.0
        worst = max(worst, error)
        per_worker[str(w)] = {
            "expected_min_s": predicted,
            "resampled_min_s": resampled,
            "relative_error": error,
        }
    curve = dist.speedup_curve(grid)
    return {
        "round_times_recorded": round_sample.count,
        "mean_round_s": round_sample.mean,
        "resample_trials": trials,
        "per_worker": per_worker,
        "speedup_curve": {str(w): curve[w] for w in grid},
        "worst_relative_error": worst,
        "tolerance": PREDICTION_TOLERANCE,
        "gate_met": bool(worst <= PREDICTION_TOLERANCE),
    }


# ----------------------------------------------------------------------
def _determinism_section(
    seed: int,
    *,
    n_systems: int,
    delta: float,
    alpha: float,
    replications: int,
    n0: int,
) -> Dict[str, Any]:
    """1-worker ≡ N-worker replay of the full replication fan-out."""
    instance = make_systems(n_systems, delta)
    kwargs = dict(alpha=alpha, n0=n0, seed=seed)
    solo = run_rs(instance, replications, workers=1, **kwargs)
    fanned = run_rs(instance, replications, workers=_FANOUT_WORKERS, **kwargs)
    selections_identical = solo["selected"] == fanned["selected"]
    samples_identical = solo["total_samples"] == fanned["total_samples"]
    return {
        "replications": replications,
        "workers_compared": [1, _FANOUT_WORKERS],
        "selections_identical": bool(selections_identical),
        "sample_counts_identical": bool(samples_identical),
        "pcs_identical": bool(solo["pcs"] == fanned["pcs"]),
        "ok": bool(selections_identical and samples_identical),
    }


# ----------------------------------------------------------------------
def run_bench_select(
    seed: int = 0,
    *,
    lottery_n: int = 64,
    lottery_k: int = 8,
    smoothing: float = 0.35,
    lottery_draws: int = 200_000,
    rs_systems: int = 10,
    rs_delta: float = 0.05,
    rs_alpha: float = 0.1,
    rs_replications: int = 40,
    rs_n0: int = 32,
) -> Dict[str, Any]:
    """Run every leg and assemble the BENCH_select record."""
    cpu_count = os.cpu_count() or 1
    round_sample = RuntimeSample(unit="s")

    lottery = _lottery_section(
        seed, n=lottery_n, k=lottery_k, smoothing=smoothing, draws=lottery_draws
    )
    rs = _rs_section(
        seed,
        n_systems=rs_systems,
        delta=rs_delta,
        alpha=rs_alpha,
        replications=rs_replications,
        n0=rs_n0,
        round_sample=round_sample,
    )
    parallel = _parallel_section(
        seed,
        n_systems=rs_systems,
        delta=rs_delta,
        alpha=rs_alpha,
        replications=rs_replications,
        n0=rs_n0,
        cpu_count=cpu_count,
    )
    prediction = _prediction_section(seed, round_sample)
    determinism = _determinism_section(
        seed,
        n_systems=rs_systems,
        delta=rs_delta,
        alpha=rs_alpha,
        replications=min(rs_replications, 12),
        n0=rs_n0,
    )
    return {
        "schema": BENCH_SELECT_SCHEMA,
        "config": {
            "seed": seed,
            "lottery_n": lottery_n,
            "lottery_k": lottery_k,
            "smoothing": smoothing,
            "lottery_draws": lottery_draws,
            "rs_systems": rs_systems,
            "rs_delta": rs_delta,
            "rs_alpha": rs_alpha,
            "rs_replications": rs_replications,
            "rs_n0": rs_n0,
        },
        "lottery": lottery,
        "rs": rs,
        "parallel": parallel,
        "prediction": prediction,
        "determinism": determinism,
        "gates_met": bool(
            lottery["gate_met"]
            and rs["gate_met"]
            and parallel["gate_met"]
            and prediction["gate_met"]
            and determinism["ok"]
        ),
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


# ----------------------------------------------------------------------
def validate_bench_select(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed record.

    Beyond shape, the validator *requires* the determinism certificate
    to hold — a record whose 1-worker and N-worker replays disagree is
    rejected outright, never published with a failing flag.
    """
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_SELECT_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != "
            f"{BENCH_SELECT_SCHEMA!r}"
        )
    for section in _REQUIRED_SECTIONS + ("config", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    lot = report["lottery"]
    for key in ("precise_within", "baseline_outside", "gate_met"):
        if not isinstance(lot.get(key), bool):
            raise ValueError(f"lottery must record boolean {key!r}")
    for key in ("tolerance", "separation"):
        value = lot.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"lottery.{key} must be a non-negative number, got {value!r}"
            )
    rs = report["rs"]
    pcs = rs.get("pcs")
    if not isinstance(pcs, (int, float)) or not 0.0 <= pcs <= 1.0:
        raise ValueError(f"rs.pcs must lie in [0, 1], got {pcs!r}")
    if not isinstance(rs.get("gate_met"), bool):
        raise ValueError("rs must record boolean gate_met")
    par = report["parallel"]
    if par.get("skipped"):
        if not par.get("skip_reason"):
            raise ValueError("skipped parallel leg must record a skip_reason")
    else:
        for key in ("measured_speedup", "predicted_speedup", "relative_error"):
            value = par.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise ValueError(
                    f"unskipped parallel leg must record finite {key!r}"
                )
    if not isinstance(par.get("gate_met"), bool):
        raise ValueError("parallel must record boolean gate_met")
    pred = report["prediction"]
    if not isinstance(pred.get("gate_met"), bool):
        raise ValueError("prediction must record boolean gate_met")
    det = report["determinism"]
    if det.get("ok") is not True:
        raise ValueError(
            "determinism certificate failed: 1-worker and N-worker replays "
            "must be byte-identical"
        )
    if "gates_met" not in report or not isinstance(report["gates_met"], bool):
        raise ValueError("report must record boolean gates_met")


def write_bench_select(
    report: Dict[str, Any], path: str = "BENCH_select.json"
) -> str:
    """Validate and write a select bench report; returns the path."""
    validate_bench_select(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_bench_select(report: Dict[str, Any]) -> str:
    """One-screen human summary of a select bench report."""
    lot, rs = report["lottery"], report["rs"]
    par, pred, det = (
        report["parallel"],
        report["prediction"],
        report["determinism"],
    )
    precise = lot["methods"]["log_bidding"]["empirical_max_abs"]
    biased = lot["methods"]["independent"]["empirical_max_abs"]
    lines = [
        f"== select bench: cpus={report['meta']['cpu_count']} ==",
        f"lottery (K={lot['n']}, k={lot['k']}, "
        f"smoothing={lot['smoothing']:g}, {lot['draws']} draws, "
        f"{lot['n_components']} committees):",
        f"  log_bidding max marginal error {precise:.2e} "
        f"(tol {lot['tolerance']:g}), independent {biased:.3f} "
        f"-> {lot['separation']:.0f}x separation "
        f"({'OK' if lot['gate_met'] else 'FAIL'})",
        f"rs (K={rs['n_systems']}, delta={rs['delta']:g}, "
        f"alpha={rs['alpha']:g}): PCS {rs['pcs']:.3f} over "
        f"{rs['replications']} replications "
        f"(target {rs['target_pcs']:.2f}), "
        f"{rs['mean_samples']:.0f} samples/rep in "
        f"{rs['mean_rounds']:.1f} rounds "
        f"({'OK' if rs['gate_met'] else 'FAIL'})",
    ]
    if par["skipped"]:
        lines.append(f"parallel leg: SKIPPED ({par['skip_reason']})")
    else:
        lines.append(
            f"parallel leg: measured {par['measured_speedup']:.2f}x vs "
            f"predicted {par['predicted_speedup']:.2f}x at "
            f"W={par['workers']} "
            f"({'OK' if par['gate_met'] else 'FAIL'})"
        )
    lines += [
        f"prediction: worst expected-min error "
        f"{pred['worst_relative_error'] * 100:.2f}% over "
        f"{pred['round_times_recorded']} round times "
        f"({'OK' if pred['gate_met'] else 'FAIL'})",
        f"determinism: selections={det['selections_identical']}, "
        f"samples={det['sample_counts_identical']} over "
        f"W={det['workers_compared']} "
        f"({'OK' if det['ok'] else 'FAIL'})",
        f"gates_met: {report['gates_met']}",
    ]
    return "\n".join(lines)
