"""Selection workloads on the engine: parallel R&S and smooth lotteries.

Two workloads from PAPERS.md that exercise the engine where the paper's
*precise probabilities* actually matter, both first-class
:mod:`repro.lab` scenarios and both gated by ``python -m repro
bench-select`` (→ ``BENCH_select.json``):

* :mod:`repro.select.rs` — parallel ranking & selection (Ni, Henderson
  & Ciocan): best-arm identification over simulated systems whose
  stochastic outputs are :class:`repro.engine.compiled.CompiledWheel`
  draws, with elimination-style screening rounds fanned out across
  processes on deterministic substreams;
* :mod:`repro.select.lottery` — smooth partial lotteries (Goldberg,
  Fanti & Shah): a size-``k`` committee lottery with score-smoothed
  marginal probabilities, compiled (via the systematic Madow
  decomposition) into ONE roulette wheel over at most ``K`` candidate
  committees — so the committee draw inherits the engine backend's
  probability guarantee directly.  The precise log-bidding backend
  realises the target marginals exactly; the paper's independent-
  roulette baseline visibly does not.

Importing this package rebinds the ``repro.select`` attribute from the
top-level :func:`repro.core.selector.select` function to this module
(standard submodule-import semantics), so the module is itself callable
and forwards to that function — ``repro.select([0, 1, 2], rng=0)``
keeps working whether or not the workloads were imported first.
"""

import sys
import types

from repro.core.selector import select as _select
from repro.select.lottery import (
    CommitteeLottery,
    decompose_marginals,
    smooth_marginals,
)
from repro.select.rs import (
    RSInstance,
    ScreenResult,
    make_systems,
    run_rs,
    screen,
)

__all__ = [
    "smooth_marginals",
    "decompose_marginals",
    "CommitteeLottery",
    "RSInstance",
    "ScreenResult",
    "make_systems",
    "screen",
    "run_rs",
]


class _CallableModule(types.ModuleType):
    """Module that forwards calls to the top-level ``select`` function."""

    def __call__(self, fitness, rng=None, method=None):
        if method is None:
            return _select(fitness, rng=rng)
        return _select(fitness, rng=rng, method=method)


sys.modules[__name__].__class__ = _CallableModule
