"""Shared protocols and type aliases used across :mod:`repro`.

The central abstraction is :class:`UniformSource`: anything with a
``random()`` method returning floats uniform on ``[0, 1)`` (scalar, or an
ndarray when called with a ``size``).  Both :class:`numpy.random.Generator`
and the adapters in :mod:`repro.rng.adapters` satisfy it, so every selection
method can be driven either by NumPy's vectorised generators (fast path) or
by the from-scratch generators in :mod:`repro.rng` (paper-faithful path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, Union, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np
    import numpy.typing as npt

    FitnessLike = Union[Sequence[float], "npt.NDArray[np.floating]"]
else:  # pragma: no cover - runtime alias
    FitnessLike = Union[Sequence, object]

__all__ = ["UniformSource", "FitnessLike"]


@runtime_checkable
class UniformSource(Protocol):
    """Anything producing uniform variates on ``[0, 1)``.

    ``numpy.random.Generator`` satisfies this protocol natively; the pure
    Python generators in :mod:`repro.rng` satisfy it through
    :class:`repro.rng.adapters.UniformAdapter`.
    """

    def random(self, size=None):
        """Uniform variates on ``[0, 1)``: a scalar, or an array of ``size``."""
        ...
