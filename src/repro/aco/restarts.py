"""Restart-driven ACO runs with time-to-target capture.

ACO time-to-target is a textbook Las Vegas runtime: a colony either
finds a tour at the target length quickly or stagnates in a pheromone
basin, and the long stagnation tail is exactly what restart schedules
(:mod:`repro.tune.restarts`) amortise away.  :func:`run_with_restarts`
executes a colony under any schedule — calibrated fixed cutoff or Luby
— while recording each successful run's iterations-to-target into a
:class:`repro.tune.sample.RuntimeSample`, so the schedule that ran this
probe is also how the *next* schedule gets derived.

Cutoffs are counted in **iterations**, not seconds: iteration counts
are deterministic given the colony seeds, so a restart run is exactly
reproducible (the ``(seed, workers)`` discipline of the engine applied
to search), and an iterations sample converts to wall time by the
calibrated per-iteration cost whenever seconds are needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.tune.sample import RuntimeSample

__all__ = ["run_with_restarts", "RestartRun"]


@dataclass
class RestartRun:
    """Outcome of one scheduled restart run."""

    #: Best tour seen across every attempt (None if no step completed).
    best_tour: object = None
    #: Best tour length across attempts (inf if none).
    best_length: float = math.inf
    #: True if some attempt reached the target before the budget ran out.
    reached: bool = False
    #: Attempts started (a truncated attempt still counts).
    attempts: int = 0
    #: Iterations executed across all attempts.
    iterations: int = 0
    #: Iterations-to-target of the successful attempt chain (total
    #: iterations at the moment the target was reached), when reached.
    iterations_to_target: Optional[int] = None
    #: Per-attempt iteration counts, in order.
    attempt_iterations: List[int] = field(default_factory=list)


def run_with_restarts(
    factory: Callable[[int], object],
    schedule: Sequence[float],
    *,
    target_length: float,
    max_total_iterations: int = 10_000,
    sample: Optional[RuntimeSample] = None,
) -> RestartRun:
    """Run fresh colonies under ``schedule`` until ``target_length``.

    Parameters
    ----------
    factory:
        ``factory(attempt) -> colony``; must return a *fresh* colony
        (clean pheromone, an attempt-derived rng seed) exposing the
        ``step() -> Tour`` / ``best_tour`` protocol of
        :class:`repro.aco.AntSystem`.  Seeding from ``attempt`` is what
        makes the whole restart run a pure function of its inputs.
    schedule:
        Per-attempt iteration cutoffs (``repro.tune.restarts`` output).
        A run past the last entry keeps reusing the final cutoff, so a
        finite schedule never strands the budget.
    target_length:
        Stop as soon as any attempt's best tour is <= this length.
    max_total_iterations:
        Hard budget across all attempts.
    sample:
        Optional ``RuntimeSample(unit="iterations")``; on success the
        total iterations-to-target is recorded — the capture half of
        the calibrate-then-schedule loop.
    """
    if not schedule:
        raise ValueError("schedule must have at least one cutoff")
    if max_total_iterations < 1:
        raise ValueError(
            f"max_total_iterations must be >= 1, got {max_total_iterations}"
        )
    if sample is not None and sample.unit != "iterations":
        raise ValueError(
            f'sample must have unit="iterations", got {sample.unit!r}'
        )
    run = RestartRun()
    attempt = 0
    while run.iterations < max_total_iterations and not run.reached:
        cutoff = schedule[min(attempt, len(schedule) - 1)]
        if cutoff < 1 or not math.isfinite(cutoff):
            raise ValueError(f"cutoffs must be finite and >= 1, got {cutoff}")
        colony = factory(attempt)
        run.attempts += 1
        attempt += 1
        used = 0
        budget = min(int(cutoff), max_total_iterations - run.iterations)
        while used < budget:
            colony.step()
            used += 1
            run.iterations += 1
            length = colony.best_tour.length
            if length < run.best_length:
                run.best_length = length
                run.best_tour = colony.best_tour
            if length <= target_length:
                run.reached = True
                run.iterations_to_target = run.iterations
                break
        run.attempt_iterations.append(used)
    if run.reached and sample is not None:
        sample.record(float(run.iterations_to_target))
    return run
