"""Ant-colony optimisation — the paper's motivating application.

The paper motivates parallel roulette selection by ACO for the TSP
(refs [1]–[3]): each construction step selects the next city with
probability proportional to ``pheromone^alpha * visibility^beta``, with
*visited cities carrying fitness zero* — the many-zeros regime in which
the O(log k) race shines.  This package provides:

* :mod:`repro.aco.tsp` — TSP instances, tours, nearest-neighbour and
  2-opt heuristics, and an Ant System / MMAS colony whose next-city
  selection is any registered :class:`repro.core.methods.SelectionMethod`,
* :mod:`repro.aco.coloring` — the vertex-coloring ACO of ref [4], again
  with pluggable selection.

Both record per-step ``(k, n)`` statistics so the benchmarks can measure
how sparse real ACO selection actually is.
"""

from repro.aco.tsp import (
    ACSConfig,
    AntColonySystem,
    AntSystem,
    AntSystemConfig,
    TSPInstance,
    Tour,
    nearest_neighbour_tour,
    two_opt,
)
from repro.aco.coloring import ColoringColony, ColoringConfig, ColoringInstance
from repro.aco.qap import QAPColony, QAPConfig, QAPInstance
from repro.aco.restarts import RestartRun, run_with_restarts

__all__ = [
    "TSPInstance",
    "Tour",
    "nearest_neighbour_tour",
    "two_opt",
    "AntSystem",
    "AntSystemConfig",
    "AntColonySystem",
    "ACSConfig",
    "ColoringInstance",
    "ColoringColony",
    "ColoringConfig",
    "QAPInstance",
    "QAPColony",
    "QAPConfig",
    "RestartRun",
    "run_with_restarts",
]
