"""ACO for the QAP with pluggable roulette selection.

Each ant processes the facilities in a random order and places the
current facility on a *free* location chosen by roulette over
``tau[facility, location]`` (occupied locations: fitness zero).  A
pairwise-swap local search (the standard QAP 2-exchange) optionally
polishes each assignment; pheromone is evaporated and reinforced by the
iteration best with ``1 / cost``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.aco.qap.instance import QAPInstance
from repro.aco.tsp.colony import ConstructionStats
from repro.core.methods.base import SelectionMethod, get_method
from repro.errors import ACOError
from repro.rng.adapters import resolve_rng

__all__ = ["QAPConfig", "QAPResult", "QAPColony", "swap_local_search"]


@dataclass
class QAPConfig:
    """Hyper-parameters of the QAP colony."""

    #: Ants per iteration.
    n_ants: int = 10
    #: Evaporation rate in (0, 1].
    rho: float = 0.3
    #: Pheromone exponent.
    alpha: float = 1.0
    #: Apply pairwise-swap local search to each constructed assignment.
    local_search: bool = False
    #: Selection method for the location roulette.
    selection: Union[str, SelectionMethod] = "log_bidding"
    #: Construction engine: "scalar" per-ant loop, "vectorized" lockstep.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.engine not in ("scalar", "vectorized"):
            raise ACOError(
                f"engine must be 'scalar' or 'vectorized', got {self.engine!r}"
            )
        if self.n_ants <= 0:
            raise ACOError(f"n_ants must be positive, got {self.n_ants}")
        if not 0.0 < self.rho <= 1.0:
            raise ACOError(f"rho must be in (0, 1], got {self.rho}")
        if self.alpha < 0:
            raise ACOError("alpha must be non-negative")


@dataclass
class QAPResult:
    """Best assignment found by a run."""

    #: ``assignment[f]`` = location of facility ``f``.
    assignment: np.ndarray
    #: Its cost.
    cost: float
    #: Best cost per iteration.
    history: List[float] = field(default_factory=list)


def swap_local_search(instance: QAPInstance, assignment: np.ndarray) -> np.ndarray:
    """First-improvement pairwise swaps to a local optimum."""
    perm = np.asarray(assignment, dtype=np.int64).copy()
    n = instance.n
    improved = True
    best = instance.cost(perm)
    while improved:
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                perm[i], perm[j] = perm[j], perm[i]
                c = instance.cost(perm)
                if c < best - 1e-12:
                    best = c
                    improved = True
                else:
                    perm[i], perm[j] = perm[j], perm[i]
    return perm


class QAPColony:
    """An ant colony assigning facilities to locations."""

    def __init__(
        self,
        instance: QAPInstance,
        config: Optional[QAPConfig] = None,
        rng=None,
    ) -> None:
        self.instance = instance
        self.config = config or QAPConfig()
        self.rng = resolve_rng(rng)
        sel = self.config.selection
        self.selector: SelectionMethod = (
            sel if isinstance(sel, SelectionMethod) else get_method(sel)
        )
        n = instance.n
        self.pheromone = np.ones((n, n), dtype=np.float64)
        self.best: Optional[QAPResult] = None
        self.stats = ConstructionStats()

    # ------------------------------------------------------------------
    def construct(self, rng=None, tau_alpha: Optional[np.ndarray] = None) -> np.ndarray:
        """One ant builds a full assignment.

        ``rng`` overrides the colony generator (equivalence tests drive
        each ant from its own substream); ``tau_alpha`` accepts the
        hoisted ``tau^alpha`` so :meth:`step` computes it once per
        iteration instead of once per ant.
        """
        n = self.instance.n
        rng = self.rng if rng is None else resolve_rng(rng)
        assignment = np.full(n, -1, dtype=np.int64)
        free = np.ones(n, dtype=bool)
        order = np.argsort(np.asarray(rng.random(n)))
        if tau_alpha is None:
            tau_alpha = self.pheromone**self.config.alpha
        for facility in order:
            fitness = np.where(free, tau_alpha[facility], 0.0)
            k = int(np.count_nonzero(fitness))
            if k == 0:  # pheromone underflow: uniform over free slots
                fitness = free.astype(np.float64)
                k = int(fitness.sum())
            self.stats.record(k)
            location = self.selector.select(fitness, rng)
            assignment[facility] = location
            free[location] = False
        if self.config.local_search:
            assignment = swap_local_search(self.instance, assignment)
        return assignment

    def construct_lockstep(
        self, count: Optional[int] = None, streams=None
    ) -> List[np.ndarray]:
        """All ants build assignments in lockstep (one kernel step per
        facility rank, one batched roulette per step).

        With ``streams`` the faithful kernel replays, ant for ant, the
        draws of :meth:`construct` run with ``rng=streams.generator(i)``.
        Falls back to the scalar loop for methods without a lockstep
        kernel.
        """
        from repro.engine.colony import LOCKSTEP_METHODS, qap_lockstep_assignments

        count = self.config.n_ants if count is None else int(count)
        if count <= 0:
            raise ACOError(f"count must be positive, got {count}")
        tau_alpha = self.pheromone**self.config.alpha
        if self.selector.name not in LOCKSTEP_METHODS:
            return [self.construct(tau_alpha=tau_alpha) for _ in range(count)]
        assignments = qap_lockstep_assignments(
            tau_alpha,
            count,
            self.rng,
            method=self.selector.name,
            stats=self.stats,
            streams=streams,
        )
        out = [assignments[i] for i in range(len(assignments))]
        if self.config.local_search:
            out = [swap_local_search(self.instance, a) for a in out]
        return out

    def step(self) -> QAPResult:
        """One iteration: construct, evaluate, reinforce."""
        if self.config.engine == "vectorized":
            ants = self.construct_lockstep()
        else:
            tau_alpha = self.pheromone**self.config.alpha
            ants = [
                self.construct(tau_alpha=tau_alpha)
                for _ in range(self.config.n_ants)
            ]
        costs = [self.instance.cost(a) for a in ants]
        best_idx = int(np.argmin(costs))
        iteration_best = QAPResult(
            assignment=ants[best_idx].copy(), cost=float(costs[best_idx])
        )
        if self.best is None or iteration_best.cost < self.best.cost:
            self.best = QAPResult(
                assignment=iteration_best.assignment.copy(), cost=iteration_best.cost
            )
        self.pheromone *= 1.0 - self.config.rho
        facilities = np.arange(self.instance.n)
        self.pheromone[facilities, iteration_best.assignment] += 1.0 / (
            1.0 + iteration_best.cost
        )
        self.best.history.append(self.best.cost)
        return iteration_best

    def run(self, iterations: int) -> QAPResult:
        """Run the colony; returns the best assignment found."""
        if iterations <= 0:
            raise ACOError(f"iterations must be positive, got {iterations}")
        for _ in range(iterations):
            self.step()
        assert self.best is not None
        return self.best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        best = f"{self.best.cost:.2f}" if self.best else "-"
        return f"QAPColony(instance={self.instance.name!r}, best={best})"
