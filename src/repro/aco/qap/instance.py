"""QAP instances: flow and distance matrices.

An assignment is a permutation ``perm`` with ``perm[f]`` = the location
of facility ``f``; its cost is ``sum_{i,j} flow[i,j] *
distance[perm[i], perm[j]]``.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ACOError

__all__ = ["QAPInstance"]


class QAPInstance:
    """A quadratic assignment problem of size ``n``."""

    def __init__(
        self,
        flow: np.ndarray,
        distance: np.ndarray,
        name: str = "qap",
    ) -> None:
        """Wrap flow/distance matrices (square, same size, non-negative)."""
        f = np.asarray(flow, dtype=np.float64)
        d = np.asarray(distance, dtype=np.float64)
        if f.ndim != 2 or f.shape[0] != f.shape[1]:
            raise ACOError(f"flow matrix must be square, got {f.shape}")
        if d.shape != f.shape:
            raise ACOError(f"distance shape {d.shape} != flow shape {f.shape}")
        if f.shape[0] < 2:
            raise ACOError("a QAP needs at least 2 facilities")
        for name_, m in (("flow", f), ("distance", d)):
            if not np.all(np.isfinite(m)):
                raise ACOError(f"{name_} must be finite")
            if np.any(m < 0):
                raise ACOError(f"{name_} must be non-negative")
        self._flow = f.copy()
        self._dist = d.copy()
        self._flow.setflags(write=False)
        self._dist.setflags(write=False)
        self.name = name

    # ------------------------------------------------------------------
    @classmethod
    def random_uniform(cls, n: int, seed: int = 0, scale: float = 10.0) -> "QAPInstance":
        """Uniform random flows and Euclidean location distances."""
        if n < 2:
            raise ACOError(f"need n >= 2, got {n}")
        rng = np.random.default_rng(seed)
        flow = np.floor(rng.random((n, n)) * scale)
        flow = np.triu(flow, 1)
        flow = flow + flow.T  # symmetric, zero diagonal
        coords = rng.random((n, 2)) * scale
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        return cls(flow, dist, name=f"qap-rand{n}-s{seed}")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of facilities (= locations)."""
        return self._flow.shape[0]

    @property
    def flow(self) -> np.ndarray:
        """Read-only flow matrix."""
        return self._flow

    @property
    def distance(self) -> np.ndarray:
        """Read-only distance matrix."""
        return self._dist

    def cost(self, assignment: Sequence[int]) -> float:
        """Cost of a facility -> location permutation."""
        perm = self._validated(assignment)
        return float((self._flow * self._dist[np.ix_(perm, perm)]).sum())

    def brute_force_optimum(self) -> Tuple[np.ndarray, float]:
        """Exact optimum by enumeration (n <= 9 only)."""
        if self.n > 9:
            raise ACOError(f"brute force limited to n <= 9, got {self.n}")
        best_perm: Optional[Tuple[int, ...]] = None
        best_cost = np.inf
        for perm in itertools.permutations(range(self.n)):
            c = self.cost(perm)
            if c < best_cost:
                best_cost = c
                best_perm = perm
        assert best_perm is not None
        return np.asarray(best_perm, dtype=np.int64), float(best_cost)

    def _validated(self, assignment: Sequence[int]) -> np.ndarray:
        perm = np.asarray(assignment, dtype=np.int64)
        if perm.shape != (self.n,):
            raise ACOError(f"assignment must have length {self.n}, got {perm.shape}")
        if sorted(perm.tolist()) != list(range(self.n)):
            raise ACOError("assignment is not a permutation of the locations")
        return perm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QAPInstance(name={self.name!r}, n={self.n})"
