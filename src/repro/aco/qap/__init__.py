"""Quadratic assignment problem (QAP) substrate.

The third classic ACO domain (after TSP and coloring): assign ``n``
facilities to ``n`` locations minimising ``sum_ij flow[i,j] *
distance[loc(i), loc(j)]``.  Construction assigns facilities one at a
time, selecting a *free* location by roulette over ``tau[facility,
location]`` — occupied locations carry fitness zero, so once again the
candidate count ``k`` shrinks as construction proceeds: the paper's
sparse-selection regime in a third incarnation.
"""

from repro.aco.qap.instance import QAPInstance
from repro.aco.qap.colony import QAPColony, QAPConfig, QAPResult

__all__ = ["QAPInstance", "QAPColony", "QAPConfig", "QAPResult"]
