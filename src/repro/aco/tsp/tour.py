"""Tour value objects with validity invariants."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aco.tsp.instance import TSPInstance
from repro.errors import InvalidTourError

__all__ = ["Tour"]


class Tour:
    """A closed tour: a permutation of the instance's cities.

    Immutable; the length is computed once on construction so comparisons
    are cheap.
    """

    __slots__ = ("_order", "_length", "_n")

    def __init__(self, instance: TSPInstance, order: Sequence[int]) -> None:
        arr = np.asarray(order, dtype=np.int64)
        if arr.ndim != 1 or arr.size != instance.n:
            raise InvalidTourError(
                f"tour must visit each of {instance.n} cities once, got shape {arr.shape}"
            )
        seen = np.zeros(instance.n, dtype=bool)
        if arr.min(initial=0) < 0 or arr.max(initial=0) >= instance.n:
            raise InvalidTourError("tour contains out-of-range city indices")
        seen[arr] = True
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            raise InvalidTourError(f"tour is not a permutation (missing city {missing})")
        arr = arr.copy()
        arr.setflags(write=False)
        self._order = arr
        self._n = instance.n
        self._length = instance.tour_length(arr)

    @classmethod
    def from_valid(cls, instance: TSPInstance, order: np.ndarray, length: float) -> "Tour":
        """Wrap an already-validated permutation without re-checking.

        Fast path for batched construction: the lockstep kernel emits
        permutations by construction and computes all tour lengths in
        one vectorised pass, so per-tour revalidation would dominate
        the construction time it is meant to measure.  Callers MUST
        guarantee ``order`` is a permutation of ``range(instance.n)``
        and ``length`` its closed-tour length.
        """
        tour = object.__new__(cls)
        arr = np.array(order, dtype=np.int64)
        arr.setflags(write=False)
        tour._order = arr
        tour._n = instance.n
        tour._length = float(length)
        return tour

    @property
    def order(self) -> np.ndarray:
        """Read-only visiting order."""
        return self._order

    @property
    def length(self) -> float:
        """Closed-tour length."""
        return self._length

    @property
    def n(self) -> int:
        """Number of cities."""
        return self._n

    def canonical(self) -> np.ndarray:
        """Rotation/reflection-normalised order (for equality testing).

        Starts at city 0 and takes the direction whose second city has the
        smaller index, so all 2n representations of a closed tour map to
        one array.
        """
        arr = self._order
        start = int(np.flatnonzero(arr == 0)[0])
        rotated = np.roll(arr, -start)
        if rotated[1] > rotated[-1]:
            rotated = np.roll(rotated[::-1], 1)
        return rotated

    def __eq__(self, other) -> bool:
        if isinstance(other, Tour):
            return self._n == other._n and np.array_equal(self.canonical(), other.canonical())
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.canonical().tobytes())

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tour(n={self._n}, length={self._length:.3f})"
