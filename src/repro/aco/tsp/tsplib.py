"""TSPLIB95 file format support.

Reads and writes the de-facto standard TSP instance format so the colony
runs on published benchmark instances.  Supported ``EDGE_WEIGHT_TYPE``s:

* ``EUC_2D`` — rounded Euclidean (the format's ``nint`` convention),
* ``CEIL_2D`` — ceiling Euclidean,
* ``ATT`` — the pseudo-Euclidean att48/att532 metric,
* ``EXPLICIT`` with ``FULL_MATRIX``, ``UPPER_ROW``, ``LOWER_DIAG_ROW``,
  or ``UPPER_DIAG_ROW`` edge-weight sections.

The parser is deliberately strict: unknown types raise instead of
guessing, and dimensions must match the declared ``DIMENSION``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.aco.tsp.instance import TSPInstance
from repro.errors import ACOError

__all__ = ["parse_tsplib", "load_tsplib", "to_tsplib"]


class TSPLIBError(ACOError):
    """Malformed or unsupported TSPLIB content."""


def _euc_2d(coords: np.ndarray) -> np.ndarray:
    diff = coords[:, None, :] - coords[None, :, :]
    return np.floor(np.sqrt((diff**2).sum(axis=2)) + 0.5)  # nint()


def _ceil_2d(coords: np.ndarray) -> np.ndarray:
    diff = coords[:, None, :] - coords[None, :, :]
    return np.ceil(np.sqrt((diff**2).sum(axis=2)))


def _att(coords: np.ndarray) -> np.ndarray:
    diff = coords[:, None, :] - coords[None, :, :]
    rij = np.sqrt((diff**2).sum(axis=2) / 10.0)
    tij = np.floor(rij + 0.5)
    return np.where(tij < rij, tij + 1.0, tij)


_COORD_METRICS = {"EUC_2D": _euc_2d, "CEIL_2D": _ceil_2d, "ATT": _att}


def _parse_header(lines: List[str]) -> Dict[str, str]:
    header: Dict[str, str] = {}
    for line in lines:
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        header[key.strip().upper()] = value.strip()
    return header


def parse_tsplib(text: str) -> TSPInstance:
    """Parse TSPLIB content into a :class:`TSPInstance`."""
    raw_lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
    if not raw_lines:
        raise TSPLIBError("empty TSPLIB content")
    # Split into header and sections.
    section: Optional[str] = None
    header_lines: List[str] = []
    coords_tokens: List[str] = []
    weights_tokens: List[str] = []
    for line in raw_lines:
        upper = line.upper()
        if upper.startswith("NODE_COORD_SECTION"):
            section = "coords"
            continue
        if upper.startswith("EDGE_WEIGHT_SECTION"):
            section = "weights"
            continue
        if upper.startswith(("DISPLAY_DATA_SECTION", "TOUR_SECTION")):
            section = "ignored"
            continue
        if upper == "EOF":
            section = None
            continue
        if section == "coords":
            coords_tokens.extend(line.split())
        elif section == "weights":
            weights_tokens.extend(line.split())
        elif section is None:
            header_lines.append(line)

    header = _parse_header(header_lines)
    problem_type = header.get("TYPE", "TSP").upper()
    if not problem_type.startswith("TSP"):
        raise TSPLIBError(f"unsupported TYPE {problem_type!r} (only TSP)")
    try:
        dimension = int(header["DIMENSION"])
    except KeyError:
        raise TSPLIBError("missing DIMENSION") from None
    except ValueError:
        raise TSPLIBError(f"bad DIMENSION {header['DIMENSION']!r}") from None
    name = header.get("NAME", "tsplib")
    weight_type = header.get("EDGE_WEIGHT_TYPE", "EUC_2D").upper()

    if weight_type in _COORD_METRICS:
        if len(coords_tokens) != 3 * dimension:
            raise TSPLIBError(
                f"NODE_COORD_SECTION has {len(coords_tokens)} tokens, "
                f"expected {3 * dimension}"
            )
        rows = np.asarray(coords_tokens, dtype=np.float64).reshape(dimension, 3)
        # Column 0 is the (1-based) node id; verify it to catch shuffles.
        ids = rows[:, 0].astype(np.int64)
        order = np.argsort(ids)
        rows = rows[order]
        if not np.array_equal(rows[:, 0].astype(np.int64), np.arange(1, dimension + 1)):
            raise TSPLIBError("node ids must be 1..DIMENSION")
        coords = rows[:, 1:3]
        distances = _COORD_METRICS[weight_type](coords)
        np.fill_diagonal(distances, 0.0)
        return TSPInstance(distances, coords=coords, name=name)

    if weight_type == "EXPLICIT":
        fmt = header.get("EDGE_WEIGHT_FORMAT", "FULL_MATRIX").upper()
        values = np.asarray(weights_tokens, dtype=np.float64)
        n = dimension
        d = np.zeros((n, n), dtype=np.float64)
        if fmt == "FULL_MATRIX":
            if values.size != n * n:
                raise TSPLIBError(f"FULL_MATRIX needs {n * n} values, got {values.size}")
            d = values.reshape(n, n)
        elif fmt in ("UPPER_ROW", "UPPER_DIAG_ROW", "LOWER_DIAG_ROW"):
            expected = {
                "UPPER_ROW": n * (n - 1) // 2,
                "UPPER_DIAG_ROW": n * (n + 1) // 2,
                "LOWER_DIAG_ROW": n * (n + 1) // 2,
            }[fmt]
            if values.size != expected:
                raise TSPLIBError(f"{fmt} needs {expected} values, got {values.size}")
            it = iter(values)
            if fmt == "UPPER_ROW":
                for i in range(n):
                    for j in range(i + 1, n):
                        d[i, j] = d[j, i] = next(it)
            elif fmt == "UPPER_DIAG_ROW":
                for i in range(n):
                    for j in range(i, n):
                        d[i, j] = d[j, i] = next(it)
            else:  # LOWER_DIAG_ROW
                for i in range(n):
                    for j in range(0, i + 1):
                        d[i, j] = d[j, i] = next(it)
            np.fill_diagonal(d, 0.0)
        else:
            raise TSPLIBError(f"unsupported EDGE_WEIGHT_FORMAT {fmt!r}")
        np.fill_diagonal(d, 0.0)
        return TSPInstance(d, name=name)

    raise TSPLIBError(f"unsupported EDGE_WEIGHT_TYPE {weight_type!r}")


def load_tsplib(path) -> TSPInstance:
    """Parse a ``.tsp`` file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_tsplib(fh.read())


def to_tsplib(instance: TSPInstance, weight_type: str = "EUC_2D") -> str:
    """Serialise an instance to TSPLIB text.

    Coordinate instances are written as ``EUC_2D`` (note TSPLIB's rounded
    metric: a parse round-trip yields the *rounded* distances);
    matrix-only instances are written as ``EXPLICIT FULL_MATRIX``.
    """
    n = instance.n
    lines = [
        f"NAME : {instance.name}",
        "TYPE : TSP",
        f"COMMENT : written by repro",
        f"DIMENSION : {n}",
    ]
    if instance.coords is not None and weight_type.upper() in _COORD_METRICS:
        lines.append(f"EDGE_WEIGHT_TYPE : {weight_type.upper()}")
        lines.append("NODE_COORD_SECTION")
        for i, (x, y) in enumerate(instance.coords, start=1):
            lines.append(f"{i} {x:.6f} {y:.6f}")
    else:
        lines.append("EDGE_WEIGHT_TYPE : EXPLICIT")
        lines.append("EDGE_WEIGHT_FORMAT : FULL_MATRIX")
        lines.append("EDGE_WEIGHT_SECTION")
        for row in instance.distances:
            lines.append(" ".join(f"{v:.6f}" for v in row))
    lines.append("EOF")
    return "\n".join(lines) + "\n"
