"""TSP instances: symmetric distance matrices with generators.

Instances are immutable value objects holding a full ``n x n`` distance
matrix (dense is fine at ACO scales) plus optional planar coordinates.
Generators cover the evaluation needs: uniform random Euclidean (the
standard ACO benchmark family), clustered Euclidean, points on a circle
(known optimal tour = the convex hull order, handy for asserting solver
correctness), and explicit matrices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ACOError

__all__ = ["TSPInstance"]


class TSPInstance:
    """A symmetric TSP over cities ``0 .. n-1``."""

    def __init__(
        self,
        distances: np.ndarray,
        coords: Optional[np.ndarray] = None,
        name: str = "tsp",
    ) -> None:
        """Wrap a distance matrix.

        Parameters
        ----------
        distances:
            ``(n, n)`` symmetric matrix, zero diagonal, non-negative,
            finite.
        coords:
            Optional ``(n, 2)`` planar coordinates (for plotting and for
            regenerating distances).
        name:
            Label used in benchmark output.
        """
        d = np.asarray(distances, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ACOError(f"distance matrix must be square, got {d.shape}")
        n = d.shape[0]
        if n < 2:
            raise ACOError(f"a TSP needs at least 2 cities, got {n}")
        if not np.all(np.isfinite(d)):
            raise ACOError("distances must be finite")
        if np.any(d < 0):
            raise ACOError("distances must be non-negative")
        if np.any(np.abs(np.diag(d)) > 0):
            raise ACOError("diagonal must be zero")
        if not np.allclose(d, d.T):
            raise ACOError("distance matrix must be symmetric")
        self._d = d.copy()
        self._d.setflags(write=False)
        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (n, 2):
                raise ACOError(f"coords must be ({n}, 2), got {coords.shape}")
            coords = coords.copy()
            coords.setflags(write=False)
        self._coords = coords
        self.name = name

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coords(cls, coords: np.ndarray, name: str = "euclidean") -> "TSPInstance":
        """Euclidean instance from ``(n, 2)`` coordinates."""
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ACOError(f"coords must be (n, 2), got {coords.shape}")
        diff = coords[:, None, :] - coords[None, :, :]
        d = np.sqrt((diff**2).sum(axis=2))
        return cls(d, coords=coords, name=name)

    @classmethod
    def random_euclidean(
        cls, n: int, seed: int = 0, box: float = 100.0, name: Optional[str] = None
    ) -> "TSPInstance":
        """``n`` uniform points in a ``box x box`` square."""
        if n < 2:
            raise ACOError(f"need at least 2 cities, got {n}")
        rng = np.random.default_rng(seed)
        coords = rng.random((n, 2)) * box
        return cls.from_coords(coords, name=name or f"rand{n}-s{seed}")

    @classmethod
    def clustered(
        cls,
        n: int,
        clusters: int = 4,
        seed: int = 0,
        box: float = 100.0,
        spread: float = 5.0,
        name: Optional[str] = None,
    ) -> "TSPInstance":
        """``n`` points in Gaussian clusters — the structured ACO testbed."""
        if clusters < 1:
            raise ACOError(f"need at least 1 cluster, got {clusters}")
        rng = np.random.default_rng(seed)
        centres = rng.random((clusters, 2)) * box
        assign = rng.integers(0, clusters, size=n)
        coords = centres[assign] + rng.normal(scale=spread, size=(n, 2))
        return cls.from_coords(coords, name=name or f"clust{n}x{clusters}-s{seed}")

    @classmethod
    def circle(cls, n: int, radius: float = 100.0, name: Optional[str] = None) -> "TSPInstance":
        """``n`` points on a circle; the optimal tour visits them in order.

        The known optimum (perimeter of the regular n-gon) makes this the
        correctness oracle for solver tests.
        """
        if n < 3:
            raise ACOError(f"circle instance needs >= 3 cities, got {n}")
        angles = 2.0 * np.pi * np.arange(n) / n
        coords = radius * np.column_stack([np.cos(angles), np.sin(angles)])
        return cls.from_coords(coords, name=name or f"circle{n}")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of cities."""
        return self._d.shape[0]

    @property
    def distances(self) -> np.ndarray:
        """Read-only distance matrix."""
        return self._d

    @property
    def coords(self) -> Optional[np.ndarray]:
        """Read-only coordinates, if the instance is planar."""
        return self._coords

    def distance(self, a: int, b: int) -> float:
        """Distance between two cities."""
        return float(self._d[a, b])

    def tour_length(self, order: Sequence[int]) -> float:
        """Length of the closed tour visiting ``order`` then returning."""
        idx = np.asarray(order, dtype=np.int64)
        if idx.size != self.n:
            raise ACOError(f"tour visits {idx.size} cities, instance has {self.n}")
        return float(self._d[idx, np.roll(idx, -1)].sum())

    def optimal_circle_length(self) -> float:
        """Perimeter of the regular n-gon (only meaningful for circle())."""
        if self._coords is None:
            raise ACOError("optimal_circle_length needs a coordinate instance")
        radius = float(np.linalg.norm(self._coords[0]))
        return self.n * 2.0 * radius * np.sin(np.pi / self.n)

    def visibility(self) -> np.ndarray:
        """The ACO heuristic matrix ``eta = 1/d`` (inf-free, zero diagonal)."""
        with np.errstate(divide="ignore"):
            eta = 1.0 / self._d
        # Self-loops and coincident cities: no heuristic preference signal.
        eta[~np.isfinite(eta)] = 0.0
        return eta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TSPInstance(name={self.name!r}, n={self.n})"
