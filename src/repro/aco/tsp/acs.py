"""Ant Colony System (Dorigo & Gambardella 1997 — the paper's ref [1]).

ACS differs from the Ant System in three ways, all implemented here:

* **pseudo-random proportional rule** — with probability ``q0`` the ant
  moves greedily to ``argmax tau * eta^beta``; otherwise it spins the
  roulette (the paper's selection is the non-greedy branch),
* **local pheromone update** — each traversed edge decays toward
  ``tau0`` immediately (``tau <- (1-phi) tau + phi tau0``), decorrelating
  ants within an iteration,
* **global update on the best tour only** — evaporation and deposit
  apply solely to the best-so-far tour's edges.

The roulette branch still goes through the pluggable selection method,
so the exact-vs-biased comparison extends to ACS unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.aco.tsp.colony import AntSystem, AntSystemConfig
from repro.aco.tsp.heuristics import two_opt
from repro.aco.tsp.instance import TSPInstance
from repro.aco.tsp.tour import Tour
from repro.errors import ACOError

__all__ = ["ACSConfig", "AntColonySystem"]


@dataclass
class ACSConfig(AntSystemConfig):
    """ACS hyper-parameters (extends :class:`AntSystemConfig`).

    Dorigo & Gambardella's published defaults: ``q0=0.9``, ``phi=0.1``,
    ``rho=0.1``, ``beta=2``.
    """

    #: Probability of the greedy (exploitation) branch.
    q0: float = 0.9
    #: Local pheromone evaporation rate.
    phi: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.q0 <= 1.0:
            raise ACOError(f"q0 must be in [0, 1], got {self.q0}")
        if not 0.0 < self.phi <= 1.0:
            raise ACOError(f"phi must be in (0, 1], got {self.phi}")


class AntColonySystem(AntSystem):
    """ACS colony; reuses the Ant System's pheromone/visibility plumbing."""

    def __init__(
        self,
        instance: TSPInstance,
        config: Optional[ACSConfig] = None,
        rng=None,
    ) -> None:
        super().__init__(instance, config or ACSConfig(), rng=rng)

    # ------------------------------------------------------------------
    def construct_tour(self, start: Optional[int] = None) -> Tour:
        """One ant's tour under the pseudo-random proportional rule.

        The local update mutates ``self.pheromone`` *during* construction
        (ACS semantics), so desirability is recomputed per step from the
        live matrices rather than snapshotted.
        """
        cfg: ACSConfig = self.config  # type: ignore[assignment]
        inst = self.instance
        n = inst.n
        tau = self.pheromone
        eta_beta = self._eta_beta
        order = np.empty(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        current = int(self.rng.random() * n) % n if start is None else int(start)
        order[0] = current
        visited[current] = True
        for step in range(1, n):
            fitness = np.where(
                visited, 0.0, (tau[current] ** cfg.alpha) * eta_beta[current]
            )
            k = int(np.count_nonzero(fitness))
            if k == 0:
                fitness = (~visited).astype(np.float64)
                k = int(fitness.sum())
            if float(self.rng.random()) < cfg.q0:
                nxt = int(np.argmax(fitness))  # exploitation
            else:
                self.stats.record(k)  # only the roulette branch races
                nxt = self.selector.select(fitness, self.rng)
            # Local update: traversed edge decays toward tau0.
            tau[current, nxt] = (1.0 - cfg.phi) * tau[current, nxt] + cfg.phi * self._tau0
            tau[nxt, current] = tau[current, nxt]
            order[step] = nxt
            visited[nxt] = True
            current = nxt
        tour = Tour(inst, order)
        if cfg.local_search:
            tour = two_opt(inst, tour)
        return tour

    # ------------------------------------------------------------------
    def _deposit(self, tours) -> None:
        """Global update: best-so-far tour only (canonical ACS)."""
        cfg: ACSConfig = self.config  # type: ignore[assignment]
        assert self.best_tour is not None
        a = self.best_tour.order
        b = np.roll(a, -1)
        deposit = cfg.q / self.best_tour.length
        self.pheromone[a, b] = (1.0 - cfg.rho) * self.pheromone[a, b] + cfg.rho * deposit
        self.pheromone[b, a] = self.pheromone[a, b]
        np.fill_diagonal(self.pheromone, 0.0)
