"""Ant Colony System (Dorigo & Gambardella 1997 — the paper's ref [1]).

ACS differs from the Ant System in three ways, all implemented here:

* **pseudo-random proportional rule** — with probability ``q0`` the ant
  moves greedily to ``argmax tau * eta^beta``; otherwise it spins the
  roulette (the paper's selection is the non-greedy branch),
* **local pheromone update** — each traversed edge decays toward
  ``tau0`` immediately (``tau <- (1-phi) tau + phi tau0``), decorrelating
  ants within an iteration,
* **global update on the best tour only** — evaporation and deposit
  apply solely to the best-so-far tour's edges.

The roulette branch still goes through the pluggable selection method,
so the exact-vs-biased comparison extends to ACS unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.aco.tsp.colony import AntSystem, AntSystemConfig
from repro.aco.tsp.heuristics import two_opt
from repro.aco.tsp.instance import TSPInstance
from repro.aco.tsp.tour import Tour
from repro.errors import ACOError

__all__ = ["ACSConfig", "AntColonySystem"]


@dataclass
class ACSConfig(AntSystemConfig):
    """ACS hyper-parameters (extends :class:`AntSystemConfig`).

    Dorigo & Gambardella's published defaults: ``q0=0.9``, ``phi=0.1``,
    ``rho=0.1``, ``beta=2``.
    """

    #: Probability of the greedy (exploitation) branch.
    q0: float = 0.9
    #: Local pheromone evaporation rate.
    phi: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.q0 <= 1.0:
            raise ACOError(f"q0 must be in [0, 1], got {self.q0}")
        if not 0.0 < self.phi <= 1.0:
            raise ACOError(f"phi must be in (0, 1], got {self.phi}")


class AntColonySystem(AntSystem):
    """ACS colony; reuses the Ant System's pheromone/visibility plumbing."""

    def __init__(
        self,
        instance: TSPInstance,
        config: Optional[ACSConfig] = None,
        rng=None,
    ) -> None:
        super().__init__(instance, config or ACSConfig(), rng=rng)

    # ------------------------------------------------------------------
    def construct_tour(
        self,
        start: Optional[int] = None,
        rng=None,
        desirability: Optional[np.ndarray] = None,
    ) -> Tour:
        """One ant's tour under the pseudo-random proportional rule.

        The local update mutates ``self.pheromone`` *during* construction
        (ACS semantics), so desirability is recomputed per step from the
        live matrices rather than snapshotted — the ``desirability``
        argument is accepted for signature compatibility with the base
        class and ignored.
        """
        cfg: ACSConfig = self.config  # type: ignore[assignment]
        inst = self.instance
        n = inst.n
        tau = self.pheromone
        eta_beta = self._eta_beta
        rng = self.rng if rng is None else rng
        order = np.empty(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        current = int(rng.random() * n) % n if start is None else int(start)
        order[0] = current
        visited[current] = True
        for step in range(1, n):
            fitness = np.where(
                visited, 0.0, (tau[current] ** cfg.alpha) * eta_beta[current]
            )
            k = int(np.count_nonzero(fitness))
            if k == 0:
                fitness = (~visited).astype(np.float64)
                k = int(fitness.sum())
            if float(rng.random()) < cfg.q0:
                nxt = int(np.argmax(fitness))  # exploitation
            else:
                self.stats.record(k)  # only the roulette branch races
                nxt = self.selector.select(fitness, rng)
            # Local update: traversed edge decays toward tau0.
            tau[current, nxt] = (1.0 - cfg.phi) * tau[current, nxt] + cfg.phi * self._tau0
            tau[nxt, current] = tau[current, nxt]
            order[step] = nxt
            visited[nxt] = True
            current = nxt
        tour = Tour(inst, order)
        if cfg.local_search:
            tour = two_opt(inst, tour)
        return tour

    def _iteration_tours_scalar(self):
        """ACS cannot hoist desirability: local updates mutate ``tau`` live."""
        return [self.construct_tour() for _ in range(self.config.n_ants)]

    def construct_tours_lockstep(self, count: Optional[int] = None, streams=None):
        """Lockstep ACS construction: all ants advance one city per step.

        Each step computes the ``(count, n)`` choice-weight matrix from
        the *live* pheromone, draws the greedy-vs-roulette coin for every
        ant at once, resolves the roulette rows with one batched
        selection, then applies the local update edge-batched: an edge
        traversed by ``c`` ants this step decays ``c`` times, i.e.
        ``tau <- (1-phi)^c tau + (1 - (1-phi)^c) tau0`` (the closed form
        of ``c`` sequential local updates).

        Not seed-for-seed equivalent to the scalar path — scalar ants see
        each predecessor's *complete* tour of local updates, lockstep
        ants only the updates of earlier steps — so ``streams`` (the
        faithful replay mode) raises.  Both schedules are standard
        parallel-ACS semantics; tour quality is statistically unchanged.
        """
        from repro.engine.colony import (
            CDF_METHODS,
            LOCKSTEP_METHODS,
            blocked_choice,
            lockstep_keys,
        )

        cfg: ACSConfig = self.config  # type: ignore[assignment]
        if streams is not None:
            raise ACOError(
                "ACS has no faithful lockstep mode: the scalar path "
                "interleaves local pheromone updates per ant, the "
                "lockstep path per step"
            )
        count = cfg.n_ants if count is None else int(count)
        if count <= 0:
            raise ACOError(f"count must be positive, got {count}")
        if self.selector.name not in LOCKSTEP_METHODS:
            return [self.construct_tour() for _ in range(count)]
        inst = self.instance
        n = inst.n
        m = count
        tau = self.pheromone
        eta_beta = self._eta_beta
        rng = self.rng
        cdf = self.selector.name in CDF_METHODS
        rows = np.arange(m)
        orders = np.empty((m, n), dtype=np.int64)
        visited = np.zeros((m, n), dtype=bool)
        currents = (np.asarray(rng.random(m)) * n).astype(np.int64) % n
        orders[:, 0] = currents
        visited[rows, currents] = True
        for step in range(1, n):
            if cfg.alpha == 1.0:
                base = tau[currents] * eta_beta[currents]
            else:
                base = (tau[currents] ** cfg.alpha) * eta_beta[currents]
            fitness = np.where(visited, 0.0, base)
            ks = np.count_nonzero(fitness, axis=1)
            dead = ks == 0
            if dead.any():
                fitness[dead] = (~visited[dead]).astype(np.float64)
                ks[dead] = n - step
            greedy = np.asarray(rng.random(m)) < cfg.q0
            winners = np.empty(m, dtype=np.int64)
            if greedy.any():
                winners[greedy] = np.argmax(fitness[greedy], axis=1)
            roulette = ~greedy
            if roulette.any():
                self.stats.record_many(ks[roulette])
                sub = fitness[roulette]
                if cdf:
                    spins = np.asarray(rng.random(int(roulette.sum())))
                    winners[roulette] = blocked_choice(sub, spins)
                else:
                    keys = lockstep_keys(sub, rng, method=self.selector.name)
                    winners[roulette] = np.argmax(keys, axis=1)
            # Edge-batched local update (symmetric instance: canonicalise
            # each edge to (min, max) before counting traversals).
            a = np.minimum(currents, winners)
            b = np.maximum(currents, winners)
            uniq, counts = np.unique(a * n + b, return_counts=True)
            ua = uniq // n
            ub = uniq % n
            decay = (1.0 - cfg.phi) ** counts
            tau[ua, ub] = decay * tau[ua, ub] + (1.0 - decay) * self._tau0
            tau[ub, ua] = tau[ua, ub]
            orders[:, step] = winners
            visited[rows, winners] = True
            currents = winners
        tours = [Tour(inst, orders[i]) for i in range(m)]
        if cfg.local_search:
            tours = [two_opt(inst, t) for t in tours]
        return tours

    # ------------------------------------------------------------------
    def _deposit(self, tours) -> None:
        """Global update: best-so-far tour only (canonical ACS)."""
        cfg: ACSConfig = self.config  # type: ignore[assignment]
        assert self.best_tour is not None
        a = self.best_tour.order
        b = np.roll(a, -1)
        deposit = cfg.q / self.best_tour.length
        self.pheromone[a, b] = (1.0 - cfg.rho) * self.pheromone[a, b] + cfg.rho * deposit
        self.pheromone[b, a] = self.pheromone[a, b]
        np.fill_diagonal(self.pheromone, 0.0)
