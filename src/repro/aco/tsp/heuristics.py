"""Constructive and local-search TSP heuristics.

Used for pheromone initialisation (Ant System conventionally seeds
``tau0 = m / L_nn`` with ``L_nn`` the nearest-neighbour tour length), as
colony baselines, and as the optional per-ant local search (2-opt).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aco.tsp.instance import TSPInstance
from repro.aco.tsp.tour import Tour
from repro.errors import ACOError

__all__ = ["nearest_neighbour_tour", "greedy_edge_tour", "two_opt"]


def nearest_neighbour_tour(instance: TSPInstance, start: int = 0) -> Tour:
    """Greedy nearest-unvisited-city tour from ``start``; O(n^2)."""
    n = instance.n
    if not 0 <= start < n:
        raise ACOError(f"start city {start} out of range for n={n}")
    d = instance.distances
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    visited[start] = True
    current = start
    for step in range(1, n):
        row = np.where(visited, np.inf, d[current])
        nxt = int(np.argmin(row))
        order[step] = nxt
        visited[nxt] = True
        current = nxt
    return Tour(instance, order)


def greedy_edge_tour(instance: TSPInstance) -> Tour:
    """Greedy edge-matching construction: repeatedly add the globally
    shortest edge that keeps degrees <= 2 and creates no premature cycle.

    Typically a few percent better than nearest neighbour; O(n^2 log n).
    """
    n = instance.n
    d = instance.distances
    iu = np.triu_indices(n, k=1)
    edge_order = np.argsort(d[iu], kind="stable")
    degree = np.zeros(n, dtype=np.int64)
    # Union-find over path components to reject premature cycles.
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    adj: list = [[] for _ in range(n)]
    added = 0
    for e in edge_order:
        a, b = int(iu[0][e]), int(iu[1][e])
        if degree[a] >= 2 or degree[b] >= 2:
            continue
        ra, rb = find(a), find(b)
        if ra == rb and added < n - 1:
            continue
        parent[ra] = rb
        degree[a] += 1
        degree[b] += 1
        adj[a].append(b)
        adj[b].append(a)
        added += 1
        if added == n:
            break
    # Walk the cycle into an order.
    order = [0]
    prev = -1
    current = 0
    for _ in range(n - 1):
        nxt = adj[current][0] if adj[current][0] != prev else adj[current][1]
        order.append(nxt)
        prev, current = current, nxt
    return Tour(instance, order)


def two_opt(
    instance: TSPInstance,
    tour: Tour,
    max_rounds: Optional[int] = None,
) -> Tour:
    """First-improvement 2-opt local search to a local optimum.

    Vectorised inner scan: for each edge ``(i, i+1)`` the gains of all
    candidate reconnections are evaluated with one NumPy expression.
    ``max_rounds`` caps the outer improvement sweeps (None = run to a
    local optimum).
    """
    d = instance.distances
    order = tour.order.copy()
    n = len(order)
    rounds = 0
    improved = True
    while improved:
        improved = False
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        for i in range(n - 1):
            a, b = order[i], order[(i + 1) % n]
            # Candidate second edges (j, j+1) for j > i+1 (non-adjacent).
            js = np.arange(i + 2, n if i > 0 else n - 1)
            if js.size == 0:
                continue
            c = order[js]
            e = order[(js + 1) % n]
            gain = d[a, b] + d[c, e] - d[a, c] - d[b, e]
            best = int(np.argmax(gain))
            if gain[best] > 1e-12:
                j = int(js[best])
                order[i + 1 : j + 1] = order[i + 1 : j + 1][::-1]
                improved = True
    return Tour(instance, order)
