"""Travelling-salesman substrate: instances, tours, heuristics, colonies."""

from repro.aco.tsp.instance import TSPInstance
from repro.aco.tsp.tour import Tour
from repro.aco.tsp.heuristics import greedy_edge_tour, nearest_neighbour_tour, two_opt
from repro.aco.tsp.colony import AntSystem, AntSystemConfig, ConstructionStats
from repro.aco.tsp.acs import ACSConfig, AntColonySystem
from repro.aco.tsp.tsplib import load_tsplib, parse_tsplib, to_tsplib

__all__ = [
    "TSPInstance",
    "Tour",
    "nearest_neighbour_tour",
    "greedy_edge_tour",
    "two_opt",
    "AntSystem",
    "AntSystemConfig",
    "ConstructionStats",
    "AntColonySystem",
    "ACSConfig",
    "parse_tsplib",
    "load_tsplib",
    "to_tsplib",
]
