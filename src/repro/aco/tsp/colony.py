"""Ant System / MAX-MIN Ant System with pluggable roulette selection.

The construction step is the paper's motivating workload: from city
``c`` an ant moves to city ``j`` with probability proportional to

.. math:: \\tau_{cj}^{\\alpha} \\; \\eta_{cj}^{\\beta}

over *unvisited* ``j`` — visited cities carry fitness zero, so late
construction steps have ``k`` (non-zero count) far below ``n``, the
regime in which the paper's O(log k) race beats O(log n) methods.  The
colony records exactly those ``(k, n)`` pairs per step so benchmarks can
plot the sparsity profile of a real ACO run.

The next-city choice goes through any registered
:class:`repro.core.methods.SelectionMethod`; selecting
``"independent"`` reproduces the biased GPU baseline of Cecilia et al.
(the paper's ref [6]) and measurably degrades tour quality, while every
exact method leaves quality statistically unchanged — an end-to-end
restatement of Tables I/II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.aco.tsp.heuristics import nearest_neighbour_tour, two_opt
from repro.aco.tsp.instance import TSPInstance
from repro.aco.tsp.tour import Tour
from repro.core.methods.base import SelectionMethod, get_method
from repro.errors import ACOError
from repro.rng.adapters import resolve_rng

__all__ = ["AntSystemConfig", "ConstructionStats", "AntSystem"]


@dataclass
class AntSystemConfig:
    """Hyper-parameters of the colony (Dorigo's Ant System defaults)."""

    #: Number of ants per iteration.
    n_ants: int = 20
    #: Pheromone exponent.
    alpha: float = 1.0
    #: Visibility (1/d) exponent.
    beta: float = 2.0
    #: Evaporation rate in (0, 1].
    rho: float = 0.5
    #: Deposit scale: each ant deposits ``q / tour_length`` on its edges.
    q: float = 1.0
    #: Extra deposits by the best-so-far ant (0 = plain Ant System).
    elitist_weight: float = 0.0
    #: MMAS pheromone clamping (None disables).
    tau_min: Optional[float] = None
    tau_max: Optional[float] = None
    #: Apply 2-opt to each constructed tour.
    local_search: bool = False
    #: Selection method name or instance for the next-city roulette.
    selection: Union[str, SelectionMethod] = "log_bidding"
    #: Construct all ants of an iteration with one batched roulette per
    #: step (requires a method in repro.core.batched.BATCH_METHODS;
    #: distributionally identical to the per-ant loop, much faster).
    #: Superseded by ``engine="vectorized"``; kept for compatibility.
    vectorised: bool = False
    #: Construction engine: "scalar" runs the per-ant Python loop,
    #: "vectorized" advances all ants in lockstep through the
    #: repro.engine.colony kernel (one batched selection per step).
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.engine not in ("scalar", "vectorized"):
            raise ACOError(
                f"engine must be 'scalar' or 'vectorized', got {self.engine!r}"
            )
        if self.n_ants <= 0:
            raise ACOError(f"n_ants must be positive, got {self.n_ants}")
        if not 0.0 < self.rho <= 1.0:
            raise ACOError(f"rho must be in (0, 1], got {self.rho}")
        if self.alpha < 0 or self.beta < 0:
            raise ACOError("alpha and beta must be non-negative")
        if self.q <= 0:
            raise ACOError(f"q must be positive, got {self.q}")
        if self.elitist_weight < 0:
            raise ACOError("elitist_weight must be non-negative")
        if (self.tau_min is None) != (self.tau_max is None):
            raise ACOError("tau_min and tau_max must be set together")
        if self.tau_min is not None and not 0 < self.tau_min <= self.tau_max:
            raise ACOError("need 0 < tau_min <= tau_max")


@dataclass
class ConstructionStats:
    """Sparsity statistics of the roulette calls in one colony run."""

    #: Number of roulette selections performed.
    selections: int = 0
    #: Sum over selections of the candidate count k (non-zero fitness).
    k_sum: int = 0
    #: Histogram of k values (index = k).
    k_histogram: List[int] = field(default_factory=list)

    def record(self, k: int) -> None:
        """Record one selection with ``k`` positive-fitness candidates."""
        self.selections += 1
        self.k_sum += k
        if k >= len(self.k_histogram):
            self.k_histogram.extend([0] * (k + 1 - len(self.k_histogram)))
        self.k_histogram[k] += 1

    def record_many(self, ks: np.ndarray) -> None:
        """Record a batch of selections (vectorised construction path)."""
        ks = np.asarray(ks, dtype=np.int64)
        if ks.size == 0:
            return
        self.selections += int(ks.size)
        self.k_sum += int(ks.sum())
        top = int(ks.max())
        if top >= len(self.k_histogram):
            self.k_histogram.extend([0] * (top + 1 - len(self.k_histogram)))
        if int(ks.min()) == top:
            # A lockstep step usually records one identical k per ant;
            # skip the histogram scan for that single occupied bin.
            self.k_histogram[top] += int(ks.size)
            return
        counts = np.bincount(ks, minlength=top + 1)
        for k in np.flatnonzero(counts):
            self.k_histogram[int(k)] += int(counts[k])

    def record_uniform(self, k: int, count: int) -> None:
        """Record ``count`` selections that all saw ``k`` candidates.

        Pure-integer fast path for the lockstep kernel, where one step
        records the same ``k`` for every ant; equivalent to
        ``record_many(np.full(count, k))`` without touching numpy.
        """
        self.selections += count
        self.k_sum += k * count
        if k >= len(self.k_histogram):
            self.k_histogram.extend([0] * (k + 1 - len(self.k_histogram)))
        self.k_histogram[k] += count

    @property
    def mean_k(self) -> float:
        """Average candidate count per roulette call."""
        return self.k_sum / self.selections if self.selections else 0.0


class AntSystem:
    """An Ant System colony over one TSP instance.

    Parameters
    ----------
    instance:
        The TSP to solve.
    config:
        Hyper-parameters (see :class:`AntSystemConfig`).
    rng:
        Seed / generator for all stochastic choices.
    """

    def __init__(
        self,
        instance: TSPInstance,
        config: Optional[AntSystemConfig] = None,
        rng=None,
    ) -> None:
        self.instance = instance
        self.config = config or AntSystemConfig()
        self.rng = resolve_rng(rng)
        sel = self.config.selection
        self.selector: SelectionMethod = (
            sel if isinstance(sel, SelectionMethod) else get_method(sel)
        )
        n = instance.n
        self._eta_beta = instance.visibility() ** self.config.beta
        # Conventional tau0 = n_ants / L_nn keeps early pheromone on the
        # scale of one iteration's deposits.
        nn_len = nearest_neighbour_tour(instance).length
        self._tau0 = self.config.n_ants / max(nn_len, 1e-12)
        self.pheromone = np.full((n, n), self._tau0, dtype=np.float64)
        np.fill_diagonal(self.pheromone, 0.0)
        self.best_tour: Optional[Tour] = None
        self.history: List[float] = []
        self.stats = ConstructionStats()
        # Reusable buffers for the lockstep kernel (keyed by shape).
        self._lockstep_ws: dict = {}

    # ------------------------------------------------------------------
    def _desirability(self) -> np.ndarray:
        """``tau^alpha * eta^beta`` for the current pheromone state."""
        if self.config.alpha == 1.0:
            # Dorigo's default; np.power is ~10x a multiply even for
            # exponent 1.0, and this runs once per iteration on n^2 cells.
            return self.pheromone * self._eta_beta
        return (self.pheromone**self.config.alpha) * self._eta_beta

    def construct_tour(
        self,
        start: Optional[int] = None,
        rng=None,
        desirability: Optional[np.ndarray] = None,
    ) -> Tour:
        """Build one ant's tour with roulette next-city selection.

        ``rng`` overrides the colony generator (the equivalence tests
        drive each ant from its own :class:`~repro.engine.colony.AntStreams`
        substream); ``desirability`` accepts the hoisted per-iteration
        ``tau^alpha * eta^beta`` so :meth:`step` computes it once for
        the whole colony instead of once per ant.
        """
        n = self.instance.n
        rng = self.rng if rng is None else resolve_rng(rng)
        if desirability is None:
            desirability = self._desirability()
        order = np.empty(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        current = (
            int(rng.random() * n) % n if start is None else int(start)
        )
        order[0] = current
        visited[current] = True
        for step in range(1, n):
            fitness = np.where(visited, 0.0, desirability[current])
            k = int(np.count_nonzero(fitness))
            if k == 0:
                # Pheromone/visibility can underflow to zero rows (e.g.
                # coincident cities); fall back to uniform over unvisited.
                fitness = (~visited).astype(np.float64)
                k = int(fitness.sum())
            self.stats.record(k)
            nxt = self.selector.select(fitness, rng)
            order[step] = nxt
            visited[nxt] = True
            current = nxt
        tour = Tour(self.instance, order)
        if self.config.local_search:
            tour = two_opt(self.instance, tour)
        return tour

    def construct_tours_batch(self, count: int) -> List[Tour]:
        """Construct ``count`` tours with one batched roulette per step.

        All ants advance in lockstep: step ``t`` spins ``count`` wheels
        at once (rows of a fitness matrix) — the data-parallel layout of
        the GPU ACO implementations the paper cites.  Falls back to the
        sequential loop for selection methods without a batched path.
        """
        from repro.core.batched import BATCH_METHODS, select_rows

        if count <= 0:
            raise ACOError(f"count must be positive, got {count}")
        if self.selector.name not in BATCH_METHODS:
            return [self.construct_tour() for _ in range(count)]
        n = self.instance.n
        desirability = self._desirability()
        orders = np.empty((count, n), dtype=np.int64)
        visited = np.zeros((count, n), dtype=bool)
        rows = np.arange(count)
        currents = (
            np.asarray(self.rng.random(count)) * n
        ).astype(np.int64) % n
        orders[:, 0] = currents
        visited[rows, currents] = True
        for step in range(1, n):
            fitness = np.where(visited, 0.0, desirability[currents])
            ks = np.count_nonzero(fitness, axis=1)
            dead = ks == 0
            if dead.any():
                # Underflowed rows: uniform over unvisited (same fallback
                # as the sequential path).
                fitness[dead] = (~visited[dead]).astype(np.float64)
                ks[dead] = fitness[dead].sum(axis=1).astype(np.int64)
            self.stats.record_many(ks)
            winners, degenerate = select_rows(fitness, self.rng, method=self.selector.name)
            if degenerate.any():  # pragma: no cover - excluded by fallback
                raise ACOError("batched construction hit a degenerate row")
            orders[:, step] = winners
            visited[rows, winners] = True
            currents = winners
        tours = [Tour(self.instance, orders[i]) for i in range(count)]
        if self.config.local_search:
            tours = [two_opt(self.instance, t) for t in tours]
        return tours

    def _iteration_tours_scalar(self) -> List[Tour]:
        """One iteration's tours via the per-ant loop, desirability hoisted.

        ``tau^alpha * eta^beta`` only changes between iterations, so the
        two O(n^2) power/multiply passes are computed once here and
        shared by every ant instead of recomputed per ant.
        """
        desirability = self._desirability()
        return [
            self.construct_tour(desirability=desirability)
            for _ in range(self.config.n_ants)
        ]

    def construct_tours_lockstep(
        self, count: Optional[int] = None, streams=None
    ) -> List[Tour]:
        """Construct tours with the lockstep engine kernel.

        All ants advance one city per kernel step against an
        ``(n_ants, n)`` choice-weight matrix; one vectorised batched
        selection replaces ``n_ants`` scalar Python calls.  With
        ``streams`` (an :class:`~repro.engine.colony.AntStreams`) the
        faithful replay kernel reproduces, ant for ant, the exact draws
        of :meth:`construct_tour` run with ``rng=streams.generator(i)``
        — the seed-for-seed equivalence mode.  Falls back to the scalar
        loop for selection methods without a lockstep kernel.
        """
        from repro.engine.colony import (
            LOCKSTEP_METHODS,
            tsp_lockstep_orders,
            tsp_lockstep_orders_faithful,
        )

        count = self.config.n_ants if count is None else int(count)
        if count <= 0:
            raise ACOError(f"count must be positive, got {count}")
        if self.selector.name not in LOCKSTEP_METHODS:
            desirability = self._desirability()
            return [
                self.construct_tour(desirability=desirability)
                for _ in range(count)
            ]
        desirability = self._desirability()
        if streams is not None:
            orders = tsp_lockstep_orders_faithful(
                desirability,
                streams,
                method=self.selector.name,
                stats=self.stats,
            )
        else:
            orders = tsp_lockstep_orders(
                desirability,
                count,
                self.rng,
                method=self.selector.name,
                stats=self.stats,
                workspace=self._lockstep_ws,
            )
        # One vectorised pass for every tour length; the kernel emits
        # permutations by construction, so skip per-tour revalidation.
        d = self.instance.distances
        lengths = d[orders[:, :-1], orders[:, 1:]].sum(axis=1)
        lengths += d[orders[:, -1], orders[:, 0]]
        tours = [
            Tour.from_valid(self.instance, orders[i], lengths[i])
            for i in range(len(orders))
        ]
        if self.config.local_search:
            tours = [two_opt(self.instance, t) for t in tours]
        return tours

    # ------------------------------------------------------------------
    def _deposit(self, tours: List[Tour]) -> None:
        cfg = self.config
        self.pheromone *= 1.0 - cfg.rho
        for tour in tours:
            amount = cfg.q / tour.length
            a = tour.order
            b = np.roll(a, -1)
            self.pheromone[a, b] += amount
            self.pheromone[b, a] += amount
        if cfg.elitist_weight > 0 and self.best_tour is not None:
            amount = cfg.elitist_weight * cfg.q / self.best_tour.length
            a = self.best_tour.order
            b = np.roll(a, -1)
            self.pheromone[a, b] += amount
            self.pheromone[b, a] += amount
        if cfg.tau_min is not None:
            np.clip(self.pheromone, cfg.tau_min, cfg.tau_max, out=self.pheromone)
        np.fill_diagonal(self.pheromone, 0.0)

    def step(self) -> Tour:
        """One colony iteration; returns the iteration-best tour."""
        if self.config.engine == "vectorized":
            tours = self.construct_tours_lockstep()
        elif self.config.vectorised:
            tours = self.construct_tours_batch(self.config.n_ants)
        else:
            tours = self._iteration_tours_scalar()
        iteration_best = min(tours, key=lambda t: t.length)
        if self.best_tour is None or iteration_best.length < self.best_tour.length:
            self.best_tour = iteration_best
        self._deposit(tours)
        self.history.append(self.best_tour.length)
        return iteration_best

    def run(self, iterations: int) -> Tour:
        """Run ``iterations`` colony steps; returns the best-so-far tour."""
        if iterations <= 0:
            raise ACOError(f"iterations must be positive, got {iterations}")
        for _ in range(iterations):
            self.step()
        assert self.best_tour is not None
        return self.best_tour

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        best = f"{self.best_tour.length:.2f}" if self.best_tour else "-"
        return (
            f"AntSystem(instance={self.instance.name!r}, ants={self.config.n_ants}, "
            f"selection={self.selector.name!r}, best={best})"
        )
