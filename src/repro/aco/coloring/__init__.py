"""Vertex-coloring ACO substrate (the paper's ref [4] application)."""

from repro.aco.coloring.instance import ColoringInstance
from repro.aco.coloring.colony import ColoringColony, ColoringConfig, ColoringResult

__all__ = ["ColoringInstance", "ColoringColony", "ColoringConfig", "ColoringResult"]
