"""Graph-coloring instances over networkx graphs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.errors import InvalidColoringError

__all__ = ["ColoringInstance"]


class ColoringInstance:
    """A vertex-coloring problem over a simple undirected graph.

    Vertices are relabelled to ``0 .. n-1`` internally; adjacency is held
    both as a networkx graph (algorithms, generators) and as a boolean
    matrix (fast conflict checks in the colony's inner loop).
    """

    def __init__(self, graph: nx.Graph, name: str = "coloring") -> None:
        if graph.number_of_nodes() == 0:
            raise InvalidColoringError("graph has no vertices")
        g = nx.convert_node_labels_to_integers(graph)
        self.graph = g
        self.name = name
        n = g.number_of_nodes()
        adj = np.zeros((n, n), dtype=bool)
        for u, v in g.edges():
            if u == v:
                raise InvalidColoringError(f"self-loop at vertex {u}")
            adj[u, v] = adj[v, u] = True
        self._adj = adj
        self._adj.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def random_gnp(cls, n: int, p: float, seed: int = 0) -> "ColoringInstance":
        """Erdős–Rényi G(n, p) instance."""
        if n <= 0:
            raise InvalidColoringError(f"n must be positive, got {n}")
        if not 0.0 <= p <= 1.0:
            raise InvalidColoringError(f"p must be in [0, 1], got {p}")
        return cls(nx.gnp_random_graph(n, p, seed=seed), name=f"gnp{n}-p{p}-s{seed}")

    @classmethod
    def cycle(cls, n: int) -> "ColoringInstance":
        """An n-cycle: chromatic number 2 (even n) or 3 (odd n) — an oracle."""
        if n < 3:
            raise InvalidColoringError(f"cycle needs >= 3 vertices, got {n}")
        return cls(nx.cycle_graph(n), name=f"cycle{n}")

    @classmethod
    def complete(cls, n: int) -> "ColoringInstance":
        """K_n: chromatic number exactly n — the hard oracle."""
        if n < 1:
            raise InvalidColoringError(f"complete graph needs >= 1 vertex, got {n}")
        return cls(nx.complete_graph(n), name=f"K{n}")

    @classmethod
    def queen(cls, n: int) -> "ColoringInstance":
        """The n x n queen graph, a classic DIMACS coloring family."""
        g = nx.Graph()
        for r1 in range(n):
            for c1 in range(n):
                for r2 in range(n):
                    for c2 in range(n):
                        if (r1, c1) >= (r2, c2):
                            continue
                        if r1 == r2 or c1 == c2 or abs(r1 - r2) == abs(c1 - c2):
                            g.add_edge(r1 * n + c1, r2 * n + c2)
        return cls(g, name=f"queen{n}x{n}")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.number_of_nodes()

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only boolean adjacency matrix."""
        return self._adj

    def neighbours(self, v: int) -> List[int]:
        """Neighbour list of vertex ``v``."""
        return list(self.graph.neighbors(v))

    def conflicts(self, colors: Sequence[int]) -> int:
        """Number of monochromatic edges under ``colors``."""
        c = self._validated(colors)
        u, v = np.nonzero(np.triu(self._adj))
        return int((c[u] == c[v]).sum())

    def is_proper(self, colors: Sequence[int]) -> bool:
        """True iff no edge is monochromatic."""
        return self.conflicts(colors) == 0

    def color_count(self, colors: Sequence[int]) -> int:
        """Number of distinct colors used."""
        return int(np.unique(self._validated(colors)).size)

    def greedy_chromatic_upper_bound(self) -> int:
        """Colors used by networkx's largest-first greedy — the baseline."""
        coloring: Dict[int, int] = nx.greedy_color(self.graph, strategy="largest_first")
        return max(coloring.values()) + 1 if coloring else 1

    def _validated(self, colors: Sequence[int]) -> np.ndarray:
        arr = np.asarray(colors, dtype=np.int64)
        if arr.shape != (self.n,):
            raise InvalidColoringError(
                f"coloring must assign all {self.n} vertices, got shape {arr.shape}"
            )
        if (arr < 0).any():
            raise InvalidColoringError("colors must be non-negative integers")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColoringInstance(name={self.name!r}, n={self.n}, "
            f"m={self.graph.number_of_edges()})"
        )
