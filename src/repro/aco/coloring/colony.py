"""ACO vertex coloring with roulette color selection (after ref [4]).

Each ant colors vertices in a random order; for vertex ``v`` the fitness
of color ``c`` is ``tau[v, c]`` if no already-colored neighbour holds
``c`` and **zero otherwise** — again the paper's many-zeros roulette:
the number of *feasible* colors ``k`` is typically far below the color
budget.  The colony evaporates and reinforces ``tau[v, c]`` with
``1 / (colors_used + conflicts)`` so both compactness and properness are
rewarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.aco.coloring.instance import ColoringInstance
from repro.aco.tsp.colony import ConstructionStats
from repro.core.methods.base import SelectionMethod, get_method
from repro.errors import ACOError
from repro.rng.adapters import resolve_rng

__all__ = ["ColoringConfig", "ColoringResult", "ColoringColony"]


@dataclass
class ColoringConfig:
    """Hyper-parameters of the coloring colony."""

    #: Ants per iteration.
    n_ants: int = 10
    #: Evaporation rate in (0, 1].
    rho: float = 0.3
    #: Color budget (None = greedy upper bound + 1).
    max_colors: Optional[int] = None
    #: Selection method for the color roulette.
    selection: Union[str, SelectionMethod] = "log_bidding"
    #: Construction engine: "scalar" per-ant loop, "vectorized" lockstep.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.engine not in ("scalar", "vectorized"):
            raise ACOError(
                f"engine must be 'scalar' or 'vectorized', got {self.engine!r}"
            )
        if self.n_ants <= 0:
            raise ACOError(f"n_ants must be positive, got {self.n_ants}")
        if not 0.0 < self.rho <= 1.0:
            raise ACOError(f"rho must be in (0, 1], got {self.rho}")
        if self.max_colors is not None and self.max_colors <= 0:
            raise ACOError(f"max_colors must be positive, got {self.max_colors}")


@dataclass
class ColoringResult:
    """Best coloring found by a colony run."""

    #: Per-vertex color assignment.
    colors: np.ndarray
    #: Distinct colors used.
    n_colors: int
    #: Monochromatic edges (0 = proper).
    conflicts: int
    #: Best (n_colors + conflicts) score per iteration.
    history: List[float] = field(default_factory=list)


class ColoringColony:
    """An ant colony assigning colors by roulette over feasible colors."""

    def __init__(
        self,
        instance: ColoringInstance,
        config: Optional[ColoringConfig] = None,
        rng=None,
    ) -> None:
        self.instance = instance
        self.config = config or ColoringConfig()
        self.rng = resolve_rng(rng)
        sel = self.config.selection
        self.selector: SelectionMethod = (
            sel if isinstance(sel, SelectionMethod) else get_method(sel)
        )
        self.n_colors_budget = (
            self.config.max_colors
            if self.config.max_colors is not None
            else instance.greedy_chromatic_upper_bound() + 1
        )
        self.pheromone = np.ones((instance.n, self.n_colors_budget), dtype=np.float64)
        self.best: Optional[ColoringResult] = None
        self.stats = ConstructionStats()

    # ------------------------------------------------------------------
    def construct(self, rng=None) -> np.ndarray:
        """One ant builds a full color assignment.

        ``rng`` overrides the colony generator — the equivalence tests
        drive each ant from its own substream.
        """
        inst = self.instance
        n = inst.n
        budget = self.n_colors_budget
        rng = self.rng if rng is None else resolve_rng(rng)
        colors = np.full(n, -1, dtype=np.int64)
        order = np.argsort(np.asarray(rng.random(n)))  # random vertex order
        adj = inst.adjacency
        for v in order:
            forbidden = np.zeros(budget, dtype=bool)
            neigh_colors = colors[adj[v] & (colors >= 0)]
            forbidden[neigh_colors] = True
            fitness = np.where(forbidden, 0.0, self.pheromone[v])
            k = int(np.count_nonzero(fitness))
            if k == 0:
                # No feasible color in budget: pick the least-bad color
                # uniformly (a conflict is unavoidable for this ant).
                fitness = np.ones(budget, dtype=np.float64)
                k = budget
            self.stats.record(k)
            colors[v] = self.selector.select(fitness, rng)
        return colors

    def construct_lockstep(
        self, count: Optional[int] = None, streams=None
    ) -> List[np.ndarray]:
        """All ants color in lockstep: one batched roulette per vertex rank.

        With ``streams`` the faithful kernel replays, ant for ant, the
        draws of :meth:`construct` run with ``rng=streams.generator(i)``.
        Falls back to the scalar loop for methods without a lockstep
        kernel.
        """
        from repro.engine.colony import LOCKSTEP_METHODS, coloring_lockstep_colors

        count = self.config.n_ants if count is None else int(count)
        if count <= 0:
            raise ACOError(f"count must be positive, got {count}")
        if self.selector.name not in LOCKSTEP_METHODS:
            return [self.construct() for _ in range(count)]
        colors = coloring_lockstep_colors(
            self.pheromone,
            self.instance.adjacency,
            count,
            self.rng,
            method=self.selector.name,
            stats=self.stats,
            streams=streams,
        )
        return [colors[i] for i in range(len(colors))]

    def _score(self, colors: np.ndarray) -> float:
        """Lower is better: color count plus a heavy conflict penalty."""
        return self.instance.color_count(colors) + 10.0 * self.instance.conflicts(colors)

    def step(self) -> ColoringResult:
        """One iteration: construct, evaluate, reinforce."""
        if self.config.engine == "vectorized":
            candidates = self.construct_lockstep()
        else:
            candidates = [self.construct() for _ in range(self.config.n_ants)]
        scores = [self._score(c) for c in candidates]
        best_idx = int(np.argmin(scores))
        best_colors = candidates[best_idx]
        result = ColoringResult(
            colors=best_colors,
            n_colors=self.instance.color_count(best_colors),
            conflicts=self.instance.conflicts(best_colors),
        )
        if self.best is None or self._score(best_colors) < self._score(self.best.colors):
            self.best = ColoringResult(
                colors=best_colors.copy(),
                n_colors=result.n_colors,
                conflicts=result.conflicts,
            )
        # Evaporate everywhere, reinforce the iteration-best assignment.
        self.pheromone *= 1.0 - self.config.rho
        self.pheromone[np.arange(self.instance.n), best_colors] += 1.0 / (
            1.0 + scores[best_idx]
        )
        self.best.history.append(self._score(self.best.colors))
        return result

    def run(self, iterations: int) -> ColoringResult:
        """Run the colony; returns the best assignment found."""
        if iterations <= 0:
            raise ACOError(f"iterations must be positive, got {iterations}")
        for _ in range(iterations):
            self.step()
        assert self.best is not None
        return self.best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        best = self.best.n_colors if self.best else "-"
        return (
            f"ColoringColony(instance={self.instance.name!r}, "
            f"budget={self.n_colors_budget}, best_colors={best})"
        )
