"""Bounded online controller for the micro-batch coalescing delay.

The scheduler's ``max_delay_us`` is the one knob whose best value
depends on *live traffic*: under closed-loop load the opportunistic
drainer coalesces fully and any delay is wasted latency, while under
open-loop trickle traffic a longer delay is the only way requests ever
share a kernel pass.  :class:`DelayController` adapts it from the same
:class:`repro.service.metrics.BatchSizeHistogram` the metrics endpoint
already exports — no extra bookkeeping on the hot path.

Safety properties (each one a scheduler regression test):

* **bounded** — the delay never leaves ``[min_delay_us, max_delay_us]``,
  no matter what the traffic does;
* **slow** — at most one multiplicative step per ``adjust_every``
  flushes, so a burst cannot slam the knob;
* **determinism-preserving** — the controller only changes *when* a
  batch flushes.  Every request draws from its own substream
  (``request_stream(seed, wheel_key, request_seed)``) and the batch
  kernel consumes substreams exactly as solo calls would, so retuning
  is bitwise-invisible in every response.  This is why the controller
  may be enabled in production without a determinism waiver.

It is **off by default**: ``MicroBatchScheduler`` takes
``controller=None`` and behaves exactly as before unless one is passed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["DelayController"]


class DelayController:
    """Adapt ``max_delay_us`` from the live batch-size histogram.

    Every ``adjust_every`` flushes the controller looks at the *window*
    mean batch size (flushes since the last adjustment, read as deltas
    of the histogram's running totals) and takes one bounded
    multiplicative step:

    * window mean below ``grow_below`` requests/flush — arrivals are not
      coalescing; multiply the delay by ``step`` (seeding from
      ``reseed_delay_us`` if the delay is currently 0) so trickle
      traffic starts sharing kernel passes;
    * window mean at or above ``shrink_above`` × ``max_batch`` — batches
      fill on their own; divide by ``step``, shedding latency that buys
      no extra coalescing;
    * otherwise leave the knob alone.

    Parameters mirror those safety bounds; the defaults keep the delay
    within [0, 2000] µs and adjust at most once per 64 flushes.
    """

    __slots__ = (
        "min_delay_us",
        "max_delay_us",
        "adjust_every",
        "grow_below",
        "shrink_above",
        "step",
        "reseed_delay_us",
        "retunes",
        "last_window_mean",
        "_last_batches",
        "_last_requests",
    )

    def __init__(
        self,
        *,
        min_delay_us: float = 0.0,
        max_delay_us: float = 2000.0,
        adjust_every: int = 64,
        grow_below: float = 2.0,
        shrink_above: float = 0.75,
        step: float = 1.5,
        reseed_delay_us: float = 50.0,
    ) -> None:
        if min_delay_us < 0.0:
            raise ValueError(f"min_delay_us must be >= 0, got {min_delay_us}")
        if max_delay_us < min_delay_us:
            raise ValueError(
                f"max_delay_us must be >= min_delay_us, "
                f"got {max_delay_us} < {min_delay_us}"
            )
        if adjust_every < 1:
            raise ValueError(f"adjust_every must be >= 1, got {adjust_every}")
        if not 0.0 < shrink_above <= 1.0:
            raise ValueError(f"shrink_above must be in (0, 1], got {shrink_above}")
        if grow_below < 1.0:
            raise ValueError(f"grow_below must be >= 1, got {grow_below}")
        if step <= 1.0:
            raise ValueError(f"step must be > 1, got {step}")
        if reseed_delay_us <= 0.0:
            raise ValueError(f"reseed_delay_us must be > 0, got {reseed_delay_us}")
        self.min_delay_us = float(min_delay_us)
        self.max_delay_us = float(max_delay_us)
        self.adjust_every = int(adjust_every)
        self.grow_below = float(grow_below)
        self.shrink_above = float(shrink_above)
        self.step = float(step)
        self.reseed_delay_us = float(reseed_delay_us)
        self.retunes = 0
        self.last_window_mean = 0.0
        self._last_batches = 0
        self._last_requests = 0

    # ------------------------------------------------------------------
    def observe(self, batch_sizes, config) -> Optional[float]:
        """One post-flush tick; returns the new delay or None.

        ``batch_sizes`` is the scheduler's live
        :class:`repro.service.metrics.BatchSizeHistogram`; ``config`` is
        its :class:`repro.service.scheduler.BatchConfig` (duck-typed —
        only ``max_delay_us`` and ``max_batch`` are read, so the
        controller never imports the service layer).  The caller applies
        a non-None return to ``config.max_delay_us``.
        """
        window = batch_sizes.batches - self._last_batches
        if window < self.adjust_every:
            return None
        mean = (batch_sizes.requests - self._last_requests) / window
        self._last_batches = batch_sizes.batches
        self._last_requests = batch_sizes.requests
        self.last_window_mean = mean
        current = float(config.max_delay_us)
        if mean >= self.shrink_above * config.max_batch:
            proposed = max(self.min_delay_us, current / self.step)
        elif mean < self.grow_below:
            grown = current * self.step if current > 0.0 else self.reseed_delay_us
            proposed = min(self.max_delay_us, max(self.min_delay_us, grown))
        else:
            return None
        if proposed == current:
            return None
        self.retunes += 1
        return proposed

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-able controller state for metrics snapshots."""
        return {
            "min_delay_us": self.min_delay_us,
            "max_delay_us": self.max_delay_us,
            "adjust_every": self.adjust_every,
            "grow_below": self.grow_below,
            "shrink_above": self.shrink_above,
            "step": self.step,
            "retunes": self.retunes,
            "last_window_mean": self.last_window_mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DelayController(bounds=[{self.min_delay_us}, {self.max_delay_us}]us, "
            f"every={self.adjust_every}, retunes={self.retunes})"
        )
