"""Empirical runtime samples: the raw material of speedup prediction.

A :class:`RuntimeSample` is an append-only collection of non-negative
runtime observations (seconds for wall-clock probes, rounds for the race
lab — the unit is the caller's, recorded alongside).  It is deliberately
dumb: the Las Vegas machinery lives in :mod:`repro.tune.predictor`,
which consumes a sample via :meth:`RuntimeSample.distribution`.

Samples are JSON-able (:meth:`state` / :meth:`from_state`) so the
per-host calibration cache (:mod:`repro.tune.calibration`) can persist
them between processes, and mergeable so probe shards can be combined —
the same portable-state discipline as the service's latency histograms.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

import numpy as np

__all__ = ["RuntimeSample"]

#: Cap on persisted observations per sample: beyond it, :meth:`state`
#: stores evenly-spaced order statistics instead of the raw sample —
#: the empirical CDF the predictor consumes is preserved to ~1/CAP
#: quantile resolution while the calibration cache stays small.
STATE_CAP = 4096


class RuntimeSample:
    """Non-negative runtime observations with portable state.

    Parameters
    ----------
    unit:
        Free-form label for what one observation measures (``"s"`` for
        wall seconds, ``"rounds"`` for race round counts, ...).  Merging
        refuses mismatched units — a sample of seconds folded into a
        sample of rounds is always a bug.
    """

    __slots__ = ("unit", "_values")

    def __init__(self, unit: str = "s", values: Optional[Iterable[float]] = None) -> None:
        self.unit = str(unit)
        self._values: list = []
        if values is not None:
            self.record_many(values)

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Append one observation."""
        value = float(value)
        if not np.isfinite(value) or value < 0.0:
            raise ValueError(f"runtime observations must be finite and >= 0, got {value}")
        self._values.append(value)

    def record_many(self, values: Iterable[float]) -> None:
        """Append a batch of observations."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size and (not np.isfinite(arr).all() or (arr < 0.0).any()):
            raise ValueError("runtime observations must be finite and >= 0")
        self._values.extend(arr.tolist())

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """Copy of the observations, in recording order."""
        return np.asarray(self._values, dtype=np.float64)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    @property
    def var(self) -> float:
        """Unbiased sample variance (0.0 below two observations)."""
        if len(self._values) < 2:
            return 0.0
        return float(np.var(self._values, ddof=1))

    def quantile(self, q: float) -> float:
        """Empirical ``q`` quantile (inverted-CDF convention)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        return float(np.quantile(self._values, q, method="inverted_cdf"))

    def distribution(self):
        """This sample as a :class:`repro.tune.predictor.RuntimeDistribution`."""
        from repro.tune.predictor import RuntimeDistribution

        return RuntimeDistribution.from_samples(self.values, unit=self.unit)

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Portable JSON-able state (decimated past :data:`STATE_CAP`)."""
        arr = np.sort(self.values)
        decimated = False
        if arr.size > STATE_CAP:
            # Evenly spaced order statistics preserve the empirical CDF
            # to ~1/STATE_CAP quantile resolution.
            idx = np.linspace(0, arr.size - 1, STATE_CAP).round().astype(np.int64)
            arr = arr[idx]
            decimated = True
        return {
            "unit": self.unit,
            "count": self.count,
            "decimated": decimated,
            "values": [float(v) for v in arr],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RuntimeSample":
        """Rebuild a sample from :meth:`state` output."""
        return cls(unit=state.get("unit", "s"), values=state.get("values", []))

    def merge(self, other: "RuntimeSample") -> None:
        """Fold another sample's observations into this one."""
        if other.unit != self.unit:
            raise ValueError(
                f"cannot merge a {other.unit!r} sample into a {self.unit!r} sample"
            )
        self._values.extend(other._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuntimeSample(unit={self.unit!r}, count={self.count})"
