"""Short probe runs that feed the calibration cache.

Each probe measures one cost constant or captures one runtime
distribution, deliberately spending a few tens of milliseconds — the
whole point of the tuner is that a probe budget of well under a second
replaces static-sweep measurement campaigns.  Probes return plain
numbers or :class:`repro.tune.sample.RuntimeSample` objects;
:func:`calibrate` orchestrates the standard set into a
:class:`repro.tune.calibration.HostCalibration`.

All probes are deterministic given ``seed`` (modulo the wall clock they
are measuring, which is the product).
"""

from __future__ import annotations

import os
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.tune.calibration import HostCalibration
from repro.tune.sample import RuntimeSample
from repro.tune.timers import measure, timed

__all__ = [
    "probe_spawn_overhead",
    "probe_draw_cost",
    "probe_batch_kernel",
    "probe_race_rounds",
    "probe_service_flushes",
    "calibrate",
]


def _noop() -> int:
    """Top-level trivial task (must be picklable for the pool probe)."""
    return 0


def probe_spawn_overhead(repeats: int = 2) -> float:
    """Serial seconds to stand up one pool worker and run a no-op.

    Times ``ProcessPoolExecutor(max_workers=1)`` end to end — spawn,
    one round-trip submit, shutdown — which is exactly the cost
    ``parallel_counts`` pays per worker before any draw happens.
    Min-of-reps: preemption only inflates the spawn, never deflates it.
    """

    def spawn_once() -> None:
        with ProcessPoolExecutor(max_workers=1) as pool:
            pool.submit(_noop).result()

    return measure(spawn_once, repeats=repeats, warmup=0).best


def probe_draw_cost(
    n: int = 1024,
    draws: int = 200_000,
    *,
    method: str = "log_bidding",
    seed: int = 0,
    repeats: int = 3,
) -> Tuple[float, RuntimeSample]:
    """Per-draw seconds of the compiled throughput kernel on this host.

    Returns ``(draw_s, sample)`` where ``sample`` holds the per-repeat
    wall times of the probe batches (unit ``"s"``).  The estimate is
    min-of-reps over ``repeats`` batches of ``draws`` draws at wheel
    size ``n`` — the workload shape ``suggest_workers`` shards.
    """
    from repro.engine.compiled import CompiledWheel

    values = 1.0 - np.random.default_rng(seed).random(n)
    wheel = CompiledWheel(values, method, kernel="auto")
    rng = np.random.default_rng(seed + 1)
    result = measure(lambda: wheel.select_many(draws, rng=rng), repeats=repeats)
    sample = RuntimeSample(unit="s", values=result.samples)
    return result.best / draws, sample


def probe_batch_kernel(
    n: int = 1024,
    *,
    method: str = "log_bidding",
    n_draws: int = 8,
    batch_sizes: Sequence[int] = (1, 8, 64),
    seed: int = 0,
    repeats: int = 3,
) -> Tuple[float, float, RuntimeSample]:
    """Affine cost model of one micro-batch flush: ``base + per_draw * draws``.

    Times :meth:`repro.engine.CompiledWheel.select_segments` at several
    coalesced batch sizes (each request drawing ``n_draws``), then
    least-squares fits flush seconds against total draws.  ``base`` is
    the per-flush overhead that batching amortises; ``per_draw`` is the
    marginal kernel cost.  Returns ``(base_s, per_draw_s, sample)``
    where ``sample`` captures every measured flush time (unit ``"s"``)
    — the service-batch runtime distribution of the calibration cache.
    """
    from repro.engine.compiled import CompiledWheel
    from repro.rng.streams import SplitMixStream, derive_seeds

    values = 1.0 - np.random.default_rng(seed).random(n)
    wheel = CompiledWheel(values, method, kernel="auto")
    sample = RuntimeSample(unit="s")
    points = []  # (total_draws, best_flush_s)
    for batch in batch_sizes:
        batch = int(batch)
        if batch < 1:
            raise ValueError(f"batch sizes must be >= 1, got {batch}")
        seeds = derive_seeds(seed, list(range(batch)), 0xBA7C4)
        result = measure(
            lambda s=seeds: wheel.select_segments(
                [(n_draws, SplitMixStream(int(x))) for x in s]
            ),
            repeats=repeats,
        )
        sample.record_many(result.samples)
        points.append((batch * n_draws, result.best))
    xs = np.array([p[0] for p in points], dtype=np.float64)
    ys = np.array([p[1] for p in points], dtype=np.float64)
    design = np.stack([np.ones_like(xs), xs], axis=1)
    (base_s, per_draw_s), *_ = np.linalg.lstsq(design, ys, rcond=None)
    # Noise can drive either coefficient slightly negative; the model is
    # a cost, so clamp at zero rather than predict negative time.
    return max(0.0, float(base_s)), max(0.0, float(per_draw_s)), sample


def probe_race_rounds(
    k: int = 64, trials: int = 20_000, *, seed: int = 0
) -> RuntimeSample:
    """Empirical round-count distribution of the paper's race (unit ``rounds``).

    This is the one probe with an analytic oracle
    (:mod:`repro.stats.race_theory`), which is what lets the bench
    validate the whole empirical->prediction pipeline before trusting
    it on wall-clock samples.
    """
    from repro.engine.races import sample_round_counts

    rounds = sample_round_counts(k, trials, seed=seed)
    return RuntimeSample(unit="rounds", values=rounds.astype(np.float64))


def probe_service_flushes(
    n: int = 1024,
    *,
    method: str = "log_bidding",
    n_draws: int = 8,
    flushes: int = 64,
    batch: int = 16,
    seed: int = 0,
) -> RuntimeSample:
    """Wall-time distribution of ``flushes`` micro-batch kernel passes.

    Unlike :func:`probe_batch_kernel` (which fits the affine model from
    a few repeated points), this captures the *distribution* of flush
    times at one operating point — the service-batch runtime sample the
    tentpole stores in the calibration cache.
    """
    from repro.engine.compiled import CompiledWheel
    from repro.rng.streams import SplitMixStream, derive_seeds

    values = 1.0 - np.random.default_rng(seed).random(n)
    wheel = CompiledWheel(values, method, kernel="auto")
    sample = RuntimeSample(unit="s")
    for f in range(flushes):
        seeds = derive_seeds(seed, list(range(batch)), 0xF1054 + f)
        sample.record(
            timed(
                lambda s=seeds: wheel.select_segments(
                    [(n_draws, SplitMixStream(int(x))) for x in s]
                )
            )
        )
    return sample


def calibrate(
    *,
    seed: int = 0,
    n: int = 1024,
    draws: int = 200_000,
    method: str = "log_bidding",
    race_k: int = 64,
    race_trials: int = 20_000,
    include_spawn: bool = True,
) -> Tuple[HostCalibration, Dict[str, Any]]:
    """Run the standard probe set; returns ``(calibration, probe_costs)``.

    ``probe_costs`` maps probe name to wall seconds spent — the ledger
    the bench's <= 5%-of-sweep budget gate audits.  ``include_spawn``
    exists because the spawn probe is the expensive one (~3 pool
    startups); callers that only need the batch model can skip it.
    """
    cal = HostCalibration(
        host=platform.node() or "localhost",
        cpu_count=os.cpu_count() or 1,
        created=time.time(),
    )
    costs: Dict[str, Any] = {}

    start = time.perf_counter()
    if include_spawn:
        cal.spawn_overhead_s = probe_spawn_overhead()
    costs["spawn"] = time.perf_counter() - start

    start = time.perf_counter()
    draw_s, draw_sample = probe_draw_cost(
        n=n, draws=draws, method=method, seed=seed
    )
    cal.draw_s = draw_s
    cal.put_sample("engine_draw_batches", draw_sample)
    costs["draw"] = time.perf_counter() - start

    start = time.perf_counter()
    base_s, per_draw_s, flush_sample = probe_batch_kernel(
        n=n, method=method, seed=seed
    )
    cal.batch_base_s = base_s
    cal.batch_per_draw_s = per_draw_s
    cal.put_sample("service_batch_flushes", flush_sample)
    costs["batch"] = time.perf_counter() - start

    start = time.perf_counter()
    cal.put_sample("race_rounds", probe_race_rounds(race_k, race_trials, seed=seed))
    costs["race"] = time.perf_counter() - start

    costs["total"] = sum(v for v in costs.values())
    return cal, costs
