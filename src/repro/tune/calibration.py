"""Per-host calibration cache: probe once, tune everywhere.

The autotuner's cost constants — process spawn overhead, per-draw kernel
cost, the micro-batch kernel's affine model, captured runtime
distributions — are properties of the *host*, not of any one process.
They are measured by the short probes in :mod:`repro.tune.probes` and
persisted here so every later ``suggest_workers`` / ``BatchConfig``
decision is a dictionary lookup, not a measurement.

Cache discipline is the one proven in :mod:`repro.lab.store`: a record
is written to a temp file and published by atomic ``os.rename``, so
concurrent writers and SIGKILLs leave either a complete record or the
previous one, never a torn file.  The default location is
``~/.cache/repro/tune/<host>.json`` (override with the
``REPRO_TUNE_CACHE`` env var — tests point it at a tmpdir).

Resolution order for the one value the engine hot path consults
(:func:`resolve_min_draws_per_worker`):

1. ``REPRO_MIN_DRAWS_PER_WORKER`` env var (tests / CI pin the legacy
   constant or any value without touching the cache);
2. the per-host calibration cache, if a record exists and carries the
   derived value;
3. the uncalibrated fallback
   :data:`repro.engine.parallel.MIN_DRAWS_PER_WORKER` (250k draws — the
   pre-tune constant, kept as the documented floor of last resort).

The lookup is memoised per process (the hot path must stay cheap);
:func:`invalidate` resets the memo after an env or cache change.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.tune.sample import RuntimeSample

__all__ = [
    "HostCalibration",
    "calibration_path",
    "load_calibration",
    "save_calibration",
    "resolve_min_draws_per_worker",
    "invalidate",
    "ENV_CACHE",
    "ENV_MIN_DRAWS",
    "CALIBRATION_SCHEMA",
]

#: Schema tag for calibration records (bump on layout changes).
CALIBRATION_SCHEMA = "repro/tune-calibration/v1"

#: Env var overriding the cache directory (tests point it at a tmpdir).
ENV_CACHE = "REPRO_TUNE_CACHE"

#: Env var overriding the calibrated min-draws-per-worker value.
ENV_MIN_DRAWS = "REPRO_MIN_DRAWS_PER_WORKER"

#: Clamp range for the derived min-draws value: below the floor the
#: sharding bookkeeping itself dominates; above the ceiling a worker
#: would need minutes of draws to "pay for itself", which only happens
#: when a probe mis-measured.
MIN_DRAWS_FLOOR = 10_000
MIN_DRAWS_CEILING = 100_000_000


@dataclass
class HostCalibration:
    """One host's measured cost model plus captured runtime samples."""

    #: Hostname the probes ran on (informational).
    host: str = ""
    #: ``os.cpu_count()`` at probe time.
    cpu_count: int = 1
    #: Serial cost of standing up one pool worker process, seconds.
    spawn_overhead_s: float = 0.0
    #: Compiled-kernel cost of one draw, seconds (throughput path).
    draw_s: float = 0.0
    #: Micro-batch kernel affine model: flush cost = base + per_draw * draws.
    batch_base_s: float = 0.0
    batch_per_draw_s: float = 0.0
    #: Captured runtime distributions by name (race rounds, restart
    #: times, batch flushes, ...), as :meth:`RuntimeSample.state` dicts.
    samples: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Unix time the probes ran.
    created: float = 0.0

    # ------------------------------------------------------------------
    def min_draws_per_worker(self) -> Optional[int]:
        """The calibrated break-even shard size, or None if unprobed.

        A worker joins the pool only if its shard's kernel time at least
        matches the serial cost of spawning it — ``spawn_overhead_s /
        draw_s`` draws — so the pool never runs slower than a smaller
        one on this host's measured constants.  Clamped to
        ``[MIN_DRAWS_FLOOR, MIN_DRAWS_CEILING]``.
        """
        if self.spawn_overhead_s <= 0.0 or self.draw_s <= 0.0:
            return None
        draws = int(self.spawn_overhead_s / self.draw_s) + 1
        return max(MIN_DRAWS_FLOOR, min(MIN_DRAWS_CEILING, draws))

    def sample(self, name: str) -> Optional[RuntimeSample]:
        """A captured runtime sample by name, if present."""
        state = self.samples.get(name)
        return None if state is None else RuntimeSample.from_state(state)

    def put_sample(self, name: str, sample: RuntimeSample) -> None:
        """Attach (or replace) a captured runtime sample."""
        self.samples[str(name)] = sample.state()

    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """JSON-able on-disk layout."""
        return {
            "schema": CALIBRATION_SCHEMA,
            "host": self.host,
            "cpu_count": self.cpu_count,
            "spawn_overhead_s": self.spawn_overhead_s,
            "draw_s": self.draw_s,
            "batch_base_s": self.batch_base_s,
            "batch_per_draw_s": self.batch_per_draw_s,
            "min_draws_per_worker": self.min_draws_per_worker(),
            "samples": self.samples,
            "created": self.created,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "HostCalibration":
        """Rebuild from :meth:`to_record` output (schema-checked)."""
        if record.get("schema") != CALIBRATION_SCHEMA:
            raise ValueError(
                f"calibration schema mismatch: {record.get('schema')!r} "
                f"!= {CALIBRATION_SCHEMA!r}"
            )
        return cls(
            host=str(record.get("host", "")),
            cpu_count=int(record.get("cpu_count", 1)),
            spawn_overhead_s=float(record.get("spawn_overhead_s", 0.0)),
            draw_s=float(record.get("draw_s", 0.0)),
            batch_base_s=float(record.get("batch_base_s", 0.0)),
            batch_per_draw_s=float(record.get("batch_per_draw_s", 0.0)),
            samples=dict(record.get("samples", {})),
            created=float(record.get("created", 0.0)),
        )


# ----------------------------------------------------------------------
def _host_stem() -> str:
    """Filesystem-safe stem for this host's record."""
    node = platform.node() or "localhost"
    return re.sub(r"[^A-Za-z0-9._-]", "_", node)[:64]


def cache_dir() -> str:
    """The calibration cache directory (env override honoured)."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "tune")


def calibration_path(path: Optional[str] = None) -> str:
    """Where this host's calibration record lives."""
    if path is not None:
        return path
    return os.path.join(cache_dir(), f"{_host_stem()}.json")


def load_calibration(path: Optional[str] = None) -> Optional[HostCalibration]:
    """The host's calibration, or None if absent/unreadable/mismatched.

    Unreadable or wrong-schema records are treated as missing — a stale
    cache must never make the tuner error, only fall back.
    """
    target = calibration_path(path)
    try:
        with open(target, "r", encoding="utf-8") as fh:
            record = json.load(fh)
        return HostCalibration.from_record(record)
    except (FileNotFoundError, json.JSONDecodeError, ValueError, OSError):
        return None


def save_calibration(
    cal: HostCalibration, path: Optional[str] = None
) -> str:
    """Atomically publish a calibration record; returns its path.

    Same tmp-write + ``os.rename`` discipline as ``repro.lab.store``:
    a reader never sees a torn record, and the last writer wins whole.
    """
    target = calibration_path(path)
    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    if not cal.created:
        cal.created = time.time()
    tmp = f"{target}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(cal.to_record(), fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, target)
    invalidate()
    return target


# ----------------------------------------------------------------------
#: Memoised (source, value) for resolve_min_draws_per_worker.
_resolved: Optional[Dict[str, Any]] = None


def resolve_min_draws_per_worker(default: Optional[int] = None) -> int:
    """The per-host min-draws-per-worker value the engine should use.

    Resolution: env var > calibration cache > ``default`` (the caller
    passes the legacy constant).  Memoised per process — call
    :func:`invalidate` after changing the env var or rewriting the
    cache mid-process (tests do; services restart).
    """
    global _resolved
    if default is None:
        from repro.engine.parallel import MIN_DRAWS_PER_WORKER as default_const

        default = default_const
    if _resolved is not None:
        return int(_resolved["value"]) if _resolved["value"] is not None else default
    env = os.environ.get(ENV_MIN_DRAWS)
    if env is not None:
        try:
            value = int(env)
            if value < 1:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"{ENV_MIN_DRAWS} must be a positive integer, got {env!r}"
            ) from None
        _resolved = {"source": "env", "value": value}
        return value
    cal = load_calibration()
    calibrated = cal.min_draws_per_worker() if cal is not None else None
    if calibrated is not None:
        _resolved = {"source": "calibration", "value": calibrated}
        return calibrated
    _resolved = {"source": "fallback", "value": None}
    return default


def invalidate() -> None:
    """Forget the memoised resolution (env/cache changed)."""
    global _resolved
    _resolved = None
