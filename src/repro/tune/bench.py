"""``python -m repro bench-tune``: score the tuner against measurement.

The record (``BENCH_tune.json``) evaluates the two tentpole gates:

1. **Prediction gate** — the Las Vegas speedup model applied to a real
   multi-process race: capture the sequential runtime distribution of a
   geometric draws-until-target workload, predict ``E[min of W]`` for a
   ``{1, 2, 4}`` worker sweep, then *measure* the same sweep with
   pre-spawned racing workers.  Relative error must stay within 20%.
   On hosts with fewer cores than the sweep needs the measurement is
   meaningless (racers time-slice one core), so the gate auto-skips
   with the reason recorded — the same discipline as BENCH_serve's
   scaling gate.  The model itself is still validated on every host
   against the exact race round-count law of ``repro.stats.race_theory``
   (empirical sample in, analytic pmf as oracle), which has no
   wall-clock noise at all.

2. **Autotune gate** — calibrated configuration beats exhaustive
   measurement: ``BatchConfig.autotune`` fed by the batch-kernel probe
   and one short arrival-rate estimate must land within 10% of the best
   config found by a full static sweep, while spending at most 5% of
   the sweep's wall-clock probe budget.

Plus the acceptance-criterion determinism certificates: calibrated
``suggest_workers`` leaves ``parallel_counts`` byte-identical, and the
online delay controller leaves batched serving bit-identical to solo
serving and direct substream replay.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import platform
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.tune.calibration import (
    resolve_min_draws_per_worker,
    save_calibration,
)
from repro.tune.controller import DelayController
from repro.tune.predictor import RuntimeDistribution
from repro.tune.probes import calibrate
from repro.tune.sample import RuntimeSample
from repro.tune.timers import timed

__all__ = [
    "run_bench_tune",
    "validate_bench_tune",
    "write_bench_tune",
    "render_bench_tune",
    "BENCH_TUNE_SCHEMA",
]

#: Schema tag for BENCH_tune.json (bump on layout changes).
BENCH_TUNE_SCHEMA = "repro/bench-tune/v1"

#: Sections every record must carry (used by the CI smoke check).
_REQUIRED_SECTIONS = (
    "calibration",
    "predictor",
    "speedup_gate",
    "autotune_gate",
    "determinism",
)

#: Worker sweep of the prediction gate.
_SWEEP_WORKERS = (1, 2, 4)

#: Gate tolerances (the tentpole's acceptance numbers).
PREDICTION_TOLERANCE = 0.20
AUTOTUNE_TOLERANCE = 0.10
PROBE_BUDGET_FRACTION = 0.05

#: The analytic race-law validation is noise-free on the model side;
#: with 20k empirical trials, 5% bounds ~5 standard errors.
_RACE_LAW_TOLERANCE = 0.05


# ----------------------------------------------------------------------
# Las Vegas workload for the prediction gate (top-level: must pickle).
def _lv_race_task(payload) -> float:
    """Wall seconds of one geometric draws-until-target search.

    The wheel gives index 0 a small fixed probability, so the number of
    draws to first hit is geometric and the wall time is near-
    exponential — the memoryless regime where multi-walk racing pays.
    Built fresh per task so every racer carries identical constant
    costs (iid copies, the model's assumption).
    """
    from repro.engine.compiled import CompiledWheel

    seed, n, method, rare_weight, chunk = payload

    def search() -> None:
        values = np.ones(n, dtype=np.float64)
        values[0] = rare_weight
        wheel = CompiledWheel(values, method, kernel="auto")
        rng = np.random.default_rng(seed)
        while True:
            if (wheel.select_many(chunk, rng=rng) == 0).any():
                return

    return timed(search)


def _speedup_section(
    seed: int,
    *,
    workers: Sequence[int],
    trials: int,
    race_trials: int,
    n: int,
    method: str,
    rare_weight: float,
    chunk: int,
    cpu_count: int,
) -> Dict[str, Any]:
    """Predicted vs measured E[min of W] across the worker sweep."""
    max_w = max(workers)
    if cpu_count < max_w:
        return {
            "workers": list(workers),
            "skipped": True,
            "skip_reason": (
                f"cpu_count={cpu_count} < {max_w}: racers would time-slice "
                f"cores and the min-of-W measurement would not reflect the "
                f"iid-parallel model"
            ),
            "gate_tolerance": PREDICTION_TOLERANCE,
            "gate_met": True,
        }
    base = (n, method, rare_weight, chunk)
    with ProcessPoolExecutor(max_workers=max_w) as pool:
        # Warm every worker (interpreter + numpy import) before timing.
        wait([pool.submit(_lv_race_task, (w, *base)) for w in range(max_w)])
        # Sequential runtime distribution: `trials` one-copy runs.
        seq = RuntimeSample(unit="s")
        for t in range(trials):
            fut = pool.submit(_lv_race_task, (seed * 1_000_003 + t, *base))
            seq.record(fut.result())
        dist = seq.distribution()
        per_worker: Dict[str, Any] = {}
        worst_error = 0.0
        for w in workers:
            predicted = dist.expected_min(w)
            measured_runs = []
            for t in range(race_trials):
                futures = [
                    pool.submit(
                        _lv_race_task,
                        (seed * 2_000_003 + t * max_w * 7 + i, *base),
                    )
                    for i in range(w)
                ]
                start = time.perf_counter()
                wait(futures, return_when=FIRST_COMPLETED)
                measured_runs.append(time.perf_counter() - start)
                wait(futures)  # drain stragglers before the next trial
            measured = float(np.mean(measured_runs))
            error = abs(predicted - measured) / measured if measured else 0.0
            worst_error = max(worst_error, error)
            per_worker[str(w)] = {
                "predicted_s": predicted,
                "measured_s": measured,
                "relative_error": error,
                "predicted_speedup": dist.speedup(w),
                "measured_speedup": seq.mean / measured if measured else 1.0,
            }
    return {
        "workers": list(workers),
        "skipped": False,
        "skip_reason": None,
        "sequential_trials": trials,
        "race_trials": race_trials,
        "sequential_mean_s": seq.mean,
        "per_worker": per_worker,
        "worst_relative_error": worst_error,
        "gate_tolerance": PREDICTION_TOLERANCE,
        "gate_met": bool(worst_error <= PREDICTION_TOLERANCE),
    }


# ----------------------------------------------------------------------
def _predictor_section(cal) -> Dict[str, Any]:
    """Empirical pipeline vs the exact race round-count law (k = 64)."""
    from repro.stats.race_theory import expected_rounds

    k = 64
    exact = RuntimeDistribution.from_race_law(k)
    empirical = cal.sample("race_rounds").distribution()
    grid = (1, 2, 4, 8)
    exact_curve = exact.speedup_curve(grid)
    empirical_curve = empirical.speedup_curve(grid)
    errors = {
        str(w): abs(empirical_curve[w] - exact_curve[w]) / exact_curve[w]
        for w in grid
    }
    mean_error = abs(empirical.mean() - exact.mean()) / exact.mean()
    worst = max(max(errors.values()), mean_error)
    return {
        "k": k,
        "trials": cal.sample("race_rounds").count,
        "exact_mean_rounds": exact.mean(),
        "analytic_mean_rounds": expected_rounds(k),
        "empirical_mean_rounds": empirical.mean(),
        "exact_speedups": {str(w): exact_curve[w] for w in grid},
        "empirical_speedups": {str(w): empirical_curve[w] for w in grid},
        "relative_errors": errors,
        "worst_relative_error": worst,
        "tolerance": _RACE_LAW_TOLERANCE,
        "ok": bool(worst <= _RACE_LAW_TOLERANCE),
    }


# ----------------------------------------------------------------------
def _autotune_section(
    cal,
    calibration_probe_s: float,
    *,
    seed: int,
    wheel_n: int,
    method: str,
    clients: int,
    requests_per_client: int,
    n_draws: int,
) -> Dict[str, Any]:
    """Static sweep vs calibrated ``BatchConfig.autotune``, plus budget."""
    from repro.service.loadgen import run_closed_loop
    from repro.service.registry import WheelRegistry
    from repro.service.scheduler import BatchConfig, MicroBatchScheduler

    fitness = 1.0 - np.random.default_rng(seed).random(wheel_n)

    def run_once(cfg: BatchConfig, reqs: int):
        # Fresh registry + scheduler per run: no cache warmth leaks
        # between grid cells.
        registry = WheelRegistry()
        wid, _ = registry.register(fitness, method=method)
        sched = MicroBatchScheduler(registry, cfg, seed=seed)
        elapsed = asyncio.run(
            run_closed_loop(
                sched, wid,
                clients=clients, requests_per_client=reqs, n_draws=n_draws,
            )
        )
        return elapsed, sched.metrics

    def run_config(cfg: BatchConfig, reqs: int) -> float:
        # Best-of-2 for the same reason the engine bench uses
        # min-of-reps: preemption only ever adds time.
        return min(run_once(cfg, reqs)[0], run_once(cfg, reqs)[0])

    sweep_start = time.perf_counter()
    grid: Dict[str, float] = {}
    for max_batch in (4, 16, 64, 256):
        for delay_us in (0.0, 200.0, 1000.0):
            cfg = BatchConfig(max_batch=max_batch, max_delay_us=delay_us)
            grid[f"batch={max_batch},delay={delay_us:g}us"] = run_config(
                cfg, requests_per_client
            )
    sweep_cost_s = time.perf_counter() - sweep_start
    best_key = min(grid, key=grid.get)
    best_static_s = grid[best_key]

    # --- the autotuned path: calibration probe + one short traffic
    # probe.  The traffic probe estimates the arrival rate (requests
    # per wall second) and the burst concurrency (the scheduler's
    # queue_peak) under the *default* config — everything autotune
    # needs, at a small fraction of one sweep cell.
    probe_start = time.perf_counter()
    probe_reqs = max(1, requests_per_client // 16)
    probe_elapsed, probe_metrics = run_once(BatchConfig(), probe_reqs)
    probe_requests = clients * probe_reqs
    arrival_rate_rps = probe_requests / probe_elapsed if probe_elapsed else 1.0
    auto_cfg = BatchConfig.autotune(
        batch_base_s=cal.batch_base_s,
        batch_per_draw_s=cal.batch_per_draw_s,
        arrival_rate_rps=arrival_rate_rps,
        n_draws=n_draws,
        concurrency=max(1.0, float(probe_metrics.queue_peak)),
    )
    probe_budget_s = (time.perf_counter() - probe_start) + calibration_probe_s
    auto_s = run_config(auto_cfg, requests_per_client)

    ratio = auto_s / best_static_s if best_static_s else 1.0
    budget_fraction = probe_budget_s / sweep_cost_s if sweep_cost_s else 0.0
    return {
        "workload": {
            "wheel_n": wheel_n,
            "method": method,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "n_draws": n_draws,
        },
        "sweep": grid,
        "sweep_cost_s": sweep_cost_s,
        "best_static": {"config": best_key, "elapsed_s": best_static_s},
        "estimated_arrival_rate_rps": arrival_rate_rps,
        "estimated_concurrency": probe_metrics.queue_peak,
        "autotuned": {
            "max_batch": auto_cfg.max_batch,
            "max_delay_us": auto_cfg.max_delay_us,
            "elapsed_s": auto_s,
        },
        "probe_budget_s": probe_budget_s,
        "probe_budget_fraction": budget_fraction,
        "ratio_vs_best_static": ratio,
        "gate_tolerance": AUTOTUNE_TOLERANCE,
        "budget_fraction_limit": PROBE_BUDGET_FRACTION,
        "within_tolerance": bool(ratio <= 1.0 + AUTOTUNE_TOLERANCE),
        "within_budget": bool(budget_fraction <= PROBE_BUDGET_FRACTION),
        "gate_met": bool(
            ratio <= 1.0 + AUTOTUNE_TOLERANCE
            and budget_fraction <= PROBE_BUDGET_FRACTION
        ),
    }


# ----------------------------------------------------------------------
def _determinism_section(
    *, seed: int, wheel_n: int, method: str
) -> Dict[str, Any]:
    """The acceptance certificates: tuning changes nothing bitwise."""
    from repro.engine.parallel import parallel_counts, suggest_workers
    from repro.rng.streams import request_stream
    from repro.service.registry import WheelRegistry, digest_key
    from repro.service.scheduler import BatchConfig, MicroBatchScheduler

    fitness = 1.0 - np.random.default_rng(seed).random(wheel_n)

    # parallel_counts under calibrated suggest_workers (workers=None
    # resolves through the calibration chain on both calls).
    size = 200_000
    c1 = parallel_counts(fitness, size, method=method, seed=seed)
    c2 = parallel_counts(fitness, size, method=method, seed=seed)
    resolved_workers = suggest_workers(size)
    c3 = parallel_counts(
        fitness, size, method=method, seed=seed, workers=resolved_workers
    )
    engine_ok = bool(np.array_equal(c1, c2) and np.array_equal(c1, c3))

    # Batched serving with the online controller enabled, against solo
    # serving and direct substream replay.
    sizes = [1, 5, 17, 3, 64, 2, 9, 30, 12, 7, 21, 4]

    async def gather(sched, wid):
        return await asyncio.gather(
            *(sched.draw(wid, n, seed=i) for i, n in enumerate(sizes))
        )

    def serve(max_batch: int, controller) -> list:
        registry = WheelRegistry()
        wid, _ = registry.register(fitness, method=method)
        sched = MicroBatchScheduler(
            registry,
            BatchConfig(max_batch=max_batch, max_delay_us=100.0),
            seed=seed,
            controller=controller,
        )
        return asyncio.run(gather(sched, wid))

    controller = DelayController(adjust_every=1, max_delay_us=500.0)
    coalesced = serve(len(sizes), controller)
    solo = serve(1, DelayController(adjust_every=1, max_delay_us=500.0))
    registry = WheelRegistry()
    wid, _ = registry.register(fitness, method=method)
    wheel = registry.get(wid)
    serving_ok = True
    for i, n in enumerate(sizes):
        direct = wheel.select_many(n, request_stream(seed, digest_key(wid), i))
        if not (
            np.array_equal(coalesced[i], solo[i])
            and np.array_equal(coalesced[i], direct)
        ):
            serving_ok = False
    return {
        "parallel_counts_identical": engine_ok,
        "resolved_workers": resolved_workers,
        "serving_identical_with_controller": serving_ok,
        "controller_retunes": controller.retunes,
        "ok": bool(engine_ok and serving_ok),
    }


# ----------------------------------------------------------------------
def run_bench_tune(
    seed: int = 0,
    *,
    workers: Sequence[int] = _SWEEP_WORKERS,
    trials: int = 24,
    race_trials: int = 8,
    wheel_n: int = 1024,
    method: str = "log_bidding",
    clients: int = 16,
    requests_per_client: int = 32,
    n_draws: int = 8,
    rare_weight: float = 0.02,
    chunk: int = 8192,
    race_trials_probe: int = 20_000,
    calibration_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Probe, predict, measure, and assemble the BENCH_tune record.

    The calibration produced along the way is published to the per-host
    cache (``calibration_out`` overrides the path), so running the
    bench *is* how a host gets tuned.
    """
    cpu_count = os.cpu_count() or 1

    probe_start = time.perf_counter()
    cal, probe_costs = calibrate(
        seed=seed, n=wheel_n, method=method, race_trials=race_trials_probe
    )
    calibration_probe_s = time.perf_counter() - probe_start
    cache_path = save_calibration(cal, calibration_out)
    min_draws = resolve_min_draws_per_worker()

    calibration_section = {
        "path": cache_path,
        "host": cal.host,
        "cpu_count": cal.cpu_count,
        "spawn_overhead_s": cal.spawn_overhead_s,
        "draw_ns": cal.draw_s * 1e9,
        "batch_base_us": cal.batch_base_s * 1e6,
        "batch_per_draw_ns": cal.batch_per_draw_s * 1e9,
        "min_draws_per_worker": cal.min_draws_per_worker(),
        "resolved_min_draws_per_worker": min_draws,
        "probe_costs_s": probe_costs,
        "total_probe_s": calibration_probe_s,
        "samples": sorted(cal.samples),
    }

    predictor = _predictor_section(cal)
    speedup_gate = _speedup_section(
        seed,
        workers=workers,
        trials=trials,
        race_trials=race_trials,
        n=wheel_n,
        method=method,
        rare_weight=rare_weight,
        chunk=chunk,
        cpu_count=cpu_count,
    )
    autotune_gate = _autotune_section(
        cal,
        # Only the batch-kernel probe feeds BatchConfig.autotune; the
        # budget charges what the decision actually consumed.
        float(probe_costs.get("batch", 0.0)),
        seed=seed,
        wheel_n=wheel_n,
        method=method,
        clients=clients,
        requests_per_client=requests_per_client,
        n_draws=n_draws,
    )
    determinism = _determinism_section(seed=seed, wheel_n=wheel_n, method=method)

    return {
        "schema": BENCH_TUNE_SCHEMA,
        "config": {
            "seed": seed,
            "workers": list(workers),
            "trials": trials,
            "race_trials": race_trials,
            "wheel_n": wheel_n,
            "method": method,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "n_draws": n_draws,
        },
        "calibration": calibration_section,
        "predictor": predictor,
        "speedup_gate": speedup_gate,
        "autotune_gate": autotune_gate,
        "determinism": determinism,
        "gates_met": bool(
            predictor["ok"]
            and speedup_gate["gate_met"]
            and autotune_gate["gate_met"]
            and determinism["ok"]
        ),
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


# ----------------------------------------------------------------------
def validate_bench_tune(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed tune record."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") != BENCH_TUNE_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_TUNE_SCHEMA!r}"
        )
    for section in _REQUIRED_SECTIONS + ("config", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing section {section!r}")
    sg = report["speedup_gate"]
    if sg.get("skipped"):
        if not sg.get("skip_reason"):
            raise ValueError("skipped speedup gate must record a skip_reason")
    else:
        if "worst_relative_error" not in sg or "per_worker" not in sg:
            raise ValueError("unskipped speedup gate must record its sweep")
    for section, key in (
        ("predictor", "ok"),
        ("speedup_gate", "gate_met"),
        ("autotune_gate", "gate_met"),
        ("determinism", "ok"),
    ):
        if not isinstance(report[section].get(key), bool):
            raise ValueError(f"section {section!r} must record boolean {key!r}")
    at = report["autotune_gate"]
    for key in ("probe_budget_fraction", "ratio_vs_best_static"):
        value = at.get(key)
        if not isinstance(value, (int, float)) or value < 0 or not math.isfinite(value):
            raise ValueError(
                f"autotune_gate.{key} must be a finite non-negative number, "
                f"got {value!r}"
            )
    if "gates_met" not in report or not isinstance(report["gates_met"], bool):
        raise ValueError("report must record boolean gates_met")


def write_bench_tune(report: Dict[str, Any], path: str = "BENCH_tune.json") -> str:
    """Validate and write a tune bench report; returns the path."""
    validate_bench_tune(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_bench_tune(report: Dict[str, Any]) -> str:
    """One-screen human summary of a tune bench report."""
    cal, pred = report["calibration"], report["predictor"]
    sg, at, det = (
        report["speedup_gate"],
        report["autotune_gate"],
        report["determinism"],
    )
    lines = [
        f"== tune bench: host={cal['host']}, cpus={cal['cpu_count']} ==",
        f"calibration: spawn={cal['spawn_overhead_s'] * 1e3:.1f} ms, "
        f"draw={cal['draw_ns']:.0f} ns, "
        f"flush base={cal['batch_base_us']:.1f} us "
        f"(+{cal['batch_per_draw_ns']:.0f} ns/draw)",
        f"min_draws_per_worker: calibrated={cal['min_draws_per_worker']}, "
        f"resolved={cal['resolved_min_draws_per_worker']}",
        f"race-law check (k={pred['k']}): worst error "
        f"{pred['worst_relative_error'] * 100:.2f}% "
        f"({'OK' if pred['ok'] else 'FAIL'})",
    ]
    if sg["skipped"]:
        lines.append(f"speedup gate: SKIPPED ({sg['skip_reason']})")
    else:
        lines.append(
            f"speedup gate: worst error {sg['worst_relative_error'] * 100:.1f}% "
            f"over W={sg['workers']} "
            f"({'OK' if sg['gate_met'] else 'FAIL'})"
        )
    lines += [
        f"autotune gate: {at['autotuned']['elapsed_s'] * 1e3:.1f} ms vs best "
        f"static {at['best_static']['elapsed_s'] * 1e3:.1f} ms "
        f"({at['ratio_vs_best_static']:.2f}x) at "
        f"{at['probe_budget_fraction'] * 100:.1f}% of sweep budget "
        f"({'OK' if at['gate_met'] else 'FAIL'})",
        f"determinism: engine={det['parallel_counts_identical']}, "
        f"serving={det['serving_identical_with_controller']} "
        f"({'OK' if det['ok'] else 'FAIL'})",
        f"gates_met: {report['gates_met']}",
    ]
    return "\n".join(lines)
