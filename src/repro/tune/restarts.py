"""Restart schedules from captured runtime distributions.

A Las Vegas search (ACO time-to-target, the engine's acceptance races)
with a heavy-tailed runtime distribution is often *faster restarted
than left alone*: cut a run off after ``t`` units and start fresh, and
the expected total time becomes

    ``E[total | cutoff t] = E[min(T, t)] / Pr[T <= t]``

(a geometric number of truncated attempts; Luby, Sinclair & Zuckerman's
classic identity).  With the runtime distribution *known* — which is
exactly what :class:`repro.tune.sample.RuntimeSample` captures — the
optimal policy is a **fixed cutoff** at the ``t`` minimising that
ratio; with the distribution unknown, the universal
:func:`luby_sequence` is within a log factor of it.  This module
computes both, on the same log-survival representation the speedup
predictor uses, so ACO restart schedules derive directly from probe
data instead of hand-picked iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.tune.predictor import RuntimeDistribution
from repro.tune.sample import RuntimeSample

__all__ = ["luby_sequence", "optimal_cutoff", "restart_schedule", "RestartPlan"]


def luby_sequence(n: int) -> List[int]:
    """The first ``n`` terms of the Luby restart sequence.

    ``1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...`` — the
    universal schedule: within ``O(log)`` of the optimal fixed cutoff
    without knowing the runtime distribution.  Term ``i`` (1-based) is
    ``2**(k-1)`` when ``i == 2**k - 1``, else ``luby(i - 2**(k-1) + 1)``
    for the largest ``k`` with ``2**(k-1) <= i < 2**k - 1``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    out: List[int] = []
    for i in range(1, n + 1):
        k = i.bit_length()
        if i == (1 << k) - 1:
            out.append(1 << (k - 1))
        else:
            # Recurse via the already-computed prefix: the sequence is
            # self-similar, so term i equals term i - 2**(k-1) + 1.
            out.append(out[i - (1 << (k - 1))])
    return out


@dataclass
class RestartPlan:
    """An evaluated fixed-cutoff restart policy."""

    #: The cutoff (same unit as the distribution's support).
    cutoff: float
    #: Modelled expected total runtime under the policy.
    expected_total: float
    #: The no-restart expectation E[T], for comparison.
    mean: float
    #: Unit of all three fields.
    unit: str

    @property
    def speedup(self) -> float:
        """E[T] / E[total with restarts] — > 1 when restarting helps."""
        return self.mean / self.expected_total if self.expected_total > 0 else 1.0


def _as_distribution(
    runtimes: Union[RuntimeDistribution, RuntimeSample, Sequence[float]],
) -> RuntimeDistribution:
    if isinstance(runtimes, RuntimeDistribution):
        return runtimes
    if isinstance(runtimes, RuntimeSample):
        return runtimes.distribution()
    return RuntimeDistribution.from_samples(runtimes)


def optimal_cutoff(
    runtimes: Union[RuntimeDistribution, RuntimeSample, Sequence[float]],
) -> RestartPlan:
    """The fixed cutoff minimising expected total time over the support.

    For each support point ``t`` (the only places the empirical ratio
    can change), ``E[min(T, t)]`` telescopes over the survival steps and
    ``Pr[T <= t]`` comes from the same log-survival array, so the whole
    scan is three vector operations.  The scan includes the largest
    support value, where the ratio equals ``E[T]`` — so the returned
    plan *never restarts* (speedup 1) when no cutoff beats running to
    completion, rather than forcing a harmful schedule.
    """
    dist = _as_distribution(runtimes)
    v = dist.values
    sf = np.exp(dist.log_sf)
    # E[min(T, v_i)] = sum_{j<=i} v_j (S_{j-1} - S_j) + v_i * S_i
    steps = np.concatenate(([1.0], sf[:-1])) - sf
    emin = np.cumsum(v * steps) + v * sf
    cdf = -np.expm1(dist.log_sf)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(cdf > 0.0, emin / cdf, np.inf)
    if not np.isfinite(ratio).any():
        # Degenerate (e.g. single observation at 0): never restart.
        return RestartPlan(
            cutoff=float(v[-1]), expected_total=dist.mean(),
            mean=dist.mean(), unit=dist.unit,
        )
    best = int(np.argmin(ratio))
    return RestartPlan(
        cutoff=float(v[best]),
        expected_total=float(ratio[best]),
        mean=dist.mean(),
        unit=dist.unit,
    )


def restart_schedule(
    runtimes: Optional[
        Union[RuntimeDistribution, RuntimeSample, Sequence[float]]
    ] = None,
    *,
    attempts: int = 16,
    unit_scale: float = 1.0,
) -> List[float]:
    """Per-attempt cutoffs: calibrated fixed cutoff, or Luby fallback.

    With a captured runtime distribution the schedule is the optimal
    fixed cutoff repeated (``attempts`` entries); without one it is the
    universal Luby sequence scaled by ``unit_scale`` (the caller's base
    quantum — e.g. the median probe runtime).  Both shapes feed
    :func:`repro.aco.restarts.run_with_restarts` unchanged.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if unit_scale <= 0.0:
        raise ValueError(f"unit_scale must be > 0, got {unit_scale}")
    if runtimes is None:
        return [float(unit_scale * term) for term in luby_sequence(attempts)]
    plan = optimal_cutoff(runtimes)
    return [plan.cutoff] * attempts
