"""Shared wall-clock timing helpers for every bench driver.

Before ``repro.tune`` existed, each bench (`engine/bench.py`,
`engine/aco_bench.py`, `engine/race_bench.py`, `service/loadgen.py`)
carried its own ad-hoc ``perf_counter`` arithmetic: single-shot timing,
min-of-reps, lower-median-of-trials.  This module is the one home for
those idioms, with the estimator choice documented where it is made:

* :func:`timed` — one monotonic measurement of a callable (perf gates
  whose workload is long enough that one shot is representative);
* :func:`best_of` — min over repeats: the standard throughput estimator
  on shared machines, because scheduler preemption only ever *adds*
  time, so the minimum is the closest observation to the true cost;
* :func:`median_of` — lower median of a sample list: robust to a single
  outlier in either direction, used when the quantity compared is a
  *ratio* of two measurements (a min/min ratio would be biased);
* :func:`measure` — the full warmup/repeat policy returning a
  :class:`TimingResult` with every estimator, for callers that want to
  record the whole picture (the ``repro.tune`` probes do).

Everything uses ``time.perf_counter`` — the monotonic, highest-resolution
clock Python offers — and nothing here imports beyond the stdlib, so the
bench drivers (and the tuner's probes) can depend on it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

__all__ = ["timed", "best_of", "median_of", "measure", "TimingResult"]


def timed(fn: Callable[[], Any]) -> float:
    """Seconds one call of ``fn`` takes on the monotonic clock."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_of(fn: Callable[[], Any], repeats: int = 3) -> float:
    """Minimum single-call seconds over ``repeats`` calls of ``fn``.

    Min-of-reps is the standard throughput estimator on shared
    machines: preemption only ever adds time, so the minimum is the
    closest observation to the true cost.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    return min(timed(fn) for _ in range(repeats))


def median_of(samples: Sequence[float]) -> float:
    """Lower median of a non-empty sample list.

    The *lower* median (``sorted(samples)[len // 2]`` for even sizes)
    matches the historical bench drivers bit-for-bit, so rewiring them
    onto this helper changed no recorded number.
    """
    if not samples:
        raise ValueError("median_of needs at least one sample")
    return sorted(samples)[len(samples) // 2]


@dataclass
class TimingResult:
    """Every estimator over one warmup/repeat measurement session."""

    #: Per-repeat wall seconds, in execution order (warmups excluded).
    samples: List[float] = field(default_factory=list)
    #: Warmup calls executed (not timed into ``samples``).
    warmup: int = 0

    @property
    def repeats(self) -> int:
        """Timed calls recorded."""
        return len(self.samples)

    @property
    def best(self) -> float:
        """Min-of-reps (throughput estimator)."""
        return min(self.samples)

    @property
    def median(self) -> float:
        """Lower median (robust ratio estimator)."""
        return median_of(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the repeats."""
        return sum(self.samples) / len(self.samples)

    @property
    def total(self) -> float:
        """Wall seconds spent in timed calls (the probe-budget ledger)."""
        return sum(self.samples)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary for bench records."""
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "best_s": self.best,
            "median_s": self.median,
            "mean_s": self.mean,
            "total_s": self.total,
        }


def measure(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> TimingResult:
    """Time ``fn`` under the standard warmup/repeat policy.

    ``warmup`` untimed calls absorb one-time costs (allocator warmup,
    lazy imports, page faults), then ``repeats`` timed calls populate a
    :class:`TimingResult`.  The caller picks the estimator suited to the
    comparison being made — see the module docstring.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    for _ in range(warmup):
        fn()
    return TimingResult(samples=[timed(fn) for _ in range(repeats)], warmup=warmup)
