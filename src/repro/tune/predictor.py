"""Las Vegas speedup prediction from runtime distributions.

Truchet, Richoux & Codognet ("Prediction of Parallel Speed-ups for
Las Vegas Algorithms", PAPERS.md) observe that for a *multi-walk*
parallelisation — ``W`` independent copies of a randomized algorithm
race, first finisher wins — the parallel runtime is the minimum of
``W`` iid draws from the sequential runtime distribution, so the whole
speedup curve is an order statistic of that one distribution:

    ``speedup(W) = E[T] / E[min(T_1, ..., T_W)]``

No parallel measurement is needed to *predict*: capture the sequential
distribution once (cheap), integrate the min.  The prediction is exact
for the model's assumptions (iid copies, negligible orchestration cost)
and the bench gate (``python -m repro bench-tune``) quantifies how far
a real multi-process race deviates.

:class:`RuntimeDistribution` is the common representation — an
ascending support with **log** survival probabilities, built either
from an empirical :class:`repro.tune.sample.RuntimeSample` or from an
exact discrete law such as the race round-count pmf of
:mod:`repro.stats.race_theory`.  Log space matters for the same reason
it does in ``log_rounds_pmf``: ``Pr[T > t]**W`` underflows linear
float64 long before the interesting regime (deep tails, large ``W``),
while ``W * log_sf`` stays finite.

Two analytic anchors the property tests pin down:

* deterministic runtime → ``E[min] = E[T]`` → multi-walk speedup is
  exactly 1 for every ``W`` (racing identical clones wins nothing);
* exponential runtime → ``E[min of W] = E[T] / W`` → speedup exactly
  ``W`` (the memoryless ideal).

Real restart-style workloads sit between the two.  For *work-sharing*
parallelism (the engine's ``parallel_counts`` shards a draw budget, no
racing), the right model is :func:`sharded_speedup`: deterministic
per-unit work splits perfectly, so the speedup is exactly ``W`` minus
whatever per-worker startup overhead the calibration measured.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "RuntimeDistribution",
    "sharded_speedup",
    "optimal_sharded_workers",
]


class RuntimeDistribution:
    """A runtime law as ``(support, log survival)`` — the predictor's input.

    ``values`` is the ascending support; ``log_sf[j]`` is
    ``log Pr[T > values[j]]`` (so the last entry is ``-inf`` for any
    proper distribution).  All prediction reduces to powering the
    survival function, which is a multiply in log space.
    """

    __slots__ = ("values", "log_sf", "unit")

    def __init__(self, values: np.ndarray, log_sf: np.ndarray, unit: str = "s") -> None:
        values = np.asarray(values, dtype=np.float64)
        log_sf = np.asarray(log_sf, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("support must be a non-empty 1-D array")
        if values.shape != log_sf.shape:
            raise ValueError("support and log_sf must have identical shape")
        if (np.diff(values) < 0).any():
            raise ValueError("support must be ascending")
        if (log_sf > 1e-12).any():
            raise ValueError("log survival probabilities must be <= 0")
        if (np.diff(log_sf) > 1e-12).any():
            raise ValueError("survival function must be non-increasing")
        self.values = values
        self.log_sf = np.minimum(log_sf, 0.0)
        self.unit = str(unit)

    # -- constructors --------------------------------------------------
    @classmethod
    def from_samples(
        cls, samples: Sequence[float], unit: str = "s"
    ) -> "RuntimeDistribution":
        """The empirical distribution of a runtime sample.

        Positional survival ``Pr[T > x_(j)] = (m - 1 - j) / m`` over the
        sorted sample is used; ties telescope correctly in every
        expectation computed here, so duplicates need no special casing.
        """
        arr = np.sort(np.asarray(samples, dtype=np.float64))
        if arr.size == 0:
            raise ValueError("need at least one runtime observation")
        if not np.isfinite(arr).all() or arr[0] < 0.0:
            raise ValueError("runtime observations must be finite and >= 0")
        m = arr.size
        with np.errstate(divide="ignore"):
            log_sf = np.log(np.arange(m - 1, -1, -1, dtype=np.float64) / m)
        return cls(arr, log_sf, unit=unit)

    @classmethod
    def from_log_pmf(
        cls,
        log_pmf: Sequence[float],
        support: Optional[Sequence[float]] = None,
        unit: str = "rounds",
    ) -> "RuntimeDistribution":
        """An exact discrete law from log probabilities.

        ``support`` defaults to ``0..len(log_pmf)-1`` — the layout of
        :func:`repro.stats.race_theory.log_rounds_pmf`.  The survival
        function is accumulated with ``logaddexp`` from the tail, so a
        pmf whose entries span hundreds of orders of magnitude stays
        finite end to end.
        """
        lp = np.asarray(log_pmf, dtype=np.float64)
        if lp.ndim != 1 or lp.size == 0:
            raise ValueError("log_pmf must be a non-empty 1-D array")
        values = (
            np.arange(lp.size, dtype=np.float64)
            if support is None
            else np.asarray(support, dtype=np.float64)
        )
        if values.shape != lp.shape:
            raise ValueError("support and log_pmf must have identical shape")
        # log Pr[T > v_j] = logsumexp(lp[j+1:]), accumulated from the tail.
        tail = np.logaddexp.accumulate(lp[::-1])[::-1]
        log_sf = np.full(lp.size, -np.inf)
        log_sf[:-1] = tail[1:]
        # Truncated laws (race pmfs cut at t_max) carry mass above the
        # window; clamp the stray positive residue from accumulation.
        return cls(values, np.minimum(log_sf, 0.0), unit=unit)

    @classmethod
    def from_race_law(cls, k: int, t_max: Optional[int] = None) -> "RuntimeDistribution":
        """The exact round-count law ``T(k)`` of the paper's race."""
        from repro.stats.race_theory import log_rounds_pmf

        return cls.from_log_pmf(log_rounds_pmf(k, t_max=t_max), unit="rounds")

    # -- prediction ----------------------------------------------------
    def expected_min(self, workers: int) -> float:
        """``E[min of workers iid copies]`` — the multi-walk runtime.

        With ``S`` the survival function, ``Pr[min > v] = S(v)**W``; the
        expectation telescopes over the support as
        ``sum_j v_j * (S_{j-1}**W - S_j**W)``, each power taken as
        ``exp(W * log S)`` so deep tails never underflow to a wrong
        zero-probability step.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        lsf = np.concatenate(([0.0], float(workers) * self.log_sf))
        p = np.exp(lsf)
        step = p[:-1] - p[1:]
        return float(np.dot(self.values, step))

    def mean(self) -> float:
        """``E[T]`` (the one-copy expectation)."""
        return self.expected_min(1)

    def min_of(self, workers: int) -> "RuntimeDistribution":
        """The distribution of the multi-walk minimum itself."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return RuntimeDistribution(
            self.values, float(workers) * self.log_sf, unit=self.unit
        )

    def speedup(self, workers: int) -> float:
        """Predicted multi-walk speedup ``E[T] / E[min of workers]``."""
        mean = self.mean()
        if mean <= 0.0:
            raise ValueError("speedup is undefined for a zero-mean runtime")
        return mean / self.expected_min(workers)

    def speedup_curve(self, workers: Sequence[int]) -> Dict[int, float]:
        """``{W: speedup(W)}`` over a worker grid."""
        return {int(w): self.speedup(int(w)) for w in workers}

    def quantile(self, q: float) -> float:
        """Smallest support value ``v`` with ``Pr[T <= v] >= q``."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {q}")
        cdf = -np.expm1(self.log_sf)  # 1 - sf, accurate near 0
        idx = int(np.searchsorted(cdf, q))
        return float(self.values[min(idx, self.values.size - 1)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RuntimeDistribution(points={self.values.size}, "
            f"mean={self.mean():.6g} {self.unit})"
        )


def sharded_speedup(
    work_s: float, workers: int, overhead_s: float = 0.0
) -> float:
    """Work-sharing speedup with per-worker startup overhead.

    The engine's ``parallel_counts`` model: a draw budget costing
    ``work_s`` sequentially splits perfectly across ``workers``, but
    standing up the pool costs ``overhead_s`` per extra worker (the
    calibrated ``spawn_overhead_s``).  With zero overhead the speedup
    is exactly ``workers`` — the deterministic-runtime anchor of the
    property tests.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if work_s <= 0.0:
        raise ValueError(f"work_s must be positive, got {work_s}")
    if overhead_s < 0.0:
        raise ValueError(f"overhead_s must be >= 0, got {overhead_s}")
    if workers == 1:
        return 1.0
    return work_s / (overhead_s + work_s / workers)


def optimal_sharded_workers(
    work_s: float,
    available: int,
    overhead_s: float = 0.0,
) -> int:
    """The worker count minimising modelled time-to-solution under a cap.

    The cost model: one worker runs in-process (``work_s``, no pool);
    ``W > 1`` workers pay ``overhead_s`` of serial pool startup *per
    worker* (the parent forks them one by one) plus ``work_s / W`` of
    sharded work — so the optimum sits near ``sqrt(work / overhead)``
    and spawning past it makes the job slower.  Scanning
    ``1..available`` keeps the contract obvious and costs nothing at
    realistic core counts.
    """
    if available < 1:
        raise ValueError(f"available must be >= 1, got {available}")
    best_w, best_t = 1, work_s
    for w in range(2, available + 1):
        t = overhead_s * w + work_s / w
        if t < best_t:
            best_w, best_t = w, t
    return best_w
