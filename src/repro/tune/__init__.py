"""Runtime-distribution capture, speedup prediction, and autotuning.

``repro.tune`` closes the loop between measurement and configuration:

* :mod:`repro.tune.timers` — the shared wall-clock timing idioms every
  bench driver uses (min-of-reps, lower median, warmup/repeat policy);
* :mod:`repro.tune.sample` — portable empirical runtime samples;
* :mod:`repro.tune.predictor` — the Las Vegas multi-walk speedup model
  (Truchet, Richoux & Codognet) plus the work-sharing cost model the
  engine's sharded draws follow, all in log space;
* :mod:`repro.tune.probes` — short probe runs measuring this host's
  cost constants and runtime distributions;
* :mod:`repro.tune.calibration` — the atomic per-host calibration cache
  and the ``suggest_workers`` min-draws resolution chain;
* :mod:`repro.tune.controller` — the bounded online controller that
  adapts ``MicroBatchScheduler.max_delay_us`` from live batch-size
  telemetry (off by default; never touches per-request substreams);
* :mod:`repro.tune.restarts` — restart schedules (fixed cutoff, Luby)
  derived from captured restart-time distributions;
* :mod:`repro.tune.bench` — ``python -m repro bench-tune``, the gate
  that scores predictions against measurement.
"""

from repro.tune.calibration import (
    HostCalibration,
    calibration_path,
    load_calibration,
    resolve_min_draws_per_worker,
    save_calibration,
)
from repro.tune.controller import DelayController
from repro.tune.predictor import (
    RuntimeDistribution,
    optimal_sharded_workers,
    sharded_speedup,
)
from repro.tune.probes import calibrate
from repro.tune.restarts import luby_sequence, optimal_cutoff, restart_schedule
from repro.tune.sample import RuntimeSample
from repro.tune.timers import TimingResult, best_of, measure, median_of, timed

__all__ = [
    "RuntimeSample",
    "RuntimeDistribution",
    "sharded_speedup",
    "optimal_sharded_workers",
    "HostCalibration",
    "calibration_path",
    "load_calibration",
    "save_calibration",
    "resolve_min_draws_per_worker",
    "calibrate",
    "DelayController",
    "luby_sequence",
    "optimal_cutoff",
    "restart_schedule",
    "timed",
    "best_of",
    "median_of",
    "measure",
    "TimingResult",
]
