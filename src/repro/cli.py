"""Command-line entry point: ``python -m repro <experiment> [options]``.

Runs the paper-reproduction experiments registered in
:data:`repro.bench.experiments.EXPERIMENTS` and prints their tables, the
selection-engine benchmark (``python -m repro bench-engine``, recorded in
``BENCH_engine.json``), the race-lab benchmark (``python -m repro
bench-race``, recorded in ``BENCH_race.json``), the end-to-end ACO
benchmark (``python -m repro bench-aco``, recorded in
``BENCH_aco.json``), the differential degenerate-wheel audit
(``python -m repro audit``, exit 0 iff zero violations across every
backend), the async selection service (``python -m repro serve``,
JSON-lines over TCP or stdio), the serving benchmark (``python -m
repro bench-serve``, recorded in ``BENCH_serve.json``), and the
selection-workloads benchmark (``python -m repro bench-select``,
recorded in ``BENCH_select.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro._version import __version__
from repro.bench.experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def _jsonable(obj):
    """Recursively convert experiment data (ndarrays etc.) to JSON types."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'The Logarithmic Random Bidding "
            "for the Parallel Roulette Wheel Selection with Precise "
            "Probabilities' (IPPS 2024)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS)
        + ["all", "audit", "bench-aco", "bench-engine", "bench-race", "bench-select", "bench-serve", "bench-tune", "serve"],
        help=(
            "experiment to run ('all' runs every paper experiment; "
            "'audit' runs the differential degenerate-wheel audit over "
            "every selection backend; "
            "'bench-aco' times end-to-end colony construction scalar vs "
            "the vectorized lockstep engine; "
            "'bench-engine' times the compiled selection engine; "
            "'bench-race' validates the batched race kernel against the "
            "exact round-count law at paper-scale k; "
            "'bench-select' gates the selection workloads — smooth-"
            "lottery marginal exactness (precise vs independent-roulette "
            "at one draw budget) and ranking-&-selection PCS with a "
            "1-vs-N-worker determinism certificate; "
            "'bench-serve' measures the micro-batching selection service "
            "against the per-request baseline, binary frames against "
            "JSON-lines, and the sharded cluster scaling sweep; "
            "'bench-tune' calibrates this host, scores the Las Vegas "
            "speedup predictor against a measured worker sweep, and "
            "checks autotuned configs against a static sweep; "
            "'lab' is the declarative experiment workbench — "
            "'lab run CONFIG' executes a TOML/JSON design matrix resumably "
            "with per-cell caching (see 'lab --help'); "
            "'serve' runs the selection service — binary frames + "
            "JSON-lines over TCP, sharded across processes with "
            "--workers N)"
        ),
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="Monte-Carlo draws for table experiments (default: driver's default; "
        "the paper used 10**9)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    parser.add_argument(
        "--engine",
        type=str,
        default=None,
        help=(
            "drive table1/table2 with a from-scratch RNG engine at 32-bit "
            "resolution (e.g. 'mt19937' = the paper's exact rand(); slower)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment's raw data as JSON instead of a table",
    )
    parser.add_argument(
        "--wheel-size",
        type=int,
        default=1000,
        help="bench-engine only: items on the benchmarked wheel (default 1000)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help=(
            "bench-engine / bench-race: where to record the measurements "
            "(default BENCH_engine.json / BENCH_race.json); "
            "audit: also write the JSON report here"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=200,
        help=(
            "audit only: draws per (backend, case) pair for vectorised "
            "backends; simulated machines get max(20, trials//2) (default 200)"
        ),
    )
    parser.add_argument(
        "--race-k",
        type=int,
        nargs="+",
        default=None,
        help="bench-race only: k grid to sweep (default 2^10 2^14 2^17 2^20)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "bench-race: fan-out processes (default: auto-tuned); "
            "serve: shard worker processes — >1 starts the sharded "
            "multi-process cluster (default: 1, in-process)"
        ),
    )
    parser.add_argument(
        "--aco-n",
        type=int,
        default=500,
        help="bench-aco only: TSP instance size (default 500, the gate scale)",
    )
    parser.add_argument(
        "--aco-ants",
        type=int,
        default=128,
        help="bench-aco only: ants per lockstep iteration (default 128)",
    )
    parser.add_argument(
        "--select-replications",
        type=int,
        default=None,
        help="bench-select only: screening replications for the PCS gate (default 40)",
    )
    parser.add_argument(
        "--select-systems",
        type=int,
        default=None,
        help="bench-select only: systems K in the slippage configuration (default 10)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="serve only: TCP bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=7077,
        help="serve only: TCP port (default 7077)",
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve only: speak JSON-lines over stdin/stdout instead of TCP",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="serve / bench-serve: requests coalesced per kernel call (default 64)",
    )
    parser.add_argument(
        "--max-delay-us",
        type=float,
        default=200.0,
        help="serve / bench-serve: batching delay bound in microseconds (default 200)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="serve only: queued requests before shedding (default 1024)",
    )
    parser.add_argument(
        "--max-wheels",
        type=int,
        default=256,
        help="serve only: registry LRU capacity (default 256)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=64,
        help="bench-serve only: concurrent closed-loop clients (default 64)",
    )
    parser.add_argument(
        "--requests-per-client",
        type=int,
        default=32,
        help="bench-serve only: sequential requests per client (default 32)",
    )
    parser.add_argument(
        "--draws-per-request",
        type=int,
        default=8,
        help="bench-serve only: draws per request (default 8)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=1,
        help=(
            "bench-serve only: load-generator processes for the TCP legs "
            "(default 1; raise on multi-core hosts so the client side is "
            "not the bottleneck)"
        ),
    )
    parser.add_argument(
        "--cluster-workers",
        type=int,
        nargs="+",
        default=None,
        help=(
            "bench-serve only: cluster worker counts to sweep "
            "(default: {1,2,4,8} capped by cpu_count)"
        ),
    )
    parser.add_argument(
        "--mutate",
        action="store_true",
        help=(
            "bench-serve only: run the served mutate leg (mixed UPDATE/DRAW "
            "traffic with per-version latency histograms) at the full "
            "--clients count instead of the light default"
        ),
    )
    parser.add_argument(
        "--update-every",
        type=int,
        default=4,
        help=(
            "bench-serve only: mutate leg sends one UPDATE per this many "
            "requests (default 4; 0 disables updates)"
        ),
    )
    parser.add_argument(
        "--update-k",
        type=int,
        default=8,
        help="bench-serve only: indices mutated per UPDATE (default 8)",
    )
    parser.add_argument(
        "--update-n",
        type=int,
        default=100_000,
        help=(
            "bench-serve only: wheel size for the delta-update-vs-"
            "re-register gate (default 100000, the recorded gate point)"
        ),
    )
    return parser


def _run_bench_engine(args) -> int:
    """Run the engine benchmark, record BENCH_engine.json, print a summary."""
    from repro.engine.bench import render_bench, run_bench, write_bench

    draws = args.iterations if args.iterations is not None else 1_000_000
    report = run_bench(n=args.wheel_size, draws=draws, seed=args.seed)
    path = write_bench(report, args.output or "BENCH_engine.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench(report))
        print(f"recorded -> {path}")
    return 0


def _run_bench_race(args) -> int:
    """Run the race-lab benchmark, record BENCH_race.json, print a summary."""
    from repro.engine.race_bench import (
        render_bench_race,
        run_bench_race,
        write_bench_race,
    )

    trials = args.iterations if args.iterations is not None else 100_000
    kwargs = {"trials": trials, "seed": args.seed, "workers": args.workers}
    if args.race_k is not None:
        kwargs["ks"] = args.race_k
        # A custom grid may exclude the default gate point; anchor the
        # PRAM speedup leg at the grid's smallest k (capped for per-step
        # machine feasibility).
        kwargs["pram_k"] = min(min(args.race_k), 256)
    report = run_bench_race(**kwargs)
    path = write_bench_race(report, args.output or "BENCH_race.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_race(report))
        print(f"recorded -> {path}")
    return 0


def _run_bench_aco(args) -> int:
    """Run the end-to-end ACO benchmark, record BENCH_aco.json."""
    from repro.engine.aco_bench import (
        render_bench_aco,
        run_bench_aco,
        write_bench_aco,
    )

    iterations = args.iterations if args.iterations is not None else 2
    report = run_bench_aco(
        n=args.aco_n,
        n_ants=args.aco_ants,
        iterations=iterations,
        seed=args.seed,
    )
    path = write_bench_aco(report, args.output or "BENCH_aco.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_aco(report))
        print(f"recorded -> {path}")
    return 0


def _run_bench_tune(args) -> int:
    """Run the tuning benchmark, record BENCH_tune.json, print a summary."""
    from repro.tune.bench import (
        render_bench_tune,
        run_bench_tune,
        write_bench_tune,
    )

    kwargs = {"seed": args.seed}
    if args.iterations is not None:
        kwargs["trials"] = args.iterations
    report = run_bench_tune(**kwargs)
    path = write_bench_tune(report, args.output or "BENCH_tune.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_tune(report))
        print(f"recorded -> {path}")
    return 0


def _run_bench_select(args) -> int:
    """Run the selection-workloads benchmark, record BENCH_select.json."""
    from repro.select.bench import (
        render_bench_select,
        run_bench_select,
        write_bench_select,
    )

    kwargs = {"seed": args.seed}
    if args.iterations is not None:
        kwargs["lottery_draws"] = args.iterations
    if args.select_replications is not None:
        kwargs["rs_replications"] = args.select_replications
    if args.select_systems is not None:
        kwargs["rs_systems"] = args.select_systems
    report = run_bench_select(**kwargs)
    path = write_bench_select(report, args.output or "BENCH_select.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_select(report))
        print(f"recorded -> {path}")
    return 0


def _run_bench_serve(args) -> int:
    """Run the serving benchmark, record BENCH_serve.json."""
    from repro.service.loadgen import (
        render_bench_serve,
        run_bench_serve,
        write_bench_serve,
    )

    report = run_bench_serve(
        wheel_size=args.wheel_size,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        n_draws=args.draws_per_request,
        seed=args.seed,
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        procs=args.procs,
        cluster_workers=args.cluster_workers,
        mutate=args.mutate,
        update_every=args.update_every,
        update_k=args.update_k,
        update_n=args.update_n,
    )
    path = write_bench_serve(report, args.output or "BENCH_serve.json")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_serve(report))
        print(f"recorded -> {path}")
    return 0


async def _serve_tcp_until_signal(service, host: str, port: int) -> None:
    """Serve TCP with graceful drain on SIGTERM / SIGINT.

    On signal: stop accepting connections, flip the service into
    ``draining`` (in-flight requests complete; new frames get the typed
    ``draining`` refusal), flush, then exit — no accepted request lost.
    """
    import asyncio
    import signal

    from repro.service.server import start_tcp_server

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    installed = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    server = await start_tcp_server(service, host, port)
    bound = server.sockets[0].getsockname()
    workers = getattr(service, "workers", 1)
    print(
        f"repro selection service listening on {bound[0]}:{bound[1]} "
        f"(binary frames + JSON lines; workers={workers}; "
        f"SIGTERM/ctrl-c drains gracefully)",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
        server.close()
        await server.wait_closed()
        print("draining: completing in-flight requests", file=sys.stderr, flush=True)
        await service.drain()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        await service.close()


def _run_serve(args) -> int:
    """Run the selection service until EOF (stdio) or signal (TCP)."""
    import asyncio

    from repro.service.scheduler import BatchConfig

    config = BatchConfig(
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        queue_limit=args.queue_limit,
    )
    if args.workers is not None and args.workers > 1:
        # Sharded multi-process cluster; must be built before any event
        # loop exists (workers are forked in the constructor).
        from repro.service.cluster import ClusterService

        service = ClusterService(
            workers=args.workers,
            seed=args.seed,
            config=config,
            max_wheels=args.max_wheels,
        )
    else:
        from repro.service.server import SelectionService

        service = SelectionService(
            seed=args.seed, config=config, max_wheels=args.max_wheels
        )
    try:
        if args.stdio:
            from repro.service.server import serve_stdio

            asyncio.run(serve_stdio(service))
        else:
            asyncio.run(_serve_tcp_until_signal(service, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - signal raced the handler
        pass
    return 0


def _run_audit(args) -> int:
    """Run the degenerate-wheel audit; exit 0 iff zero violations."""
    from repro.audit import render_report, run_audit

    report = run_audit(trials=args.trials, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
        if args.output:
            print(f"recorded -> {args.output}")
    return 0 if report["summary"]["passed"] else 1


def _run_one(
    name: str,
    iterations: Optional[int],
    seed: int,
    as_json: bool = False,
    engine: Optional[str] = None,
) -> str:
    driver = EXPERIMENTS[name]
    kwargs = {"seed": seed}
    if iterations is not None and name in ("table1", "table2", "worked-example", "rng"):
        kwargs["iterations"] = iterations
    if engine is not None and name in ("table1", "table2"):
        kwargs["engine"] = engine
    report = driver(**kwargs)
    if as_json:
        return json.dumps(
            {"name": report.name, "title": report.title, "data": _jsonable(report.data)},
            indent=2,
        )
    return report.render()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lab":
        # The workbench has its own subcommand tree (run/status/report/
        # clean/bench/scenarios); delegate before the flat parser runs.
        from repro.lab.cli import main as lab_main

        return lab_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(EXPERIMENTS) + [
            "audit",
            "bench-aco",
            "bench-engine",
            "bench-race",
            "bench-select",
            "bench-serve",
            "bench-tune",
            "lab",
            "serve",
        ]:
            print(name)
        return 0
    if args.experiment is None:
        parser.print_help()
        return 2
    if args.experiment == "audit":
        return _run_audit(args)
    if args.experiment == "bench-aco":
        return _run_bench_aco(args)
    if args.experiment == "bench-engine":
        return _run_bench_engine(args)
    if args.experiment == "bench-race":
        return _run_bench_race(args)
    if args.experiment == "bench-select":
        return _run_bench_select(args)
    if args.experiment == "bench-serve":
        return _run_bench_serve(args)
    if args.experiment == "bench-tune":
        return _run_bench_tune(args)
    if args.experiment == "serve":
        return _run_serve(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(
            _run_one(
                name, args.iterations, args.seed, as_json=args.json, engine=args.engine
            )
        )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
