"""The differential audit: every backend, every adversarial input.

One :class:`Backend` adapter per public selection entry point — the ten
registry methods, the compiled engine under both kernel policies, the
PRAM / SIMT / message-passing machine models, the streaming selector and
the thread-backed race.  Each backend is driven over the full
:mod:`repro.audit.generators` suite and judged against the unified
contract:

* **valid** input → an index from the support, counts summing to the
  trial budget, and (for exact backends) chi-square agreement with the
  target ``F_i``;
* **degenerate** / **invalid** input → ``DegenerateFitnessError`` /
  ``FitnessError`` / ``SelectionError`` raised promptly — never a hang
  (probes run under a watchdog), never a silent index, never NaN.

Violations carry the backend, case name and seed, so every failure is a
one-liner to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.audit.generators import (
    CATEGORY_VALID,
    AdversarialCase,
    generate_cases,
)
from repro.audit.oracle import (
    FAITHFUL_METHODS,
    check_faithful_compilation,
    replay_transforms,
)
from repro.core.fitness import exact_probabilities
from repro.core.methods import available_methods, get_method
from repro.engine.compiled import _AUTO_KERNEL, _FAITHFUL_KERNEL, CompiledWheel
from repro.errors import FitnessError, SelectionError, TeamTimeoutError
from repro.parallel.team import ThreadTeam

__all__ = [
    "Backend",
    "Verdict",
    "iter_backends",
    "audit_backend_case",
    "run_audit",
    "DEFAULT_ALPHA",
    "WATCHDOG_SECONDS",
]

#: Chi-square rejection level.  Deliberately tiny: the audit runs
#: hundreds of (backend, case) tests per invocation and must not cry
#: wolf on sampling noise; real contract breaks (wrong support, biased
#: winner) reject far below this.
DEFAULT_ALPHA = 1e-6

#: Wall-clock budget for a single degenerate/invalid probe.  The probe
#: is one selection on a <=64-item wheel (microseconds when correct);
#: hitting this bound means the backend hung, the exact failure mode the
#: stochastic-acceptance bug exhibited.
WATCHDOG_SECONDS = 10.0

#: Exceptions the unified input contract allows a backend to raise.
_CONTRACT_ERRORS = (FitnessError, SelectionError)


@dataclass
class Backend:
    """One auditable selection entry point."""

    #: Unique report name, e.g. ``registry:log_bidding``.
    name: str
    #: Subsystem family: registry / engine / colony / pram / simt / msg /
    #: core / parallel.
    family: str
    #: ``counts(fitness, trials, seed) -> (n,) int histogram of winners``.
    counts: Callable[[Sequence[float], int, int], np.ndarray]
    #: Whether the selection distribution is exactly ``F_i``.
    exact: bool = True
    #: Machine-model backends run one simulated selection per trial and
    #: get the (smaller) machine trial budget.
    machine: bool = False


@dataclass
class Verdict:
    """Outcome of one (backend, case, check) probe."""

    backend: str
    family: str
    case: str
    category: str
    check: str
    status: str  # "ok" | "violation" | "skipped"
    detail: str = ""
    seed: int = 0

    def to_dict(self) -> Dict[str, object]:
        """The verdict as a JSON-able report row."""
        return {
            "backend": self.backend,
            "family": self.family,
            "case": self.case,
            "category": self.category,
            "check": self.check,
            "status": self.status,
            "detail": self.detail,
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# Backend adapters
# ----------------------------------------------------------------------
def _registry_counts(method_name: str):
    def counts(fitness, trials, seed):
        from repro.core.selector import RouletteWheel

        wheel = RouletteWheel(fitness, method=method_name, rng=seed)
        return wheel.counts(trials)

    return counts


def _engine_counts(method_name: str, policy: str):
    def counts(fitness, trials, seed):
        wheel = CompiledWheel(fitness, method_name, kernel=policy)
        return wheel.counts(trials, rng=np.random.default_rng(seed))

    return counts


def _per_trial_counts(select_one: Callable[[Sequence[float], int], int]):
    """Lift ``select_one(fitness, seed) -> index`` to a histogram."""

    def counts(fitness, trials, seed):
        n = len(np.atleast_1d(np.asarray(fitness, dtype=np.float64)))
        out = np.zeros(max(n, 1), dtype=np.int64)
        for t in range(trials):
            out[select_one(fitness, seed + t)] += 1
        return out

    return counts


def _pram_log(fitness, seed):
    from repro.pram.algorithms.roulette import log_bidding_roulette

    return log_bidding_roulette(fitness, seed=seed).winner


def _pram_prefix(fitness, seed):
    from repro.pram.algorithms.roulette import prefix_sum_roulette

    return prefix_sum_roulette(fitness, seed=seed).winner


def _simt_atomic(fitness, seed):
    from repro.simt.roulette import atomic_roulette

    return atomic_roulette(fitness, seed=seed).winner


def _simt_warp(fitness, seed):
    from repro.simt.roulette import warp_reduced_roulette

    return warp_reduced_roulette(fitness, seed=seed).winner


def _simt_independent(fitness, seed):
    from repro.simt.roulette import independent_atomic_roulette

    return independent_atomic_roulette(fitness, seed=seed).winner


def _msg_log(fitness, seed):
    from repro.msg.roulette import distributed_roulette

    return distributed_roulette(fitness, seed=seed).winner


def _msg_prefix(fitness, seed):
    from repro.msg.roulette import distributed_prefix_roulette

    return distributed_prefix_roulette(fitness, seed=seed).winner


def _threaded(fitness, seed):
    from repro.parallel.race import threaded_select

    return threaded_select(fitness, nthreads=8, seed=seed).winner


def _streaming(fitness, seed):
    from repro.core.streaming import streaming_select

    winner, _seen = streaming_select(fitness, rng=np.random.default_rng(seed))
    return winner


#: Concurrent draw requests the service audit splits each trial budget
#: into, so the micro-batching coalescing path is actually exercised.
_SERVICE_REQUESTS = 4


def _service_counts(method_name: str):
    """Audit adapter for the batched selection service.

    Goes through the full request path — ``register`` then concurrent
    ``draw`` requests coalesced by the micro-batch scheduler — and maps
    structured error responses back to the typed contract exceptions via
    :func:`repro.service.protocol.raise_structured`, so a degenerate
    wheel surfaces as :class:`DegenerateFitnessError` exactly like every
    other backend.
    """

    def counts(fitness, trials, seed):
        import asyncio

        from repro.service.protocol import raise_structured
        from repro.service.scheduler import BatchConfig
        from repro.service.server import SelectionService

        async def run() -> np.ndarray:
            service = SelectionService(
                seed=seed, config=BatchConfig(max_batch=_SERVICE_REQUESTS)
            )
            registered = raise_structured(
                await service.handle_request(
                    {"op": "register", "fitness": fitness, "method": method_name}
                )
            )
            wheel_id = registered["wheel"]
            parts = [trials // _SERVICE_REQUESTS] * _SERVICE_REQUESTS
            parts[0] += trials - sum(parts)
            parts = [p for p in parts if p > 0]
            responses = await asyncio.gather(
                *(
                    service.handle_request(
                        {"op": "draw", "wheel": wheel_id, "n": p, "seed": i}
                    )
                    for i, p in enumerate(parts)
                )
            )
            draws = np.concatenate(
                [
                    np.asarray(raise_structured(r)["draws"], dtype=np.int64)
                    for r in responses
                ]
            )
            await service.close()
            return draws

        draws = asyncio.run(run())
        n = np.atleast_1d(np.asarray(fitness, dtype=np.float64)).shape[0]
        return np.bincount(draws, minlength=max(n, 1)).astype(np.int64)

    return counts


def _lottery_counts(method_name: str):
    """Audit adapter for the committee-lottery realisation path.

    Drives :meth:`repro.select.lottery.CommitteeLottery.from_weights` —
    the ``k = 1`` corner where committees are singletons and the
    component histogram *is* the selection histogram — so the whole
    marginal machinery downstream of an arbitrary (possibly degenerate)
    weight vector sits under the unified contract.  The precise
    log-bidding lottery must match ``F_i``; the independent-roulette
    lottery is registered inexact because its bias is the point.
    """

    def counts(fitness, trials, seed):
        from repro.select.lottery import CommitteeLottery

        lottery = CommitteeLottery.from_weights(fitness, method=method_name)
        return lottery.component_counts(trials, rng=np.random.default_rng(seed))

    return counts


def _fenwick_dynamic(fitness, trials, seed):
    from repro.core.dynamic import FenwickSampler

    sampler = FenwickSampler(fitness)
    draws = sampler.select_many(trials, rng=np.random.default_rng(seed))
    return np.bincount(draws, minlength=sampler.n).astype(np.int64)


#: Rows per lockstep batch when tiling one audit wheel into a colony
#: fitness matrix (bounds the (rows, n) temporary).
_LOCKSTEP_CHUNK = 256


def _lockstep_counts(method_name: str, mode: str):
    """Audit adapter for the vectorized colony selection.

    Tiles the 1-D audit wheel into identical rows (every ant spinning
    the same wheel) and draws one winner per row through
    :func:`repro.engine.colony.lockstep_select` — fast mode from a
    shared generator, faithful mode from per-ant substreams.
    """

    def counts(fitness, trials, seed):
        from repro.engine.colony import AntStreams, lockstep_select

        f = np.atleast_1d(np.asarray(fitness, dtype=np.float64))
        if f.ndim != 1:
            raise FitnessError(f"audit wheels must be 1-D, got shape {f.shape}")
        out = np.zeros(max(f.shape[0], 1), dtype=np.int64)
        rng = np.random.default_rng(seed)
        done = 0
        chunk_index = 0
        while done < trials:
            c = min(_LOCKSTEP_CHUNK, trials - done)
            rows = np.tile(f, (c, 1))
            if mode == "faithful":
                streams = AntStreams((seed, chunk_index), c)
                winners = lockstep_select(rows, method=method_name, streams=streams)
            else:
                winners = lockstep_select(rows, rng, method=method_name)
            out += np.bincount(winners, minlength=out.shape[0])
            done += c
            chunk_index += 1
        return out

    return counts


def iter_backends() -> List[Backend]:
    """Every auditable backend, deterministically ordered."""
    backends: List[Backend] = []
    for name in available_methods():
        backends.append(
            Backend(
                name=f"registry:{name}",
                family="registry",
                counts=_registry_counts(name),
                exact=get_method(name).exact,
            )
        )
    for name in sorted(_AUTO_KERNEL):
        backends.append(
            Backend(
                name=f"engine:auto:{name}",
                family="engine",
                counts=_engine_counts(name, "auto"),
                exact=get_method(name).exact,
            )
        )
    for name in sorted(_FAITHFUL_KERNEL):
        backends.append(
            Backend(
                name=f"engine:faithful:{name}",
                family="engine",
                counts=_engine_counts(name, "faithful"),
                exact=get_method(name).exact,
            )
        )
    from repro.engine.colony import LOCKSTEP_METHODS

    for name in sorted(LOCKSTEP_METHODS):
        backends.append(
            Backend(
                name=f"colony:lockstep:{name}",
                family="colony",
                counts=_lockstep_counts(name, "fast"),
                exact=get_method(name).exact,
            )
        )
    for name in sorted(LOCKSTEP_METHODS):
        backends.append(
            Backend(
                name=f"colony:faithful:{name}",
                family="colony",
                counts=_lockstep_counts(name, "faithful"),
                exact=get_method(name).exact,
            )
        )
    backends += [
        Backend("pram:log_bidding", "pram", _per_trial_counts(_pram_log), machine=True),
        Backend("pram:prefix_sum", "pram", _per_trial_counts(_pram_prefix), machine=True),
        Backend("simt:atomic", "simt", _per_trial_counts(_simt_atomic), machine=True),
        Backend("simt:warp_reduced", "simt", _per_trial_counts(_simt_warp), machine=True),
        Backend(
            "simt:independent_atomic",
            "simt",
            _per_trial_counts(_simt_independent),
            exact=False,
            machine=True,
        ),
        Backend("msg:log_bidding", "msg", _per_trial_counts(_msg_log), machine=True),
        Backend("msg:prefix_sum", "msg", _per_trial_counts(_msg_prefix), machine=True),
        Backend("parallel:threaded_race", "parallel", _per_trial_counts(_threaded), machine=True),
        Backend("core:streaming", "core", _per_trial_counts(_streaming), machine=True),
        Backend("core:fenwick_dynamic", "core", _fenwick_dynamic),
    ]
    for name in ("log_bidding", "gumbel", "alias"):
        backends.append(
            Backend(
                name=f"service:batched:{name}",
                family="service",
                counts=_service_counts(name),
                exact=get_method(name).exact,
            )
        )
    for name in ("log_bidding", "independent"):
        backends.append(
            Backend(
                name=f"select:lottery:{name}",
                family="select",
                counts=_lottery_counts(name),
                exact=get_method(name).exact,
            )
        )
    return backends


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
def _probe_under_watchdog(fn: Callable[[], object], timeout: float):
    """Run ``fn`` on a watchdog thread; raise TeamTimeoutError on a hang.

    Dogfoods the hardened :class:`repro.parallel.team.ThreadTeam`: the
    daemon worker is abandoned on expiry instead of blocking the audit
    forever — exactly the "never hangs" clause being enforced.
    """
    def worker(_ctx):
        # Scalar kernels saturate subnormal bids to -inf by design
        # (documented limitation); keep their overflow chatter out of
        # the report.  Verdicts come from the returned values, not warnings.
        with np.errstate(over="ignore", under="ignore", divide="ignore"):
            return fn()

    team = ThreadTeam(1, seed=0)
    result = team.run(worker, timeout=timeout)
    return result.returns[0]


def _check_degenerate(backend: Backend, case: AdversarialCase, seed: int) -> Verdict:
    """Degenerate/invalid input must raise a contract error, fast."""
    base = dict(
        backend=backend.name,
        family=backend.family,
        case=case.name,
        category=case.category,
        check="raises",
        seed=seed,
    )
    try:
        _probe_under_watchdog(
            lambda: backend.counts(case.array, 1, seed), WATCHDOG_SECONDS
        )
    except _CONTRACT_ERRORS as exc:
        return Verdict(status="ok", detail=type(exc).__name__, **base)
    except TeamTimeoutError:
        return Verdict(
            status="violation",
            detail=f"hung for {WATCHDOG_SECONDS}s instead of raising",
            **base,
        )
    except BaseException as exc:  # noqa: BLE001 - classified, not swallowed
        return Verdict(
            status="violation",
            detail=f"raised {type(exc).__name__} ({exc}); expected "
            "DegenerateFitnessError/FitnessError/SelectionError",
            **base,
        )
    return Verdict(
        status="violation",
        detail="returned a selection from a wheel with no valid winner",
        **base,
    )


def _check_valid(
    backend: Backend,
    case: AdversarialCase,
    trials: int,
    seed: int,
    alpha: float,
) -> List[Verdict]:
    """Valid input: support-only winners, full totals, GOF for exact."""
    from repro.stats.gof import chi_square_gof

    base = dict(
        backend=backend.name,
        family=backend.family,
        case=case.name,
        category=case.category,
        seed=seed,
    )
    f = case.array
    try:
        with np.errstate(over="ignore", under="ignore", divide="ignore"):
            counts = backend.counts(f, trials, seed)
    except BaseException as exc:  # noqa: BLE001 - classified, not swallowed
        return [
            Verdict(
                check="selects",
                status="violation",
                detail=f"raised {type(exc).__name__} ({exc}) on a selectable wheel",
                **base,
            )
        ]
    verdicts: List[Verdict] = []
    counts = np.asarray(counts)
    off_support = counts.copy()
    off_support[case.support] = 0
    if int(off_support.sum()) != 0:
        bad = int(np.flatnonzero(off_support)[0])
        verdicts.append(
            Verdict(
                check="support",
                status="violation",
                detail=f"selected zero-fitness index {bad} "
                f"({int(off_support[bad])} of {trials} draws)",
                **base,
            )
        )
    else:
        verdicts.append(Verdict(check="support", status="ok", **base))
    if int(counts.sum()) != trials:
        verdicts.append(
            Verdict(
                check="total",
                status="violation",
                detail=f"histogram sums to {int(counts.sum())}, expected {trials}",
                **base,
            )
        )
    if backend.exact and len(case.support) > 1 and int(counts.sum()) == trials:
        try:
            res = chi_square_gof(counts, exact_probabilities(f))
            if res.reject(alpha):
                verdicts.append(
                    Verdict(
                        check="gof",
                        status="violation",
                        detail=f"chi-square p={res.p_value:.3g} < alpha={alpha:g} "
                        f"(stat={res.statistic:.2f}, dof={res.dof})",
                        **base,
                    )
                )
            else:
                verdicts.append(
                    Verdict(
                        check="gof",
                        status="ok",
                        detail=f"p={res.p_value:.3g}",
                        **base,
                    )
                )
        except ValueError as exc:
            verdicts.append(
                Verdict(check="gof", status="violation", detail=str(exc), **base)
            )
    return verdicts


def audit_backend_case(
    backend: Backend,
    case: AdversarialCase,
    trials: int,
    seed: int,
    alpha: float = DEFAULT_ALPHA,
) -> List[Verdict]:
    """All checks for one (backend, case) pair."""
    if case.category == CATEGORY_VALID:
        return _check_valid(backend, case, trials, seed, alpha)
    return [_check_degenerate(backend, case, seed)]


def _oracle_verdicts(
    cases: Iterable[AdversarialCase], trials: int, seed: int
) -> List[Verdict]:
    """Transform-equivalence and faithful-compilation replays."""
    verdicts: List[Verdict] = []
    for case in cases:
        if case.category != CATEGORY_VALID:
            continue
        replay = replay_transforms(case.array, trials, seed)
        base = dict(
            family="oracle",
            case=case.name,
            category=case.category,
            seed=seed,
        )
        if replay.agreed:
            decisive = int(replay.decisive.sum())
            verdicts.append(
                Verdict(
                    backend="oracle:transforms",
                    check="transform_equivalence",
                    status="ok",
                    detail=f"{decisive}/{trials} decisive trials agree bit-for-bit",
                    **base,
                )
            )
        else:
            first = int(replay.disagreements[0])
            picks = {k: int(v[first]) for k, v in replay.winners.items()}
            verdicts.append(
                Verdict(
                    backend="oracle:transforms",
                    check="transform_equivalence",
                    status="violation",
                    detail=f"decisive trial {first} disagrees: {picks}",
                    **base,
                )
            )
        for method in FAITHFUL_METHODS:
            diverged = check_faithful_compilation(case.array, method, trials, seed)
            verdicts.append(
                Verdict(
                    backend=f"oracle:faithful:{method}",
                    check="faithful_compile",
                    status="ok" if diverged is None else "violation",
                    detail=diverged or "bit-identical draws",
                    **base,
                )
            )
    return verdicts


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_audit(
    trials: int = 200,
    seed: int = 0,
    machine_trials: Optional[int] = None,
    alpha: float = DEFAULT_ALPHA,
    backends: Optional[List[Backend]] = None,
    cases: Optional[List[AdversarialCase]] = None,
) -> Dict[str, object]:
    """Run the full differential audit and assemble the JSON report.

    Parameters
    ----------
    trials:
        Draws per (vectorised backend, valid case) pair.
    seed:
        Master seed; every probe derives its own stream from it, and
        every verdict records the seed it ran with.
    machine_trials:
        Per-selection budget for the simulated machines (default:
        ``max(20, trials // 2)``, capped at ``trials``) — each of their
        trials is a full machine run, not a vectorised draw.
    alpha:
        Chi-square rejection level (see :data:`DEFAULT_ALPHA`).
    backends, cases:
        Override the audited backends / case suite (tests use this).
    """
    from repro.audit.report import build_report

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if machine_trials is None:
        machine_trials = min(trials, max(20, trials // 2))
    backends = iter_backends() if backends is None else backends
    cases = generate_cases(seed) if cases is None else cases
    verdicts: List[Verdict] = []
    for backend in backends:
        budget = machine_trials if backend.machine else trials
        for case in cases:
            verdicts.extend(audit_backend_case(backend, case, budget, seed, alpha))
    verdicts.extend(_oracle_verdicts(cases, trials, seed))
    return build_report(
        verdicts,
        meta={
            "trials": trials,
            "machine_trials": machine_trials,
            "seed": seed,
            "alpha": alpha,
            "n_backends": len(backends),
            "n_cases": len(cases),
        },
    )
