"""Adversarial fitness-vector generators for the differential audit.

Every case targets an edge of the input space where a selection backend
has historically misbehaved somewhere in the literature (or in this
repo's own history):

* all-zero wheels — the stochastic-acceptance accept loop could never
  terminate, Fenwick raised, key races returned arbitrary arg-maxes;
* single-survivor wheels — the only legal winner is one index;
* subnormal/huge mixtures — ``log(u)/f`` overflows, ``u**(1/f)``
  underflows, ``f * u`` underflows into ties with true zeros;
* long zero runs — searchsorted/prefix backends land on zero-width
  intervals at FP boundaries;
* ``k``-of-``n`` sparse support — the paper's ACO regime (k active
  cities out of n);
* near-tie mass splits — winners decided in the last few ulps, where
  monotone-equivalent transforms can round in opposite directions.

Cases are *deterministic in the seed* so any violation found by the
audit is reproducible from its recorded ``(case, seed)`` pair alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

__all__ = [
    "AdversarialCase",
    "CATEGORY_VALID",
    "CATEGORY_DEGENERATE",
    "CATEGORY_INVALID",
    "generate_cases",
    "valid_cases",
    "degenerate_cases",
    "invalid_cases",
    "edge_vectors",
]

#: The backend must select an index from the support, never NaN/inf.
CATEGORY_VALID = "valid"
#: The backend must raise ``DegenerateFitnessError`` (or a subclass of
#: the unified error contract) — never hang, never return an index.
CATEGORY_DEGENERATE = "degenerate"
#: Malformed input (negative/NaN/inf/empty/wrong shape): must raise.
CATEGORY_INVALID = "invalid"

#: Smallest positive subnormal double.
_TINY = 5e-324
#: Near the largest finite double (large enough to stress ``sum(f)``).
_HUGE = 1e308


@dataclass(frozen=True)
class AdversarialCase:
    """One named input vector plus the behaviour the contract demands."""

    #: Stable identifier used in reports and regression one-liners.
    name: str
    #: The raw fitness input (deliberately *not* validated).
    fitness: tuple
    #: One of the ``CATEGORY_*`` constants.
    category: str
    #: Human-oriented description of the edge being exercised.
    description: str = ""
    #: Input classes some backends legitimately cannot represent
    #: (e.g. per-item machine backends cap ``n``).
    tags: tuple = field(default=())

    @property
    def array(self) -> np.ndarray:
        """The fitness input as a float64 array (may violate contracts)."""
        return np.asarray(self.fitness, dtype=np.float64)

    @property
    def support(self) -> np.ndarray:
        """Indices a correct selection may return."""
        arr = self.array
        return np.flatnonzero(arr > 0.0) if arr.ndim == 1 else np.empty(0, np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdversarialCase({self.name!r}, n={len(self.fitness)}, {self.category})"


def _case(name, fitness, category, description, tags=()) -> AdversarialCase:
    return AdversarialCase(
        name=name,
        fitness=tuple(float(x) for x in fitness),
        category=category,
        description=description,
        tags=tuple(tags),
    )


# ----------------------------------------------------------------------
# Individual generators (each deterministic in its arguments)
# ----------------------------------------------------------------------
def all_zero(n: int = 8) -> AdversarialCase:
    """Every fitness zero: the degenerate wheel no backend may spin."""
    return _case(
        f"all_zero_n{n}",
        [0.0] * n,
        CATEGORY_DEGENERATE,
        "all-zero wheel; accept loops cannot terminate, races have no finite bid",
    )


def single_survivor(n: int = 9, pos: int | None = None) -> AdversarialCase:
    """One positive entry among zeros; the winner is forced."""
    pos = (n // 2) if pos is None else pos
    f = [0.0] * n
    f[pos] = 3.0
    return _case(
        f"single_survivor_n{n}_p{pos}",
        f,
        CATEGORY_VALID,
        f"only index {pos} may ever be selected",
    )


def subnormal_huge(n: int = 6) -> AdversarialCase:
    """Subnormal and near-max-double masses on one wheel.

    ``log(u)/f`` overflows for subnormal ``f``; ``u**(1/f)`` underflows;
    ``f*u`` underflows to 0 and previously tied with true zeros.
    """
    f = [0.0, _TINY, 1.0, _HUGE, _TINY * 2, 0.0][:n]
    return _case(
        f"subnormal_huge_n{len(f)}",
        f,
        CATEGORY_VALID,
        "subnormal + huge mixture; overflow/underflow in every key transform",
    )


def long_zero_run(n: int = 48, run: int = 40) -> AdversarialCase:
    """A long stretch of zeros between two positive items.

    Prefix-sum/searchsorted spins landing on the shared boundary of the
    zero-width intervals must skip the whole run.
    """
    f = [0.0] * n
    f[0] = 1.0
    f[min(run + 1, n - 1)] = 2.0
    return _case(
        f"long_zero_run_n{n}_r{run}",
        f,
        CATEGORY_VALID,
        "zero-width CDF intervals spanning a long run",
    )


def sparse_support(n: int = 64, k: int = 5, seed: int = 0) -> AdversarialCase:
    """``k`` active items out of ``n`` (the ACO late-construction regime)."""
    rng = np.random.default_rng(seed)
    f = np.zeros(n)
    idx = rng.choice(n, size=k, replace=False)
    f[idx] = rng.uniform(0.5, 4.0, size=k)
    return _case(
        f"sparse_k{k}_of_n{n}_s{seed}",
        f,
        CATEGORY_VALID,
        f"k={k} of n={n} support; zero entries must never win",
    )


def near_tie(n: int = 4, ulps: int = 1) -> AdversarialCase:
    """Masses split by a few ulps — winners decided at rounding precision."""
    base = 1.0 / 3.0
    other = base
    for _ in range(ulps):
        other = np.nextafter(other, 2.0)
    f = [base, other] * (n // 2)
    return _case(
        f"near_tie_n{n}_u{ulps}",
        f[:n],
        CATEGORY_VALID,
        f"masses differ by {ulps} ulp; exercises tie-breaking and FP margins",
    )


def uniform_wheel(n: int = 10) -> AdversarialCase:
    """All-equal masses — maximal entropy, every index equally likely."""
    return _case(
        f"uniform_n{n}", [2.5] * n, CATEGORY_VALID, "flat wheel, F_i = 1/n"
    )


def ramp_wheel(n: int = 10) -> AdversarialCase:
    """The paper's Table I shape ``f_i = i`` (with a zero at index 0)."""
    return _case(
        f"ramp_n{n}",
        list(range(n)),
        CATEGORY_VALID,
        "Table I ramp; index 0 has zero fitness",
    )


def skewed_wheel(n: int = 8, ratio: float = 1e6) -> AdversarialCase:
    """One dominant mass — stochastic acceptance's worst case (slow, not wrong)."""
    f = [1.0] * n
    f[-1] = ratio
    return _case(
        f"skewed_n{n}_r{ratio:g}",
        f,
        CATEGORY_VALID,
        "heavy skew; rejection samplers need many attempts",
        tags=("skewed",),
    )


def empty_wheel() -> AdversarialCase:
    """Zero-length input — must raise, never index."""
    return _case("empty", [], CATEGORY_INVALID, "empty fitness vector")


def negative_entry(n: int = 5) -> AdversarialCase:
    """A negative mass — physically meaningless, must raise."""
    f = [1.0] * n
    f[n // 2] = -1.0
    return _case(f"negative_n{n}", f, CATEGORY_INVALID, "negative fitness entry")


def nan_entry(n: int = 5) -> AdversarialCase:
    """A NaN mass — must raise, never propagate into keys."""
    f = [1.0] * n
    f[n // 2] = float("nan")
    return _case(f"nan_n{n}", f, CATEGORY_INVALID, "NaN fitness entry")


def inf_entry(n: int = 5) -> AdversarialCase:
    """An infinite mass — probabilities undefined, must raise."""
    f = [1.0] * n
    f[n // 2] = float("inf")
    return _case(f"inf_n{n}", f, CATEGORY_INVALID, "infinite fitness entry")


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def valid_cases(seed: int = 0) -> List[AdversarialCase]:
    """Selectable wheels a correct backend must draw from ``F_i`` on."""
    return [
        uniform_wheel(),
        ramp_wheel(),
        single_survivor(),
        subnormal_huge(),
        long_zero_run(),
        sparse_support(seed=seed),
        near_tie(),
        skewed_wheel(),
    ]


def degenerate_cases() -> List[AdversarialCase]:
    """Wheels with no selectable index: raise, never hang."""
    return [all_zero(1), all_zero(8), all_zero(64)]


def invalid_cases() -> List[AdversarialCase]:
    """Malformed inputs: raise before any selection work."""
    return [empty_wheel(), negative_entry(), nan_entry(), inf_entry()]


def generate_cases(seed: int = 0) -> List[AdversarialCase]:
    """The full deterministic audit suite for one seed."""
    return valid_cases(seed) + degenerate_cases() + invalid_cases()


def edge_vectors(seed: int = 0) -> Iterator[AdversarialCase]:
    """Alias used by the parametrised degenerate-wheel test suite."""
    return iter(generate_cases(seed))
