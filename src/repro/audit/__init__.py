"""Differential correctness audit across every selection backend.

``python -m repro audit`` drives every public selection entry point —
the registry methods, both compiled-engine kernel policies, the
PRAM/SIMT/message-passing machine models, the streaming selector, the
Fenwick sampler and the thread race — over a suite of adversarial
fitness vectors (:mod:`repro.audit.generators`), replays identical
uniforms through the three monotone-equivalent key transforms
(:mod:`repro.audit.oracle`), and emits a JSON report of per-backend
verdicts with the seed for every violation (:mod:`repro.audit.report`).

The contract enforced is uniform: valid input selects from the support
with the exact probabilities; degenerate or malformed input raises
``DegenerateFitnessError`` / ``FitnessError`` / ``SelectionError`` —
never a hang, never NaN, never a zero-fitness winner.
"""

from repro.audit.generators import (
    CATEGORY_DEGENERATE,
    CATEGORY_INVALID,
    CATEGORY_VALID,
    AdversarialCase,
    degenerate_cases,
    edge_vectors,
    generate_cases,
    invalid_cases,
    valid_cases,
)
from repro.audit.harness import (
    DEFAULT_ALPHA,
    Backend,
    Verdict,
    audit_backend_case,
    iter_backends,
    run_audit,
)
from repro.audit.oracle import (
    DECISIVE_ATOL,
    DECISIVE_RTOL,
    FAITHFUL_METHODS,
    TransformReplay,
    check_faithful_compilation,
    decisive_winner,
    replay_transforms,
)
from repro.audit.report import (
    REPORT_VERSION,
    build_report,
    render_report,
    validate_report,
)

__all__ = [
    "AdversarialCase",
    "CATEGORY_VALID",
    "CATEGORY_DEGENERATE",
    "CATEGORY_INVALID",
    "generate_cases",
    "valid_cases",
    "degenerate_cases",
    "invalid_cases",
    "edge_vectors",
    "Backend",
    "Verdict",
    "iter_backends",
    "audit_backend_case",
    "run_audit",
    "DEFAULT_ALPHA",
    "DECISIVE_RTOL",
    "DECISIVE_ATOL",
    "FAITHFUL_METHODS",
    "TransformReplay",
    "decisive_winner",
    "replay_transforms",
    "check_faithful_compilation",
    "REPORT_VERSION",
    "build_report",
    "validate_report",
    "render_report",
]
