"""Oracle replay: identical uniforms through every key formulation.

The paper's key ``log(u)/f``, the Gumbel-max key ``log f - log(-log u)``
and the Efraimidis–Spirakis key ``u**(1/f)`` are monotone transforms of
one another, so *in exact arithmetic* the same uniforms always produce
the same arg-max.  In floating point that guarantee holds only when the
winner is **decisive** — separated from the runner-up by more than the
rounding noise each transform can introduce.  When two keys agree to a
few ulps, ``log`` in one formulation can round up while the division in
another rounds down, legitimately flipping the arg-max (observed in the
wild by the property suite: ``f = [1e6, 1e6]``, uniforms a hair apart).

This module defines that margin once (:func:`decisive_winner`) and
provides the two replay checks the audit harness runs:

* :func:`replay_transforms` — same uniforms through all three exact
  transforms; decisive rows must agree bit-for-bit on the winner.
* :func:`check_faithful_compilation` — registry method vs its
  bit-faithful :class:`repro.engine.CompiledWheel` kernel from identical
  RNG state; *all* draws must match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.bidding import es_keys, gumbel_keys, log_bid_keys
from repro.core.fitness import validate_fitness
from repro.core.methods import get_method
from repro.engine.compiled import _FAITHFUL_KERNEL, CompiledWheel

__all__ = [
    "DECISIVE_RTOL",
    "DECISIVE_ATOL",
    "decisive_winner",
    "TransformReplay",
    "replay_transforms",
    "check_faithful_compilation",
    "FAITHFUL_METHODS",
]

#: Relative top-2 margin below which monotone equivalence is not
#: guaranteed in floating point.  A relative gap of ``eps`` in the log
#: keys maps to an *absolute* gap of ~``eps`` in Gumbel space (the
#: transform is ``-log(-k)``), where each key carries a few ulps
#: (~1e-13) of rounding noise; 1e-9 leaves four orders of headroom.
DECISIVE_RTOL = 1e-9

#: Absolute top-2 margin for the ES comparison: an absolute gap of
#: ``eps`` in the log keys maps to a *relative* gap of ~``eps`` in ES
#: space (the transform is ``exp``), so gaps below ~1 ulp of the ES key
#: can vanish under ``exp``.  1e-12 clears double precision by 4 orders.
DECISIVE_ATOL = 1e-12

#: Methods with a bit-faithful compiled kernel (replayed by the audit).
FAITHFUL_METHODS = tuple(sorted(_FAITHFUL_KERNEL))


def decisive_winner(
    keys: np.ndarray, *, rtol: float = DECISIVE_RTOL, atol: float = DECISIVE_ATOL
) -> np.ndarray:
    """Rows of a key matrix whose arg-max is beyond FP rounding doubt.

    Parameters
    ----------
    keys:
        ``(n,)`` or ``(rows, n)`` logarithmic-bid keys (``-inf`` marks
        non-participants).
    rtol, atol:
        Margin the winner must hold over the runner-up, relative to the
        larger magnitude of the pair / absolutely.

    Returns
    -------
    numpy.ndarray
        Boolean scalar (1-D input) or per-row mask.  A row with a single
        finite key is decisive; a row with no finite key is not.
    """
    arr = np.atleast_2d(np.asarray(keys, dtype=np.float64))
    rows, n = arr.shape
    out = np.zeros(rows, dtype=bool)
    if n == 1:
        out[:] = np.isfinite(arr[:, 0])
        return out if np.asarray(keys).ndim > 1 else out[0]
    top2 = -np.partition(-arr, 1, axis=1)[:, :2]  # descending top two
    k1, k2 = top2[:, 0], top2[:, 1]
    lone = np.isfinite(k1) & np.isneginf(k2)  # single finite participant
    both = np.isfinite(k1) & np.isfinite(k2)
    with np.errstate(invalid="ignore"):  # -inf - -inf rows; masked by `both`
        margin = k1 - k2
        scale = np.maximum(np.abs(k1), np.abs(k2))
        out[:] = lone | (both & (margin > np.maximum(atol, rtol * scale)))
    return out if np.asarray(keys).ndim > 1 else out[0]


@dataclass
class TransformReplay:
    """Outcome of one identical-uniforms replay across the transforms."""

    #: Winners per transform name, each shape ``(trials,)``.
    winners: Dict[str, np.ndarray]
    #: Per-trial decisive mask (from the logarithmic keys).
    decisive: np.ndarray
    #: Trials where decisive rows disagreed (should be empty).
    disagreements: np.ndarray

    @property
    def agreed(self) -> bool:
        """True iff every decisive trial picked one winner everywhere."""
        return self.disagreements.size == 0


def replay_transforms(
    fitness, trials: int, seed: int, *, uniforms: Optional[np.ndarray] = None
) -> TransformReplay:
    """Feed *identical* uniforms through all three exact key transforms.

    Draws one ``(trials, n)`` uniform block (or uses ``uniforms``) and
    asserts nothing itself — the harness turns ``disagreements`` into
    violations with the seed recorded for replay.
    """
    f = validate_fitness(fitness)
    if uniforms is None:
        # Reflect to (0, 1] exactly as the transforms' internal draw does.
        uniforms = 1.0 - np.random.default_rng(seed).random((trials, len(f)))
    u = np.asarray(uniforms, dtype=np.float64)
    keys_log = log_bid_keys(f, None, uniforms=u)
    winners = {
        "log_bidding": np.argmax(keys_log, axis=1),
        "gumbel": np.argmax(gumbel_keys(f, None, uniforms=u), axis=1),
        "efraimidis_spirakis": np.argmax(es_keys(f, None, uniforms=u), axis=1),
    }
    decisive = np.atleast_1d(decisive_winner(keys_log))
    ref = winners["log_bidding"]
    mismatch = np.zeros(len(ref), dtype=bool)
    for name, w in winners.items():
        if name != "log_bidding":
            mismatch |= w != ref
    return TransformReplay(
        winners=winners,
        decisive=decisive,
        disagreements=np.flatnonzero(mismatch & decisive),
    )


def check_faithful_compilation(
    fitness, method: str, trials: int, seed: int
) -> Optional[str]:
    """Registry draws vs the bit-faithful compiled kernel, same RNG state.

    Returns ``None`` on bit-identical agreement, else a short description
    of the first divergence (draw index and the two winners).
    """
    f = validate_fitness(fitness)
    registry = get_method(method).select_many(f, np.random.default_rng(seed), trials)
    compiled = CompiledWheel(f, method, kernel="faithful").select_many(
        trials, rng=np.random.default_rng(seed)
    )
    if np.array_equal(registry, compiled):
        return None
    first = int(np.flatnonzero(registry != compiled)[0])
    return (
        f"faithful kernel diverged from registry {method!r} at draw {first}: "
        f"registry={int(registry[first])} compiled={int(compiled[first])}"
    )
