"""Audit report assembly, validation and human-readable rendering.

The report is a plain JSON-able dict (schema below) so the CLI can dump
it with ``--json`` / ``--output`` and the CI smoke job can assert on it
without importing anything beyond :mod:`json`:

.. code-block:: python

    {
      "version": 1,
      "kind": "audit",
      "meta": {"trials": ..., "machine_trials": ..., "seed": ...,
               "alpha": ..., "n_backends": ..., "n_cases": ...},
      "verdicts": [{"backend", "family", "case", "category",
                    "check", "status", "detail", "seed"}, ...],
      "violations": [...subset of verdicts with status == "violation"...],
      "summary": {"checks": N, "ok": N, "violations": N, "skipped": N,
                  "by_family": {...}, "passed": bool},
    }

Every violation entry carries the case name and seed, so reproducing it
is one call: ``audit_backend_case(backend, case, trials, seed)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

__all__ = ["REPORT_VERSION", "build_report", "validate_report", "render_report"]

REPORT_VERSION = 1


def build_report(
    verdicts: Iterable["Verdict"], meta: Mapping[str, object]
) -> Dict[str, object]:
    """Assemble the JSON-able audit report from harness verdicts."""
    rows = [v.to_dict() for v in verdicts]
    violations = [r for r in rows if r["status"] == "violation"]
    by_family: Dict[str, Dict[str, int]] = {}
    for r in rows:
        fam = by_family.setdefault(
            str(r["family"]), {"checks": 0, "violations": 0}
        )
        fam["checks"] += 1
        if r["status"] == "violation":
            fam["violations"] += 1
    return {
        "version": REPORT_VERSION,
        "kind": "audit",
        "meta": dict(meta),
        "verdicts": rows,
        "violations": violations,
        "summary": {
            "checks": len(rows),
            "ok": sum(1 for r in rows if r["status"] == "ok"),
            "violations": len(violations),
            "skipped": sum(1 for r in rows if r["status"] == "skipped"),
            "by_family": by_family,
            "passed": not violations,
        },
    }


def validate_report(report: Mapping[str, object]) -> None:
    """Raise ``ValueError`` if ``report`` does not follow the schema."""
    for key in ("version", "kind", "meta", "verdicts", "violations", "summary"):
        if key not in report:
            raise ValueError(f"audit report missing key {key!r}")
    if report["kind"] != "audit":
        raise ValueError(f"not an audit report: kind={report['kind']!r}")
    if report["version"] != REPORT_VERSION:
        raise ValueError(f"unsupported audit report version {report['version']!r}")
    summary = report["summary"]
    if not isinstance(summary, Mapping) or "passed" not in summary:
        raise ValueError("audit summary missing 'passed'")
    required = {"backend", "family", "case", "category", "check", "status", "seed"}
    for row in report["verdicts"]:  # type: ignore[union-attr]
        missing = required - set(row)
        if missing:
            raise ValueError(f"verdict missing fields {sorted(missing)}: {row}")
        if row["status"] not in ("ok", "violation", "skipped"):
            raise ValueError(f"verdict has unknown status {row['status']!r}")


def render_report(report: Mapping[str, object]) -> str:
    """Terminal-oriented summary: one line per family, then violations."""
    validate_report(report)
    meta = report["meta"]
    summary = report["summary"]
    lines: List[str] = [
        "degenerate-wheel audit "
        f"(trials={meta.get('trials')}, machine_trials={meta.get('machine_trials')}, "
        f"seed={meta.get('seed')}, alpha={meta.get('alpha')})",
        f"backends={meta.get('n_backends')} cases={meta.get('n_cases')} "
        f"checks={summary['checks']}",
        "",
        f"{'family':<10} {'checks':>7} {'violations':>11}",
    ]
    for family, stats in sorted(summary["by_family"].items()):  # type: ignore[union-attr]
        lines.append(
            f"{family:<10} {stats['checks']:>7} {stats['violations']:>11}"
        )
    violations = report["violations"]
    if violations:
        lines.append("")
        lines.append(f"VIOLATIONS ({len(violations)}):")
        for row in violations:  # type: ignore[union-attr]
            lines.append(
                f"  {row['backend']} / {row['case']} [{row['check']}] "
                f"seed={row['seed']}: {row['detail']}"
            )
        lines.append("")
        lines.append("audit FAILED")
    else:
        lines.append("")
        lines.append("audit PASSED: zero violations")
    return "\n".join(lines)
