"""repro — Logarithmic Random Bidding for Parallel Roulette Wheel Selection.

A full reproduction of Nakano (IPPS 2024): the logarithmic random bidding
selection rule, its CRCW-PRAM O(log k) max race, the prefix-sum and
independent-roulette baselines, a step-exact PRAM simulator, from-scratch
PRNGs (incl. the paper's Mersenne Twister), exact bias analytics for the
baseline, and the ant-colony TSP / vertex-coloring applications that
motivate the method.

Quick start::

    >>> import repro
    >>> repro.select([0, 1, 2, 3], rng=42)          # Pr[i] = i/6, exact
    >>> repro.select_many([5, 1, 4], 1000, rng=0)   # vectorised batch

See README.md for the architecture tour and ``python -m repro --list``
for the paper-reproduction experiments.
"""

from repro._version import __version__
from repro.core import (
    FitnessVector,
    RouletteWheel,
    available_methods,
    exact_methods,
    exact_probabilities,
    get_method,
    sample_without_replacement,
    select,
    select_many,
    selection_counts,
    streaming_select,
    StreamingSelector,
)
from repro import (
    aco,
    audit,
    bench,
    core,
    engine,
    msg,
    parallel,
    pram,
    rng,
    service,
    simt,
    stats,
)

__all__ = [
    "__version__",
    "select",
    "select_many",
    "selection_counts",
    "sample_without_replacement",
    "streaming_select",
    "StreamingSelector",
    "RouletteWheel",
    "FitnessVector",
    "exact_probabilities",
    "available_methods",
    "exact_methods",
    "get_method",
    "core",
    "engine",
    "pram",
    "parallel",
    "msg",
    "simt",
    "rng",
    "stats",
    "aco",
    "audit",
    "bench",
    "service",
]
