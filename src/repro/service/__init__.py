"""Async selection service: micro-batching, wheel cache, backpressure.

The serving layer over :mod:`repro.engine`: a content-addressed
:class:`WheelRegistry` caches compiled wheels, a
:class:`MicroBatchScheduler` coalesces concurrent ``draw`` requests into
single batched kernel calls without changing any response bit (each
request draws from its own derived substream), and
:class:`SelectionService` fronts both with a JSON-lines protocol over
TCP or stdio (``python -m repro serve``).  ``python -m repro
bench-serve`` records the batched-vs-naive throughput gate together with
the coalescing-determinism certificate and the overload-shedding probe.
"""

from repro.service.loadgen import (
    BENCH_SERVE_SCHEMA,
    render_bench_serve,
    run_bench_serve,
    run_closed_loop,
    run_open_loop,
    validate_bench_serve,
    write_bench_serve,
)
from repro.service.metrics import BatchSizeHistogram, LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_response,
    error_response,
    ok_response,
    raise_structured,
)
from repro.service.registry import (
    DEFAULT_MAX_WHEELS,
    WheelRegistry,
    digest_key,
    wheel_digest,
)
from repro.service.scheduler import BatchConfig, MicroBatchScheduler, NaiveScheduler
from repro.service.server import (
    SelectionService,
    serve_stdio,
    serve_tcp,
    start_tcp_server,
)

__all__ = [
    "BENCH_SERVE_SCHEMA",
    "BatchConfig",
    "BatchSizeHistogram",
    "DEFAULT_MAX_WHEELS",
    "LatencyHistogram",
    "MicroBatchScheduler",
    "NaiveScheduler",
    "PROTOCOL_VERSION",
    "SelectionService",
    "ServiceMetrics",
    "WheelRegistry",
    "decode_request",
    "digest_key",
    "encode_response",
    "error_response",
    "ok_response",
    "raise_structured",
    "render_bench_serve",
    "run_bench_serve",
    "run_closed_loop",
    "run_open_loop",
    "serve_stdio",
    "serve_tcp",
    "start_tcp_server",
    "validate_bench_serve",
    "wheel_digest",
    "write_bench_serve",
]
