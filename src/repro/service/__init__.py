"""Async selection service: micro-batching, wheel cache, backpressure.

The serving layer over :mod:`repro.engine`: a content-addressed
:class:`WheelRegistry` caches compiled wheels, a
:class:`MicroBatchScheduler` coalesces concurrent ``draw`` requests into
single batched kernel calls without changing any response bit (each
request draws from its own derived substream), and
:class:`SelectionService` fronts both with a dual-protocol wire —
length-prefixed binary frames (:mod:`repro.service.frames`) on the hot
path, JSON-lines as the negotiated fallback and the stdio scripting
interface (``python -m repro serve``).

``python -m repro serve --workers N`` swaps in the
:class:`ClusterService`: N shard processes each running the kernel
executor, wheels routed by consistent hash (:class:`HashRing`), compiled
artifacts deduped through the shared-memory
:class:`~repro.service.shm.SharedWheelStore` — with byte-identical
responses at any pool size.  ``python -m repro bench-serve`` records the
batched-vs-naive throughput gate, the frames-vs-JSON protocol gate, the
cluster scaling sweep, and the coalescing + per-shard determinism
certificates.
"""

from repro.service.cluster import DEFAULT_VNODES, ClusterService, HashRing
from repro.service.frames import FRAMES_VERSION, hello_frame, read_frame
from repro.service.loadgen import (
    BENCH_SERVE_SCHEMA,
    render_bench_serve,
    run_bench_serve,
    run_closed_loop,
    run_open_loop,
    run_tcp_load,
    validate_bench_serve,
    write_bench_serve,
)
from repro.service.metrics import BatchSizeHistogram, LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_response,
    error_response,
    ok_response,
    raise_structured,
)
from repro.service.registry import (
    DEFAULT_MAX_WHEELS,
    WheelRegistry,
    digest_key,
    wheel_digest,
)
from repro.service.scheduler import BatchConfig, MicroBatchScheduler, NaiveScheduler
from repro.service.server import (
    SelectionService,
    serve_stdio,
    serve_tcp,
    start_tcp_server,
)
from repro.service.shm import SharedWheelStore

__all__ = [
    "BENCH_SERVE_SCHEMA",
    "BatchConfig",
    "BatchSizeHistogram",
    "ClusterService",
    "DEFAULT_MAX_WHEELS",
    "DEFAULT_VNODES",
    "FRAMES_VERSION",
    "HashRing",
    "LatencyHistogram",
    "MicroBatchScheduler",
    "NaiveScheduler",
    "PROTOCOL_VERSION",
    "SelectionService",
    "ServiceMetrics",
    "SharedWheelStore",
    "WheelRegistry",
    "decode_request",
    "digest_key",
    "encode_response",
    "error_response",
    "hello_frame",
    "ok_response",
    "raise_structured",
    "read_frame",
    "render_bench_serve",
    "run_bench_serve",
    "run_closed_loop",
    "run_open_loop",
    "run_tcp_load",
    "serve_stdio",
    "serve_tcp",
    "start_tcp_server",
    "validate_bench_serve",
    "wheel_digest",
    "write_bench_serve",
]
