"""Service observability: counters, gauges, latency and batch histograms.

Everything here is allocation-light and JSON-able by construction so the
``metrics`` protocol op can snapshot the live service without pausing
it.  The latency histogram is log-spaced (≈11% bucket growth) over
1 µs .. 16 s — the standard trick for computing p50/p99 in O(1) memory
under sustained load instead of retaining per-request samples.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

__all__ = ["LatencyHistogram", "BatchSizeHistogram", "ServiceMetrics"]


class LatencyHistogram:
    """Fixed-bucket log-spaced histogram of durations in seconds.

    Bucket ``i`` covers ``[base * growth**i, base * growth**(i+1))``;
    quantiles are read by bucket interpolation, accurate to one bucket
    width (≈11% relative error — plenty for p50/p99 reporting).
    """

    __slots__ = ("base", "growth", "_counts", "_count", "_sum", "_max")

    #: Number of buckets: 1 µs growing 11%/bucket covers past 16 s.
    BUCKETS = 160

    def __init__(self, base: float = 1e-6, growth: float = 1.11) -> None:
        self.base = base
        self.growth = growth
        self._counts: List[int] = [0] * self.BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        if seconds < 0.0:
            seconds = 0.0
        if seconds <= self.base:
            idx = 0
        else:
            idx = min(
                self.BUCKETS - 1,
                int(math.log(seconds / self.base) / math.log(self.growth)) + 1,
            )
        self._counts[idx] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._count

    def quantile(self, q: float) -> float:
        """Approximate the ``q`` quantile (0 <= q <= 1) in seconds.

        The estimate is a bucket upper edge, clamped into the observed
        range: empty leading buckets are skipped (so ``quantile(0.0)``
        lands on the first bucket that actually holds an observation,
        not on ``base``) and the edge can never exceed the recorded
        maximum (a single 2 µs observation reports p50 == max == 2 µs,
        not its bucket's 2.076 µs upper edge).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cum = 0
        for idx, c in enumerate(self._counts):
            if c == 0:
                continue
            cum += c
            if cum >= target:
                # Upper edge of the bucket: a conservative estimate,
                # clamped so it stays inside the observed range.
                return min(self.base * self.growth**idx, self._max)
        return self._max

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary (microseconds, the service's natural unit)."""
        mean = self._sum / self._count if self._count else 0.0
        return {
            "count": self._count,
            "mean_us": mean * 1e6,
            "p50_us": self.quantile(0.50) * 1e6,
            "p90_us": self.quantile(0.90) * 1e6,
            "p99_us": self.quantile(0.99) * 1e6,
            "max_us": self._max * 1e6,
        }

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Portable full state (for merging across load-gen processes)."""
        return {
            "base": self.base,
            "growth": self.growth,
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Merging is exact for every statistic the snapshot reports
        (bucket counts, totals, max) — the property that lets ``--procs``
        client processes each record latencies locally and still produce
        one faithful service-wide distribution.
        """
        if state["base"] != self.base or state["growth"] != self.growth:
            raise ValueError("cannot merge histograms with different bucketing")
        counts = state["counts"]
        if len(counts) != len(self._counts):
            # zip() would silently drop tail buckets and un-balance
            # count vs sum(counts); refuse instead.
            raise ValueError(
                f"cannot merge {len(counts)}-bucket state into "
                f"{len(self._counts)}-bucket histogram"
            )
        for idx, c in enumerate(counts):
            self._counts[idx] += c
        self._count += state["count"]
        self._sum += state["sum"]
        if state["max"] > self._max:
            self._max = state["max"]


class BatchSizeHistogram:
    """Exact distribution of flushed batch sizes (requests per kernel call)."""

    __slots__ = ("_counts", "_batches", "_requests", "_max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._batches = 0
        self._requests = 0
        self._max = 0

    def observe(self, size: int) -> None:
        """Record one flush of ``size`` coalesced requests."""
        self._counts[size] = self._counts.get(size, 0) + 1
        self._batches += 1
        self._requests += size
        if size > self._max:
            self._max = size

    @property
    def batches(self) -> int:
        """Kernel invocations so far."""
        return self._batches

    @property
    def requests(self) -> int:
        """Requests served across all batches (sum of observed sizes).

        Together with :attr:`batches` this is the running total the
        online delay controller reads as window deltas — mean batch
        size over the last N flushes without retaining per-flush state.
        """
        return self._requests

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary plus the exact size -> count map."""
        mean = self._requests / self._batches if self._batches else 0.0
        return {
            "batches": self._batches,
            "requests": self._requests,
            "mean_size": mean,
            "max_size": self._max,
            "sizes": {str(k): v for k, v in sorted(self._counts.items())},
        }

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Portable full state (for merging across load-gen processes)."""
        return {
            "counts": {str(k): v for k, v in self._counts.items()},
            "batches": self._batches,
            "requests": self._requests,
            "max": self._max,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Exact for every snapshot field, including size keys only the
        other side observed (the distribution is a sparse map, so there
        is no bucket-shape precondition to check).
        """
        for key, c in state["counts"].items():
            size = int(key)
            self._counts[size] = self._counts.get(size, 0) + c
        self._batches += state["batches"]
        self._requests += state["requests"]
        if state["max"] > self._max:
            self._max = state["max"]


class ServiceMetrics:
    """The selection service's metric set, snapshot as one JSON object.

    Counters cover the request lifecycle (submitted / ok / error / shed /
    expired), gauges track instantaneous queue depth against its bound,
    and the two histograms expose the scheduler's behaviour: response
    latency and how well concurrent requests coalesce.
    """

    __slots__ = (
        "requests_total",
        "draws_total",
        "ok_total",
        "error_total",
        "shed_total",
        "expired_total",
        "draining_total",
        "updates_total",
        "update_indices_total",
        "queue_depth",
        "queue_peak",
        "retunes_total",
        "tuned_delay_us",
        "latency",
        "update_latency",
        "batch_sizes",
    )

    def __init__(self) -> None:
        self.requests_total = 0
        self.draws_total = 0
        self.ok_total = 0
        self.error_total = 0
        self.shed_total = 0
        self.expired_total = 0
        self.draining_total = 0
        self.updates_total = 0
        self.update_indices_total = 0
        self.queue_depth = 0
        self.queue_peak = 0
        self.retunes_total = 0
        self.tuned_delay_us = 0.0
        self.latency = LatencyHistogram()
        self.update_latency = LatencyHistogram()
        self.batch_sizes = BatchSizeHistogram()

    # ------------------------------------------------------------------
    def enqueued(self, n_draws: int) -> None:
        """A request passed admission control."""
        self.requests_total += 1
        self.queue_depth += 1
        if self.queue_depth > self.queue_peak:
            self.queue_peak = self.queue_depth
        self.draws_total += n_draws

    def dequeued(self) -> None:
        """A request left the queue (served, expired, or failed)."""
        self.queue_depth -= 1

    def served(self, latency_s: float) -> None:
        """A request completed successfully."""
        self.ok_total += 1
        self.latency.observe(latency_s)

    def shed(self) -> None:
        """A request was refused at admission (queue bound reached)."""
        self.shed_total += 1

    def expired(self) -> None:
        """A queued request's deadline passed before its batch ran."""
        self.expired_total += 1

    def drained(self) -> None:
        """A request was refused because the service is draining."""
        self.draining_total += 1

    def errored(self) -> None:
        """A request failed with a structured error."""
        self.error_total += 1

    def updated(self, n_indices: int, latency_s: float) -> None:
        """A delta update minted (or re-hit) a wheel version."""
        self.updates_total += 1
        self.update_indices_total += n_indices
        self.update_latency.observe(latency_s)

    def retuned(self, delay_us: float) -> None:
        """The online controller adjusted the coalescing delay."""
        self.retunes_total += 1
        self.tuned_delay_us = delay_us

    # ------------------------------------------------------------------
    def snapshot(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One JSON-able view of every metric; ``extra`` is merged in."""
        out: Dict[str, Any] = {
            "requests_total": self.requests_total,
            "draws_total": self.draws_total,
            "ok_total": self.ok_total,
            "error_total": self.error_total,
            "shed_total": self.shed_total,
            "expired_total": self.expired_total,
            "draining_total": self.draining_total,
            "updates_total": self.updates_total,
            "update_indices_total": self.update_indices_total,
            "queue_depth": self.queue_depth,
            "queue_peak": self.queue_peak,
            "retunes_total": self.retunes_total,
            "tuned_delay_us": self.tuned_delay_us,
            "latency": self.latency.snapshot(),
            "update_latency": self.update_latency.snapshot(),
            "batch_sizes": self.batch_sizes.snapshot(),
        }
        if extra:
            out.update(extra)
        return out
