"""Sharded multi-core serving cluster: process-pool kernel executors.

One asyncio front end, N worker processes.  Each worker runs the PR 5
kernel executor — a private :class:`~repro.service.registry.WheelRegistry`
plus :class:`~repro.service.scheduler.MicroBatchScheduler` on its own
event loop — so draws for a wheel batch densely on the core that owns
it while the front end only routes, frames, and correlates.

The three structural pieces:

* **Consistent-hash routing** (:class:`HashRing`): every ``wheel_id``
  maps to exactly one shard, so a wheel compiles on one worker and all
  its concurrent draws coalesce there instead of diluting across the
  pool.  Virtual nodes keep the assignment balanced, and changing the
  worker count only remaps the keys the ring says must move.
* **Shared compiled-wheel store**
  (:class:`~repro.service.shm.SharedWheelStore`): workers dedupe
  compilation through a write-once blob store of
  ``CompiledWheel.to_bytes`` exports living in shared memory.
* **Determinism per shard**: a request's draws are the pure function
  ``request_stream(service_seed, wheel_key, request_seed)`` of data that
  never depends on which worker executes or how requests coalesce — so
  a 1-worker and an 8-worker cluster return *byte-identical* responses
  for the same ``(wheel_id, request seed)``.  ``bench-serve`` records
  this as the per-shard determinism certificate.

Graceful drain: :meth:`ClusterService.drain` flips the service into
``draining`` (new frames get the typed :class:`ServiceDrainingError`
response), waits for every in-flight request to complete, then flushes
and stops each worker — no accepted request is ever lost.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import multiprocessing as mp
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ServiceDrainingError, ServiceError
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    STRUCTURED_ERRORS,
    error_response,
    ok_response,
)
from repro.service.registry import (
    DEFAULT_MAX_WHEELS,
    WheelRegistry,
    base_id,
    wheel_digest,
)
from repro.service.scheduler import BatchConfig, MicroBatchScheduler
from repro.service.shm import SharedWheelStore

__all__ = ["HashRing", "ClusterService", "DEFAULT_VNODES"]

#: Virtual nodes per shard; 64 keeps the max/mean shard load within a
#: few percent for the wheel-count scales the registry holds.
DEFAULT_VNODES = 64


def _hash_point(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping wheel ids to shard indices.

    The classic guarantee: growing the pool from N to N+1 workers moves
    onto the new shard only the keys whose ring arc it takes over —
    every other wheel keeps its owner (and its warm compiled artifact).
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.shards = int(shards)
        self.vnodes = int(vnodes)
        points = sorted(
            (_hash_point(f"shard-{s}/vnode-{v}"), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._keys = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def lookup(self, wheel_id: str) -> int:
        """The shard owning ``wheel_id`` (stable across processes/runs)."""
        idx = bisect.bisect_right(self._keys, _hash_point(wheel_id))
        return self._owners[idx % len(self._owners)]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(
    conn,
    shard_id: int,
    seed: int,
    config: Optional[BatchConfig],
    max_wheels: int,
    policy: str,
    store_path: Optional[str],
) -> None:
    """Entry point of one shard process (must stay importable for spawn)."""
    try:
        asyncio.run(
            _worker_loop(conn, shard_id, seed, config, max_wheels, policy, store_path)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


async def _worker_loop(
    conn,
    shard_id: int,
    seed: int,
    config: Optional[BatchConfig],
    max_wheels: int,
    policy: str,
    store_path: Optional[str],
) -> None:
    """Receive commands, serve them through the shard's own scheduler.

    Concurrency model: a pump thread blocks on the pipe and hands each
    command to the event loop, where it becomes a task awaiting
    ``scheduler.draw`` — so commands arriving back-to-back coalesce in
    the shard's micro-batcher exactly as concurrent TCP clients do in a
    single-process service.
    """
    store = SharedWheelStore(path=store_path) if store_path else None
    metrics = ServiceMetrics()
    registry = WheelRegistry(max_wheels=max_wheels, policy=policy, store=store)
    scheduler = MicroBatchScheduler(registry, config, seed=seed, metrics=metrics)
    loop = asyncio.get_running_loop()
    inbox: "asyncio.Queue" = asyncio.Queue()

    def pump() -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                msg = None
            try:
                loop.call_soon_threadsafe(inbox.put_nowait, msg)
            except RuntimeError:  # pragma: no cover - loop already gone
                return
            if msg is None or msg[0] == "stop":
                return

    threading.Thread(target=pump, name=f"shard{shard_id}-pump", daemon=True).start()

    tasks: set = set()

    async def serve_one(msg) -> None:
        op, tag = msg[0], msg[1]
        try:
            if op == "draw":
                _, _, wheel_id, n, req_seed, deadline_us = msg
                draws = await scheduler.draw(
                    wheel_id, n, seed=req_seed, deadline_us=deadline_us
                )
                conn.send(("ok", tag, draws))
            elif op == "register":
                _, _, values, method, reg_policy, backend = msg
                wheel_id, cached = registry.register(
                    values, method=method, policy=reg_policy, backend=backend
                )
                conn.send(("ok", tag, {"wheel": wheel_id, "cached": cached}))
            elif op == "update":
                _, _, wheel_id, indices, values = msg
                new_id, info = await scheduler.update(wheel_id, indices, values)
                conn.send(("ok", tag, {"wheel": new_id, **info}))
            elif op == "stats":
                snapshot = metrics.snapshot(
                    extra={
                        "shard": shard_id,
                        "queued": scheduler.queued,
                        "registry": registry.stats(),
                    }
                )
                conn.send(("ok", tag, snapshot))
            else:
                conn.send(("err", tag, "ProtocolError", f"unknown worker op {op!r}"))
        except BaseException as exc:  # noqa: BLE001 - answered, not raised
            conn.send(("err", tag, type(exc).__name__, str(exc)))

    while True:
        msg = await inbox.get()
        if msg is None:
            break
        if msg[0] == "stop":
            # Flush in-flight micro-batches, let their reply tasks run,
            # then acknowledge — the parent holds the drain barrier on
            # this ack, which is what makes shutdown lossless.
            await scheduler.close()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                conn.send(("ok", msg[1], {"shard": shard_id}))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        task = loop.create_task(serve_one(msg))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if store is not None:
        store.close()


# ----------------------------------------------------------------------
# Front end
# ----------------------------------------------------------------------


class _Shard:
    """Parent-side handle on one worker: pipe, process, in-flight map."""

    __slots__ = ("index", "conn", "proc", "outstanding", "routed", "reader")

    def __init__(self, index: int, conn, proc) -> None:
        self.index = index
        self.conn = conn
        self.proc = proc
        self.outstanding: Dict[int, "asyncio.Future"] = {}
        self.routed = 0
        self.reader: Optional[threading.Thread] = None


class ClusterService:
    """The sharded, multi-process drop-in for :class:`SelectionService`.

    Exposes the same transport-neutral ``handle_request`` surface, so
    every transport (binary frames, JSON-lines TCP, stdio) works over a
    cluster unchanged.  Construct it *before* any event loop is running
    (workers are forked/spawned in ``__init__``); the reader threads
    attach lazily to the loop of the first served request.

    Parameters
    ----------
    workers:
        Shard processes (>= 1).  ``workers=1`` is the degenerate cluster
        the determinism certificate compares larger pools against.
    seed:
        Service master seed, passed verbatim to every shard — the reason
        any pool size answers identically.
    config / max_wheels / policy:
        Per-shard scheduler and registry knobs (as in PR 5).
    vnodes:
        Virtual nodes per shard on the routing ring.
    start_method:
        multiprocessing start method (default: ``fork`` when available).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        seed: int = 0,
        config: Optional[BatchConfig] = None,
        max_wheels: int = DEFAULT_MAX_WHEELS,
        policy: str = "auto",
        vnodes: int = DEFAULT_VNODES,
        start_method: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers)
        self.seed = int(seed)
        self.policy = str(policy)
        self.config = config or BatchConfig()
        self.metrics = ServiceMetrics()
        self.ring = HashRing(self.workers, vnodes)
        self.store = SharedWheelStore()
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self._shards: List[_Shard] = []
        self._tag = 0
        self._request_counter = 0
        self._draining = False
        self._closed = False
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        try:
            for index in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        index,
                        self.seed,
                        self.config,
                        max_wheels,
                        self.policy,
                        self.store.path,
                    ),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._shards.append(_Shard(index, parent_conn, proc))
        except BaseException:
            self._terminate()
            raise

    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        """Attach reader threads to the running loop (idempotent)."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ServiceError(
                "ClusterService is bound to the event loop of its first "
                "request; serve it from one loop"
            )
        for shard in self._shards:
            if shard.reader is None:
                shard.reader = threading.Thread(
                    target=self._read_replies,
                    args=(shard, loop),
                    name=f"shard{shard.index}-replies",
                    daemon=True,
                )
                shard.reader.start()

    def _read_replies(self, shard: _Shard, loop) -> None:
        while True:
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                break
            try:
                loop.call_soon_threadsafe(self._resolve, shard, msg)
            except RuntimeError:  # pragma: no cover - loop closed at exit
                break

    def _resolve(self, shard: _Shard, msg) -> None:
        kind, tag = msg[0], msg[1]
        future = shard.outstanding.pop(tag, None)
        if future is None or future.done():  # pragma: no cover - late reply
            return
        if kind == "ok":
            future.set_result(msg[2])
        else:
            name, message = msg[2], msg[3]
            exc_type = STRUCTURED_ERRORS.get(name, ServiceError)
            future.set_exception(exc_type(message))

    async def _call(self, shard: _Shard, op: str, *payload: Any) -> Any:
        self._ensure_started()
        self._tag += 1
        tag = self._tag
        future = asyncio.get_running_loop().create_future()
        shard.outstanding[tag] = future
        try:
            shard.conn.send((op, tag, *payload))
        except BaseException:
            shard.outstanding.pop(tag, None)
            raise
        return await future

    def _shard_for(self, wheel_id: str) -> _Shard:
        # Route by the *root* id: every version of a wheel (its delta
        # chain) lives on the shard that owns the root, so an UPDATE and
        # the draws against the id it mints coalesce on one worker.
        shard = self._shards[self.ring.lookup(base_id(wheel_id))]
        shard.routed += 1
        return shard

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    async def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one decoded request dict.  Never raises."""
        request_id = request.get("id")
        try:
            op = request["op"]
            if op == "ping":
                return ok_response(
                    request_id, protocol=PROTOCOL_VERSION, workers=self.workers
                )
            if op == "metrics":
                return ok_response(request_id, metrics=await self._metrics())
            if op == "stats":
                return ok_response(request_id, stats=await self.stats())
            if self._draining or self._closed:
                self.metrics.drained()
                raise ServiceDrainingError(
                    "service is draining; retry against another replica"
                )
            if op == "register":
                return await self._register(request, request_id)
            if op == "update":
                return await self._update(request, request_id)
            # op == "draw" (decode_request admits nothing else)
            return await self._draw(request, request_id)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc, request_id)

    async def handle_line(self, line: str) -> Dict[str, Any]:
        """Decode, dispatch, and answer one JSON wire line.  Never raises."""
        from repro.service.protocol import decode_request

        try:
            request = decode_request(line)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc)
        return await self.handle_request(request)

    async def _register(self, request: Dict[str, Any], request_id) -> Dict[str, Any]:
        method = request.get("method", "log_bidding")
        policy = request.get("policy") or self.policy
        backend = request.get("backend") or "compiled"
        values = np.ascontiguousarray(
            np.asarray(request["fitness"], dtype=np.float64)
        )
        # The content address is computed front-side purely to *route*;
        # the owning worker re-derives it inside its registry (ids are
        # position-free, so both derivations agree by construction).
        # The acceptance backend pins its method/policy tokens, so the
        # routing digest must mirror the registry's pinning exactly.
        if backend == "stochastic_acceptance" and method != "independent":
            wheel_id = wheel_digest(values, "stochastic_acceptance", "sa")
        else:
            wheel_id = wheel_digest(values, method, policy)
        shard = self._shard_for(wheel_id)
        reply = await self._call(shard, "register", values, method, policy, backend)
        return ok_response(request_id, **reply)

    async def _update(self, request: Dict[str, Any], request_id) -> Dict[str, Any]:
        wheel_id = request["wheel"]
        indices = np.ascontiguousarray(np.asarray(request["indices"], dtype=np.int64))
        values = np.ascontiguousarray(np.asarray(request["values"], dtype=np.float64))
        shard = self._shard_for(wheel_id)
        start = time.monotonic()
        reply = await self._call(shard, "update", wheel_id, indices, values)
        self.metrics.updated(int(indices.size), time.monotonic() - start)
        return ok_response(request_id, **reply)

    async def _draw(self, request: Dict[str, Any], request_id) -> Dict[str, Any]:
        wheel_id = request["wheel"]
        n = int(request.get("n", 1))
        seed = request.get("seed")
        if seed is None:
            # Auto-seeds are assigned centrally (front-end arrival
            # order), never per worker — so the draw stream for a fixed
            # arrival order is independent of the pool size.
            seed = self._request_counter
            self._request_counter += 1
        shard = self._shard_for(wheel_id)
        start = time.monotonic()
        self.metrics.enqueued(n)
        try:
            draws = await self._call(
                shard, "draw", wheel_id, n, int(seed), request.get("deadline_us")
            )
        except Exception:
            self.metrics.dequeued()
            self.metrics.errored()
            raise
        self.metrics.dequeued()
        self.metrics.served(time.monotonic() - start)
        return ok_response(request_id, draws=draws)

    # ------------------------------------------------------------------
    async def _metrics(self) -> Dict[str, Any]:
        shards = await self._shard_stats()
        return self.metrics.snapshot(
            extra={
                "workers": self.workers,
                "routed": {str(s.index): s.routed for s in self._shards},
                "shards": shards,
            }
        )

    async def _shard_stats(self) -> List[Dict[str, Any]]:
        if self._closed:
            return []
        return list(
            await asyncio.gather(
                *(self._call(shard, "stats") for shard in self._shards)
            )
        )

    async def stats(self) -> Dict[str, Any]:
        """The ``stats`` RPC: routing table view plus per-shard counters.

        Per shard: queue depth, batch-size distribution, registry
        hit/miss and compile-dedupe (``store_hits`` vs ``compiles``)
        counters — enough for a bench to attribute scaling losses to
        routing skew vs batching dilution.
        """
        shards = await self._shard_stats()
        routed = {str(s.index): s.routed for s in self._shards}
        total_routed = sum(s.routed for s in self._shards) or 1
        max_share = max((s.routed for s in self._shards), default=0) / total_routed
        return {
            "workers": self.workers,
            "draining": self._draining,
            "routed": routed,
            "routing_max_share": max_share,
            "frontend": self.metrics.snapshot(),
            "shards": shards,
        }

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Graceful shutdown: finish everything accepted, refuse the rest."""
        if self._draining:
            return
        self._draining = True
        pending = [
            future
            for shard in self._shards
            for future in shard.outstanding.values()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for shard in self._shards:
            try:
                await asyncio.wait_for(self._call(shard, "stop"), timeout=10.0)
            except Exception:  # pragma: no cover - worker died mid-drain
                pass
        self._closed = True
        self._join()
        self.store.close()

    async def close(self) -> None:
        """Drain (if not already) and reap the worker processes."""
        if not self._closed:
            await self.drain()
        self._terminate()

    def _join(self, timeout: float = 5.0) -> None:
        for shard in self._shards:
            shard.proc.join(timeout=timeout)

    def _terminate(self) -> None:
        self._closed = True
        for shard in self._shards:
            if shard.proc.is_alive():
                shard.proc.terminate()
                shard.proc.join(timeout=2.0)
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover
                pass
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterService(workers={self.workers}, seed={self.seed}, "
            f"draining={self._draining})"
        )
