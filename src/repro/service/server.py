"""Async selection service: registry + micro-batching scheduler + wire.

:class:`SelectionService` is the transport-neutral core — it accepts
decoded request dicts and returns response dicts, never raising (every
failure becomes a structured error response).  ``serve_tcp`` and
``serve_stdio`` wrap it in the two transports ``python -m repro serve``
offers; a :class:`~repro.service.cluster.ClusterService` exposes the
same surface, so every transport serves a sharded pool unchanged.

Each TCP connection picks its wire format by its very first byte: the
binary-frame magic ``0xA5`` selects length-prefixed frames
(:mod:`repro.service.frames` — the hot path, with zero-copy ndarray
draw payloads), anything else falls back to JSON-lines — so old clients
and ad-hoc ``echo | nc`` sessions keep working with no negotiation
round-trip.  A framed client may open with a HELLO frame to pin
versions and features explicitly.

The overload story, end to end: the scheduler's admission control bounds
queued draws (``queue_limit``); past it, requests are *refused
immediately* with ``status: "overloaded"`` rather than queued — the
service degrades by answering fast with "try later", never by hanging.
Shutdown is the same philosophy: :meth:`SelectionService.drain` lets
every accepted request finish while new ones get a typed ``draining``
refusal instead of a dropped connection.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ServiceDrainingError
from repro.service import frames as frames_mod
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.service.registry import DEFAULT_MAX_WHEELS, WheelRegistry
from repro.service.scheduler import BatchConfig, MicroBatchScheduler

__all__ = ["SelectionService", "start_tcp_server", "serve_tcp", "serve_stdio"]


class SelectionService:
    """The transport-neutral request handler.

    Parameters
    ----------
    seed:
        Service master seed (fixes every auto-assigned substream).
    config:
        Scheduler knobs; defaults are the bench-serve tuning.
    max_wheels / policy:
        Registry capacity and default kernel policy.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        config: Optional[BatchConfig] = None,
        max_wheels: int = DEFAULT_MAX_WHEELS,
        policy: str = "auto",
    ) -> None:
        self.metrics = ServiceMetrics()
        self.registry = WheelRegistry(max_wheels=max_wheels, policy=policy)
        self.scheduler = MicroBatchScheduler(
            self.registry, config, seed=seed, metrics=self.metrics
        )
        self._draining = False

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    async def handle_line(self, line: str) -> Dict[str, Any]:
        """Decode, dispatch, and answer one wire line.  Never raises."""
        try:
            request = decode_request(line)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc)
        return await self.handle_request(request)

    async def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one decoded request dict.  Never raises."""
        request_id = request.get("id")
        try:
            op = request["op"]
            if op == "ping":
                return ok_response(request_id, protocol=PROTOCOL_VERSION, workers=1)
            if op == "metrics":
                snapshot = self.metrics.snapshot(
                    extra={"registry": self.registry.stats()}
                )
                return ok_response(request_id, metrics=snapshot)
            if op == "stats":
                return ok_response(request_id, stats=self.stats())
            if self._draining:
                self.metrics.drained()
                raise ServiceDrainingError(
                    "service is draining; retry against another replica"
                )
            if op == "register":
                wheel_id, cached = self.registry.register(
                    request["fitness"],
                    method=request.get("method", "log_bidding"),
                    policy=request.get("policy"),
                    backend=request.get("backend"),
                )
                return ok_response(request_id, wheel=wheel_id, cached=cached)
            if op == "update":
                wheel_id, info = await self.scheduler.update(
                    request["wheel"], request["indices"], request["values"]
                )
                return ok_response(request_id, wheel=wheel_id, **info)
            # op == "draw" (decode_request admits nothing else)
            draws = await self.scheduler.draw(
                request["wheel"],
                request.get("n", 1),
                seed=request.get("seed"),
                deadline_us=request.get("deadline_us"),
            )
            return ok_response(request_id, draws=draws)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc, request_id)

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` RPC in single-process form.

        Shaped like the cluster's answer (a one-element ``shards`` list)
        so dashboards and benches read both identically.
        """
        return {
            "workers": 1,
            "draining": self._draining,
            "routed": {"0": self.metrics.requests_total},
            "routing_max_share": 1.0,
            "frontend": self.metrics.snapshot(),
            "shards": [
                self.metrics.snapshot(
                    extra={
                        "shard": 0,
                        "queued": self.scheduler.queued,
                        "registry": self.registry.stats(),
                    }
                )
            ],
        }

    async def drain(self) -> None:
        """Finish every accepted request; refuse new ones as ``draining``."""
        self._draining = True
        await self.scheduler.drain()

    async def close(self) -> None:
        """Flush pending batches and refuse further work."""
        self._draining = True
        await self.scheduler.close()


async def _serve_json_connection(
    service, reader, writer, max_line_bytes: int, first_byte: bytes
) -> None:
    """JSON-lines until EOF; a bad line is answered, not fatal."""
    pending = first_byte
    while True:
        try:
            line = pending + await reader.readline()
            pending = b""
        except (asyncio.LimitOverrunError, ValueError):
            writer.write(
                encode_response(
                    error_response(
                        ValueError(f"request line exceeds {max_line_bytes} bytes")
                    )
                )
            )
            await writer.drain()
            break
        if not line:
            break
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        response = await service.handle_line(text)
        writer.write(encode_response(response))
        await writer.drain()


async def _serve_framed_connection(
    service, reader, writer, max_frame_bytes: int, first_byte: bytes
) -> None:
    """Binary frames until EOF.

    Malformed frame *bodies* are answered with ERROR frames and the
    connection continues (framing stays synchronized because the body
    length was already consumed); an unparseable *header* is fatal for
    the connection since resynchronization is impossible.

    A client HELLO that carries an explicit ``features`` list *pins* the
    connection: feature-gated frame types (``UPDATE`` requires
    ``"update"``) sent without their token are answered with an ERROR
    frame — the negotiation contract that lets old clients and new
    servers coexist.  Connections that skip HELLO are unpinned and may
    send anything.
    """
    pinned_features = None
    while True:
        try:
            frame = await frames_mod.read_frame(
                reader, max_body_bytes=max_frame_bytes, first_byte=first_byte
            )
        except ProtocolError as exc:
            writer.write(frames_mod.response_to_frame(error_response(exc)))
            await writer.drain()
            break
        first_byte = b""
        if frame is None:
            break
        ftype, body, request_id = frame
        if ftype == frames_mod.FT_HELLO:
            if body:
                try:
                    hello = frames_mod._parse_kvmap(body)
                except ProtocolError as exc:
                    writer.write(
                        frames_mod.response_to_frame(
                            error_response(exc, request_id)
                        )
                    )
                    await writer.drain()
                    continue
                features = hello.get("features")
                if isinstance(features, list):
                    pinned_features = {f for f in features if isinstance(f, str)}
            writer.write(frames_mod.hello_frame(PROTOCOL_VERSION, request_id))
            await writer.drain()
            continue
        needed = frames_mod.required_feature(ftype)
        if (
            needed is not None
            and pinned_features is not None
            and needed not in pinned_features
        ):
            exc = ProtocolError(
                f"frame type {ftype:#04x} requires feature {needed!r}, "
                f"absent from this connection's HELLO"
            )
            writer.write(frames_mod.response_to_frame(error_response(exc, request_id)))
            await writer.drain()
            continue
        try:
            request = frames_mod.frame_to_request(ftype, body, request_id)
        except ProtocolError as exc:
            writer.write(
                frames_mod.response_to_frame(error_response(exc, request_id))
            )
            await writer.drain()
            continue
        response = await service.handle_request(request)
        writer.write(frames_mod.response_to_frame(response))
        await writer.drain()


async def _handle_connection(
    service,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
    max_line_bytes: int,
) -> None:
    """Sniff the wire format from the first byte, then serve until EOF."""
    try:
        first = await reader.read(1)
        if first:
            if first[0] == frames_mod.MAGIC:
                await _serve_framed_connection(
                    service, reader, writer, max_line_bytes, first
                )
            else:
                await _serve_json_connection(
                    service, reader, writer, max_line_bytes, first
                )
    except (
        ConnectionResetError,
        BrokenPipeError,
        asyncio.IncompleteReadError,
    ):  # pragma: no cover - client died
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def start_tcp_server(
    service,
    host: str = "127.0.0.1",
    port: int = 7077,
    *,
    max_line_bytes: int = 16 << 20,
) -> "asyncio.AbstractServer":
    """Bind the dual-protocol service and return the listening server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.sockets[0].getsockname()``) — how the in-process tests run
    without fixed-port collisions.  The caller owns the server's
    lifecycle; :func:`serve_tcp` wraps this with serve-forever semantics.
    ``service`` may be a :class:`SelectionService` or a
    :class:`~repro.service.cluster.ClusterService`.
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w, max_line_bytes),
        host,
        port,
        limit=max_line_bytes,
    )


async def serve_tcp(
    service,
    host: str = "127.0.0.1",
    port: int = 7077,
    *,
    max_line_bytes: int = 16 << 20,
    on_ready=None,
) -> None:
    """Run the service over TCP until cancelled.

    ``on_ready(server)`` is invoked after the socket is bound, so
    callers can announce the listening address only once it is true.
    """
    server = await start_tcp_server(
        service, host, port, max_line_bytes=max_line_bytes
    )
    if on_ready is not None:
        on_ready(server)
    async with server:
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            await service.close()
            raise


async def serve_stdio(service) -> None:
    """Run the JSON-lines service over stdin/stdout until EOF.

    Useful for subprocess embedding and for piping one-off requests::

        echo '{"op": "ping"}' | python -m repro serve --stdio

    stdio mode stays JSON-lines by design — it is the scripting
    interface; binary frames are negotiated on TCP connections only.
    """
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    out = sys.stdout
    while True:
        line = await reader.readline()
        if not line:
            break
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        response = await service.handle_line(text)
        out.write(encode_response(response).decode("utf-8"))
        out.flush()
    await service.close()
