"""Async selection service: registry + micro-batching scheduler + wire.

:class:`SelectionService` is the transport-neutral core — it accepts
decoded request dicts and returns response dicts, never raising (every
failure becomes a structured error response).  ``serve_tcp`` and
``serve_stdio`` wrap it in the two transports ``python -m repro serve``
offers.

The overload story, end to end: the scheduler's admission control bounds
queued draws (``queue_limit``); past it, requests are *refused
immediately* with ``status: "overloaded"`` rather than queued — the
service degrades by answering fast with "try later", never by hanging.
The acceptance drill (a burst far above ``queue_limit``) is automated in
``tests/service`` and ``bench-serve``'s overload probe.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Dict, Optional

from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.service.registry import DEFAULT_MAX_WHEELS, WheelRegistry
from repro.service.scheduler import BatchConfig, MicroBatchScheduler

__all__ = ["SelectionService", "start_tcp_server", "serve_tcp", "serve_stdio"]


class SelectionService:
    """The transport-neutral request handler.

    Parameters
    ----------
    seed:
        Service master seed (fixes every auto-assigned substream).
    config:
        Scheduler knobs; defaults are the bench-serve tuning.
    max_wheels / policy:
        Registry capacity and default kernel policy.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        config: Optional[BatchConfig] = None,
        max_wheels: int = DEFAULT_MAX_WHEELS,
        policy: str = "auto",
    ) -> None:
        self.metrics = ServiceMetrics()
        self.registry = WheelRegistry(max_wheels=max_wheels, policy=policy)
        self.scheduler = MicroBatchScheduler(
            self.registry, config, seed=seed, metrics=self.metrics
        )

    # ------------------------------------------------------------------
    async def handle_line(self, line: str) -> Dict[str, Any]:
        """Decode, dispatch, and answer one wire line.  Never raises."""
        try:
            request = decode_request(line)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc)
        return await self.handle_request(request)

    async def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one decoded request dict.  Never raises."""
        request_id = request.get("id")
        try:
            op = request["op"]
            if op == "ping":
                return ok_response(request_id, protocol=PROTOCOL_VERSION)
            if op == "metrics":
                snapshot = self.metrics.snapshot(
                    extra={"registry": self.registry.stats()}
                )
                return ok_response(request_id, metrics=snapshot)
            if op == "register":
                wheel_id, cached = self.registry.register(
                    request["fitness"],
                    method=request.get("method", "log_bidding"),
                    policy=request.get("policy"),
                )
                return ok_response(request_id, wheel=wheel_id, cached=cached)
            # op == "draw" (decode_request admits nothing else)
            draws = await self.scheduler.draw(
                request["wheel"],
                request.get("n", 1),
                seed=request.get("seed"),
                deadline_us=request.get("deadline_us"),
            )
            return ok_response(request_id, draws=draws)
        except Exception as exc:  # noqa: BLE001 - answered, not raised
            return error_response(exc, request_id)

    async def close(self) -> None:
        """Flush pending batches and refuse further work."""
        await self.scheduler.close()


async def _handle_connection(
    service: SelectionService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
    max_line_bytes: int,
) -> None:
    """Serve one TCP client until EOF; a bad line is answered, not fatal."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(
                    encode_response(
                        error_response(
                            ValueError(f"request line exceeds {max_line_bytes} bytes")
                        )
                    )
                )
                await writer.drain()
                break
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            response = await service.handle_line(text)
            writer.write(encode_response(response))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client died
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def start_tcp_server(
    service: SelectionService,
    host: str = "127.0.0.1",
    port: int = 7077,
    *,
    max_line_bytes: int = 16 << 20,
) -> "asyncio.AbstractServer":
    """Bind the JSON-lines service and return the listening server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.sockets[0].getsockname()``) — how the in-process tests run
    without fixed-port collisions.  The caller owns the server's
    lifecycle; :func:`serve_tcp` wraps this with serve-forever semantics.
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w, max_line_bytes),
        host,
        port,
        limit=max_line_bytes,
    )


async def serve_tcp(
    service: SelectionService,
    host: str = "127.0.0.1",
    port: int = 7077,
    *,
    max_line_bytes: int = 16 << 20,
    on_ready=None,
) -> None:
    """Run the JSON-lines service over TCP until cancelled.

    ``on_ready(server)`` is invoked after the socket is bound, so
    callers can announce the listening address only once it is true.
    """
    server = await start_tcp_server(
        service, host, port, max_line_bytes=max_line_bytes
    )
    if on_ready is not None:
        on_ready(server)
    async with server:
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            await service.close()
            raise


async def serve_stdio(service: SelectionService) -> None:
    """Run the JSON-lines service over stdin/stdout until EOF.

    Useful for subprocess embedding and for piping one-off requests::

        echo '{"op": "ping"}' | python -m repro serve --stdio
    """
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    out = sys.stdout
    while True:
        line = await reader.readline()
        if not line:
            break
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        response = await service.handle_line(text)
        out.write(encode_response(response).decode("utf-8"))
        out.flush()
    await service.close()
