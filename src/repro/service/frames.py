"""Length-prefixed binary frame protocol for the selection service.

The JSON-lines protocol (:mod:`repro.service.protocol`) stays the
lingua franca for scripting and stdio embedding, but on the hot path its
encode cost dominates once draw payloads grow: serializing a 1024-draw
response is a Python-level loop over every integer.  This module defines
the binary framing that replaces it on TCP connections that opt in —
draw results travel as raw little-endian ``int64`` ndarray bytes
(zero-copy on both ends via ``np.frombuffer``), and requests parse with
one ``struct.unpack``.

Wire layout (all integers big-endian)::

    frame   := header body
    header  := magic:u8 version:u8 ftype:u8 flags:u8 body_len:u32 request_id:u64
    body    := ftype-specific, body_len bytes

``magic`` is ``0xA5`` — deliberately distinct from ``{`` (0x7B), so a
server can sniff the first byte of a connection and fall back to
JSON-lines for old clients with no negotiation round-trip.  ``flags``
bit 0 records whether ``request_id`` is meaningful (ids are optional in
the JSON protocol and stay optional here).  ``body_len`` bounds
allocation before any body byte is read.

Frame types::

    0x01 HELLO     kvmap   version/feature negotiation (both directions)
    0x02 PING      empty
    0x03 METRICS   empty
    0x04 STATS     empty
    0x10 REGISTER  kvmap   {"fitness": f8-ndarray, "method": str, "policy": ...}
    0x11 DRAW      fixed   wheel_len:u16 wheel:bytes n:u32 opts:u8 seed:i64 deadline:f64
    0x12 UPDATE    fixed   wheel_len:u16 wheel:bytes k:u32 indices:i64[k] values:f64[k]
    0x80 OK        kvmap   generic success payload
    0x81 DRAWS     raw     dtype:u8 count:u32 raw ndarray bytes
    0x82 ERROR     kvmap   {"status": ..., "error": ..., "message": ...}

The *kvmap* bodies use a tiny canonical typed-value encoding (see
:func:`encode_value`) — a deliberate msgpack subset implemented locally
so the wire format has zero dependencies.  Canonical means re-encoding a
parsed frame reproduces the identical bytes, the property the protocol
fuzz test asserts (``tests/service/test_frames.py``).

The full header/negotiation/error specification lives in
``docs/PROTOCOL.md``.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "MAGIC",
    "FRAMES_VERSION",
    "HEADER_SIZE",
    "FRAME_FEATURES",
    "FT_HELLO",
    "FT_PING",
    "FT_METRICS",
    "FT_STATS",
    "FT_REGISTER",
    "FT_DRAW",
    "FT_UPDATE",
    "FT_OK",
    "FT_DRAWS",
    "FT_ERROR",
    "required_feature",
    "encode_value",
    "parse_value",
    "encode_frame",
    "parse_header",
    "request_to_frame",
    "frame_to_request",
    "response_to_frame",
    "frame_to_response",
    "hello_frame",
    "read_frame",
]

#: First byte of every binary frame; never the first byte of JSON-lines.
MAGIC = 0xA5

#: Bumped on any incompatible header or body-layout change.
FRAMES_VERSION = 1

#: Feature tokens advertised in HELLO negotiation.  ``update`` gates the
#: UPDATE frame: a client that pinned its features with a HELLO lacking
#: the token is answered with an ERROR if it sends one anyway.
FRAME_FEATURES = ("draws-ndarray", "stats", "draining", "update")

_HEADER = struct.Struct("!BBBBIQ")
HEADER_SIZE = _HEADER.size  # 16 bytes

_FLAG_HAS_ID = 0x01

FT_HELLO = 0x01
FT_PING = 0x02
FT_METRICS = 0x03
FT_STATS = 0x04
FT_REGISTER = 0x10
FT_DRAW = 0x11
FT_UPDATE = 0x12
FT_OK = 0x80
FT_DRAWS = 0x81
FT_ERROR = 0x82

_FTYPE_NAMES = {
    FT_HELLO: "HELLO",
    FT_PING: "PING",
    FT_METRICS: "METRICS",
    FT_STATS: "STATS",
    FT_REGISTER: "REGISTER",
    FT_DRAW: "DRAW",
    FT_UPDATE: "UPDATE",
    FT_OK: "OK",
    FT_DRAWS: "DRAWS",
    FT_ERROR: "ERROR",
}

#: Frame types gated behind a HELLO feature token (negotiation contract:
#: a client that pinned an explicit feature list must not send these).
_FEATURE_GATED = {FT_UPDATE: "update"}


def required_feature(ftype: int) -> Optional[str]:
    """The HELLO feature token ``ftype`` requires, or ``None``."""
    return _FEATURE_GATED.get(ftype)

# ----------------------------------------------------------------------
# Typed-value (kvmap) codec
# ----------------------------------------------------------------------

_T_NULL = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_LIST = 7
_T_DICT = 8
_T_NDARRAY = 9

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")
_U16 = struct.Struct("!H")

#: ndarray dtype codes; arrays always travel contiguous little-endian.
_DTYPE_CODES = {0: "<f8", 1: "<i8", 2: "<u8"}
_DTYPE_TO_CODE = {np.dtype(v): k for k, v in _DTYPE_CODES.items()}

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def encode_value(buf: bytearray, value: Any) -> None:
    """Append one value to ``buf`` in the canonical typed encoding.

    Canonical: a given Python value has exactly one byte encoding (dict
    order is preserved, arrays are canonicalized to little-endian
    contiguous), so parse-then-re-encode is the identity on frames.
    """
    if value is None:
        buf.append(_T_NULL)
    elif value is False:
        buf.append(_T_FALSE)
    elif value is True:
        buf.append(_T_TRUE)
    elif isinstance(value, int) and not isinstance(value, bool):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise ProtocolError(f"integer {value} exceeds the wire's i64 range")
        buf.append(_T_INT)
        buf += _I64.pack(value)
    elif isinstance(value, float):
        buf.append(_T_FLOAT)
        buf += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        buf.append(_T_BYTES)
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        if arr.ndim != 1:
            raise ProtocolError(
                f"only 1-d ndarrays travel on the wire, got shape {arr.shape}"
            )
        code = _DTYPE_TO_CODE.get(np.dtype(arr.dtype.newbyteorder("<")))
        if code is None:
            raise ProtocolError(f"unsupported wire ndarray dtype {arr.dtype}")
        arr = arr.astype(_DTYPE_CODES[code], copy=False)
        buf.append(_T_NDARRAY)
        buf.append(code)
        buf += _U32.pack(arr.size)
        buf += arr.tobytes()
    elif isinstance(value, (list, tuple)):
        buf.append(_T_LIST)
        buf += _U32.pack(len(value))
        for item in value:
            encode_value(buf, item)
    elif isinstance(value, dict):
        buf.append(_T_DICT)
        buf += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"wire dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            buf += _U16.pack(len(raw))
            buf += raw
            encode_value(buf, item)
    elif isinstance(value, (np.integer,)):
        encode_value(buf, int(value))
    elif isinstance(value, (np.floating,)):
        encode_value(buf, float(value))
    else:
        raise ProtocolError(f"value of type {type(value).__name__} is not wireable")


def _need(mv: memoryview, offset: int, count: int) -> None:
    if offset + count > len(mv):
        raise ProtocolError(
            f"truncated frame body: need {count} bytes at offset {offset}, "
            f"have {len(mv) - offset}"
        )


def parse_value(mv: memoryview, offset: int = 0) -> Tuple[Any, int]:
    """Parse one typed value; returns ``(value, next_offset)``.

    ndarray payloads are returned as read-only zero-copy views over
    ``mv`` — callers that outlive the buffer must copy.
    """
    _need(mv, offset, 1)
    tag = mv[offset]
    offset += 1
    if tag == _T_NULL:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_INT:
        _need(mv, offset, 8)
        return _I64.unpack_from(mv, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(mv, offset, 8)
        return _F64.unpack_from(mv, offset)[0], offset + 8
    if tag in (_T_STR, _T_BYTES):
        _need(mv, offset, 4)
        length = _U32.unpack_from(mv, offset)[0]
        offset += 4
        _need(mv, offset, length)
        raw = bytes(mv[offset : offset + length])
        offset += length
        return (raw.decode("utf-8") if tag == _T_STR else raw), offset
    if tag == _T_NDARRAY:
        _need(mv, offset, 5)
        code = mv[offset]
        if code not in _DTYPE_CODES:
            raise ProtocolError(f"unknown wire ndarray dtype code {code}")
        count = _U32.unpack_from(mv, offset + 1)[0]
        offset += 5
        nbytes = count * 8
        _need(mv, offset, nbytes)
        arr = np.frombuffer(mv[offset : offset + nbytes], dtype=_DTYPE_CODES[code])
        return arr, offset + nbytes
    if tag == _T_LIST:
        _need(mv, offset, 4)
        count = _U32.unpack_from(mv, offset)[0]
        offset += 4
        items = []
        for _ in range(count):
            item, offset = parse_value(mv, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        _need(mv, offset, 4)
        count = _U32.unpack_from(mv, offset)[0]
        offset += 4
        out: Dict[str, Any] = {}
        for _ in range(count):
            _need(mv, offset, 2)
            klen = _U16.unpack_from(mv, offset)[0]
            offset += 2
            _need(mv, offset, klen)
            key = bytes(mv[offset : offset + klen]).decode("utf-8")
            offset += klen
            out[key], offset = parse_value(mv, offset)
        return out, offset
    raise ProtocolError(f"unknown wire value tag {tag}")


def _kvmap_bytes(payload: Dict[str, Any]) -> bytes:
    buf = bytearray()
    encode_value(buf, payload)
    return bytes(buf)


def _parse_kvmap(body: bytes) -> Dict[str, Any]:
    value, offset = parse_value(memoryview(body))
    if offset != len(body):
        raise ProtocolError(
            f"{len(body) - offset} trailing bytes after frame payload"
        )
    if not isinstance(value, dict):
        raise ProtocolError(
            f"frame payload must be a map, got {type(value).__name__}"
        )
    return value


# ----------------------------------------------------------------------
# Frame assembly / header parsing
# ----------------------------------------------------------------------


def encode_frame(
    ftype: int, body: bytes = b"", request_id: Optional[int] = None
) -> bytes:
    """Assemble one complete frame (header + body)."""
    flags = 0
    rid = 0
    if request_id is not None:
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise ProtocolError(
                f"frame request id must be an integer, got {request_id!r}"
            )
        if not 0 <= request_id < (1 << 64):
            raise ProtocolError(f"frame request id {request_id} out of u64 range")
        flags |= _FLAG_HAS_ID
        rid = request_id
    return _HEADER.pack(MAGIC, FRAMES_VERSION, ftype, flags, len(body), rid) + body


def parse_header(header: bytes) -> Tuple[int, int, Optional[int]]:
    """Validate a 16-byte header; returns ``(ftype, body_len, request_id)``."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(
            f"frame header must be {HEADER_SIZE} bytes, got {len(header)}"
        )
    magic, version, ftype, flags, body_len, rid = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:02x} (expected 0x{MAGIC:02x})")
    if version != FRAMES_VERSION:
        raise ProtocolError(
            f"unsupported frame version {version} (this end speaks "
            f"{FRAMES_VERSION}); renegotiate with HELLO"
        )
    if ftype not in _FTYPE_NAMES:
        raise ProtocolError(f"unknown frame type 0x{ftype:02x}")
    request_id = rid if flags & _FLAG_HAS_ID else None
    return ftype, body_len, request_id


# DRAW body: wheel_len:u16 wheel:bytes then n:u32 opts:u8 seed:i64 deadline:f64.
_DRAW_TAIL = struct.Struct("!IBqd")
_OPT_HAS_SEED = 0x01
_OPT_HAS_DEADLINE = 0x02


def _encode_draw_body(request: Dict[str, Any]) -> bytes:
    wheel = request["wheel"]
    if not isinstance(wheel, str):
        raise ProtocolError(f"draw 'wheel' must be a string, got {wheel!r}")
    raw = wheel.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"wheel id of {len(raw)} bytes exceeds the wire limit")
    n = request.get("n", 1)
    if not isinstance(n, int) or isinstance(n, bool) or n <= 0 or n >= (1 << 32):
        raise ProtocolError(f"draw 'n' must be a positive u32, got {n!r}")
    opts = 0
    seed = request.get("seed")
    if seed is not None:
        if (
            not isinstance(seed, int)
            or isinstance(seed, bool)
            or not _INT64_MIN <= seed <= _INT64_MAX
        ):
            raise ProtocolError(f"draw 'seed' must be an i64, got {seed!r}")
        opts |= _OPT_HAS_SEED
    deadline_us = request.get("deadline_us")
    if deadline_us is not None:
        if not isinstance(deadline_us, (int, float)) or isinstance(deadline_us, bool):
            raise ProtocolError(
                f"draw 'deadline_us' must be a number, got {deadline_us!r}"
            )
        opts |= _OPT_HAS_DEADLINE
    return (
        _U16.pack(len(raw))
        + raw
        + _DRAW_TAIL.pack(
            n, opts, seed if seed is not None else 0,
            float(deadline_us) if deadline_us is not None else 0.0,
        )
    )


def _parse_draw_body(body: bytes) -> Dict[str, Any]:
    mv = memoryview(body)
    _need(mv, 0, 2)
    wlen = _U16.unpack_from(mv, 0)[0]
    _need(mv, 2, wlen + _DRAW_TAIL.size)
    if 2 + wlen + _DRAW_TAIL.size != len(body):
        raise ProtocolError(
            f"{len(body) - 2 - wlen - _DRAW_TAIL.size} trailing bytes in DRAW body"
        )
    wheel = bytes(mv[2 : 2 + wlen]).decode("utf-8")
    n, opts, seed, deadline = _DRAW_TAIL.unpack_from(mv, 2 + wlen)
    if n <= 0:
        raise ProtocolError(f"draw 'n' must be positive, got {n}")
    request: Dict[str, Any] = {"op": "draw", "wheel": wheel, "n": n}
    if opts & _OPT_HAS_SEED:
        request["seed"] = seed
    if opts & _OPT_HAS_DEADLINE:
        request["deadline_us"] = deadline
    return request


# UPDATE body: wheel_len:u16 wheel:bytes k:u32 indices:i64[k] values:f64[k].
# Fixed layout like DRAW — the mutation hot path never touches the kvmap
# codec; both arrays are raw little-endian and cross the boundary through
# np.frombuffer / tobytes with no Python-level loop.


def _encode_update_body(request: Dict[str, Any]) -> bytes:
    wheel = request["wheel"]
    if not isinstance(wheel, str):
        raise ProtocolError(f"update 'wheel' must be a string, got {wheel!r}")
    raw = wheel.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"wheel id of {len(raw)} bytes exceeds the wire limit")
    try:
        indices = np.ascontiguousarray(np.asarray(request["indices"], dtype="<i8"))
        values = np.ascontiguousarray(np.asarray(request["values"], dtype="<f8"))
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"update delta is not numeric: {exc}") from None
    if indices.ndim != 1 or values.ndim != 1:
        raise ProtocolError("update 'indices' and 'values' must be 1-d")
    if indices.size != values.size:
        raise ProtocolError(
            f"update 'indices' and 'values' must match, "
            f"got {indices.size} vs {values.size}"
        )
    if indices.size == 0:
        raise ProtocolError("update requires a non-empty delta")
    if indices.size >= (1 << 32):
        raise ProtocolError(f"update delta of {indices.size} entries exceeds u32")
    return (
        _U16.pack(len(raw))
        + raw
        + _U32.pack(indices.size)
        + indices.tobytes()
        + values.tobytes()
    )


def _parse_update_body(body: bytes) -> Dict[str, Any]:
    mv = memoryview(body)
    _need(mv, 0, 2)
    wlen = _U16.unpack_from(mv, 0)[0]
    _need(mv, 2, wlen + 4)
    wheel = bytes(mv[2 : 2 + wlen]).decode("utf-8")
    count = _U32.unpack_from(mv, 2 + wlen)[0]
    if count == 0:
        raise ProtocolError("UPDATE delta is empty")
    offset = 2 + wlen + 4
    nbytes = count * 8
    if offset + 2 * nbytes != len(body):
        raise ProtocolError(
            f"UPDATE body length {len(body)} inconsistent with count {count}"
        )
    indices = np.frombuffer(mv[offset : offset + nbytes], dtype="<i8")
    values = np.frombuffer(mv[offset + nbytes : offset + 2 * nbytes], dtype="<f8")
    return {"op": "update", "wheel": wheel, "indices": indices, "values": values}


# DRAWS body: dtype:u8 count:u32 raw bytes.
def _encode_draws_body(draws: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(draws, dtype="<i8")
    return bytes((1,)) + _U32.pack(arr.size) + arr.tobytes()


def _parse_draws_body(body: bytes) -> np.ndarray:
    mv = memoryview(body)
    _need(mv, 0, 5)
    code = mv[0]
    if code not in _DTYPE_CODES:
        raise ProtocolError(f"unknown DRAWS dtype code {code}")
    count = _U32.unpack_from(mv, 1)[0]
    if 5 + count * 8 != len(body):
        raise ProtocolError(
            f"DRAWS body length {len(body)} inconsistent with count {count}"
        )
    return np.frombuffer(mv[5 : 5 + count * 8], dtype=_DTYPE_CODES[code])


# ----------------------------------------------------------------------
# Request/response dict <-> frame mapping
# ----------------------------------------------------------------------

_OP_TO_EMPTY_FTYPE = {"ping": FT_PING, "metrics": FT_METRICS, "stats": FT_STATS}
_FTYPE_TO_OP = {v: k for k, v in _OP_TO_EMPTY_FTYPE.items()}


def request_to_frame(request: Dict[str, Any]) -> bytes:
    """Encode a protocol request dict (client side)."""
    op = request.get("op")
    request_id = request.get("id")
    if op in _OP_TO_EMPTY_FTYPE:
        return encode_frame(_OP_TO_EMPTY_FTYPE[op], b"", request_id)
    if op == "draw":
        return encode_frame(FT_DRAW, _encode_draw_body(request), request_id)
    if op == "update":
        return encode_frame(FT_UPDATE, _encode_update_body(request), request_id)
    if op == "register":
        fitness = np.ascontiguousarray(
            np.asarray(request["fitness"], dtype=np.float64)
        )
        payload: Dict[str, Any] = {"fitness": fitness}
        if request.get("method") is not None:
            payload["method"] = str(request["method"])
        if request.get("policy") is not None:
            payload["policy"] = str(request["policy"])
        if request.get("backend") is not None:
            payload["backend"] = str(request["backend"])
        return encode_frame(FT_REGISTER, _kvmap_bytes(payload), request_id)
    raise ProtocolError(f"op {op!r} has no frame encoding")


def frame_to_request(
    ftype: int, body: bytes, request_id: Optional[int]
) -> Dict[str, Any]:
    """Decode a request frame into the dict the service handler expects."""
    if ftype in _FTYPE_TO_OP:
        if body:
            raise ProtocolError(
                f"{_FTYPE_NAMES[ftype]} frames carry no body, got {len(body)} bytes"
            )
        request: Dict[str, Any] = {"op": _FTYPE_TO_OP[ftype]}
    elif ftype == FT_DRAW:
        request = _parse_draw_body(body)
    elif ftype == FT_UPDATE:
        request = _parse_update_body(body)
    elif ftype == FT_REGISTER:
        payload = _parse_kvmap(body)
        fitness = payload.get("fitness")
        if not isinstance(fitness, np.ndarray) or fitness.size == 0:
            raise ProtocolError("REGISTER requires a non-empty 'fitness' array")
        request = {"op": "register", "fitness": np.asarray(fitness, dtype=np.float64)}
        if "method" in payload:
            request["method"] = payload["method"]
        if "policy" in payload:
            request["policy"] = payload["policy"]
        if "backend" in payload:
            request["backend"] = payload["backend"]
    else:
        raise ProtocolError(
            f"frame type {_FTYPE_NAMES.get(ftype, hex(ftype))} is not a request"
        )
    if request_id is not None:
        request["id"] = request_id
    return request


def response_to_frame(response: Dict[str, Any]) -> bytes:
    """Encode a protocol response dict (server side).

    Successful draw responses become zero-copy DRAWS frames; every other
    success is a generic OK kvmap; failures become ERROR frames carrying
    the same ``status``/``error``/``message`` triple as the JSON wire.
    """
    request_id = response.get("id")
    status = response.get("status")
    if status == "ok":
        draws = response.get("draws")
        if draws is not None and len(response) - ("id" in response) == 2:
            return encode_frame(
                FT_DRAWS, _encode_draws_body(np.asarray(draws)), request_id
            )
        payload = {k: v for k, v in response.items() if k not in ("status", "id")}
        return encode_frame(FT_OK, _kvmap_bytes(payload), request_id)
    payload = {
        "status": str(status),
        "error": str(response.get("error", "")),
        "message": str(response.get("message", "")),
    }
    return encode_frame(FT_ERROR, _kvmap_bytes(payload), request_id)


def frame_to_response(
    ftype: int, body: bytes, request_id: Optional[int]
) -> Dict[str, Any]:
    """Decode a response frame back into the protocol response dict."""
    if ftype == FT_DRAWS:
        response: Dict[str, Any] = {"status": "ok", "draws": _parse_draws_body(body)}
    elif ftype == FT_OK:
        response = {"status": "ok", **_parse_kvmap(body)}
    elif ftype == FT_ERROR:
        payload = _parse_kvmap(body)
        response = {
            "status": payload.get("status", "error"),
            "error": payload.get("error", ""),
            "message": payload.get("message", ""),
        }
    elif ftype == FT_HELLO:
        response = {"status": "ok", **_parse_kvmap(body)}
    else:
        raise ProtocolError(
            f"frame type {_FTYPE_NAMES.get(ftype, hex(ftype))} is not a response"
        )
    if request_id is not None:
        response["id"] = request_id
    return response


def hello_frame(
    protocol_version: str,
    request_id: Optional[int] = None,
    features: Optional[Sequence[str]] = None,
) -> bytes:
    """The negotiation frame either end opens with.

    Carries the JSON-protocol version string, the frame-format version,
    and the feature tokens this end understands; the peer intersects
    features and may downgrade.  A client HELLO with an explicit
    ``features`` list *pins* the connection: the server answers
    feature-gated frame types outside the list with ERROR frames (see
    :func:`required_feature`).  The default advertises everything this
    build speaks.
    """
    return encode_frame(
        FT_HELLO,
        _kvmap_bytes(
            {
                "protocol": protocol_version,
                "frames": FRAMES_VERSION,
                "features": list(
                    FRAME_FEATURES if features is None else features
                ),
            }
        ),
        request_id,
    )


async def read_frame(reader, *, max_body_bytes: int, first_byte: bytes = b""):
    """Read one complete frame from an ``asyncio.StreamReader``.

    Returns ``(ftype, body, request_id)`` or ``None`` on clean EOF at a
    frame boundary.  ``first_byte`` lets the caller hand over the sniffed
    magic byte from protocol detection.
    """
    import asyncio

    try:
        header = first_byte + await reader.readexactly(HEADER_SIZE - len(first_byte))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not first_byte:
            return None
        raise ProtocolError("connection closed mid-header") from None
    ftype, body_len, request_id = parse_header(header)
    if body_len > max_body_bytes:
        raise ProtocolError(
            f"frame body of {body_len} bytes exceeds limit {max_body_bytes}"
        )
    try:
        body = await reader.readexactly(body_len) if body_len else b""
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-body") from None
    return ftype, body, request_id
