"""Load generation and the recorded ``bench-serve`` report.

Two generator shapes, matching how services are actually characterised:

* **closed loop** (:func:`run_closed_loop`): each of ``clients``
  concurrent clients waits for its response before sending the next
  request — throughput emerges from latency, the shape behind the
  headline batched-vs-naive gate;
* **open loop** (:func:`run_open_loop`): the whole request burst is
  submitted at once regardless of responses — offered load exceeds
  capacity and the service must shed; this drives the overload probe.

:func:`run_bench_serve` assembles the full report (legs, gate,
coalescing-determinism certificate, overload probe) in the same
run/validate/write/render shape as the repo's other benches, persisted
as ``BENCH_serve.json`` by ``python -m repro bench-serve``.

The gate baseline is deliberate: the **naive leg re-validates and
re-prepares the wheel per request** — exactly what every pre-service
caller of :func:`repro.select_many` does today — while the batched leg
reuses the registry's compiled artifact and coalesces concurrent
requests into single kernel passes.  A secondary ``cached_naive`` leg
(compiled wheel, no coalescing) isolates how much of the win is caching
vs batching.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.errors import ServiceOverloadedError
from repro.rng.streams import request_stream
from repro.service.metrics import ServiceMetrics
from repro.service.registry import WheelRegistry, digest_key
from repro.service.scheduler import BatchConfig, MicroBatchScheduler, NaiveScheduler

__all__ = [
    "run_closed_loop",
    "run_open_loop",
    "run_bench_serve",
    "validate_bench_serve",
    "write_bench_serve",
    "render_bench_serve",
    "BENCH_SERVE_SCHEMA",
]

#: Schema tag for BENCH_serve.json (bump on layout changes).
BENCH_SERVE_SCHEMA = "repro/bench-serve/v1"

#: Methods covered by the coalescing-determinism certificate: the
#: paper's method plus one representative of each other kernel family.
_CERTIFICATE_METHODS = ("log_bidding", "gumbel", "alias")

#: Keys every results block must carry (checked by the CI smoke job).
_REQUIRED_RESULT_KEYS = (
    "legs",
    "gate_target",
    "gate_speedup",
    "gate_met",
    "determinism",
    "overload",
)

_REQUIRED_LEG_KEYS = (
    "requests",
    "elapsed_s",
    "requests_per_s",
    "latency",
    "batch_sizes",
)


async def run_closed_loop(
    scheduler,
    wheel_id: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
) -> float:
    """Closed-loop load: each client awaits its response before the next.

    Returns elapsed wall seconds for the whole run.  Request seeds are
    assigned by the scheduler's monotonic counter, so reruns against the
    same seed replay the same draws.
    """

    async def client(_: int) -> None:
        for _ in range(requests_per_client):
            await scheduler.draw(wheel_id, n_draws)

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    return time.perf_counter() - start


async def run_open_loop(
    scheduler,
    wheel_id: str,
    *,
    requests: int,
    n_draws: int,
    timeout_s: float = 30.0,
) -> Dict[str, int]:
    """Open-loop burst: submit everything at once, count the outcomes.

    Every request completes one way or another inside ``timeout_s`` —
    the no-hang guarantee the overload acceptance drill asserts.
    """

    async def one() -> str:
        try:
            await scheduler.draw(wheel_id, n_draws)
            return "ok"
        except ServiceOverloadedError:
            return "shed"

    results = await asyncio.wait_for(
        asyncio.gather(*(one() for _ in range(requests))), timeout=timeout_s
    )
    return {
        "submitted": requests,
        "ok": sum(1 for r in results if r == "ok"),
        "shed": sum(1 for r in results if r == "shed"),
    }


class _CachedNaiveScheduler:
    """Secondary baseline: compiled cache hit per request, no coalescing.

    Isolates the two effects the batched leg stacks: against ``naive``
    it shows the caching win, against ``batched`` the coalescing win.
    """

    def __init__(self, registry: WheelRegistry, *, seed: int = 0, metrics=None):
        self.registry = registry
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._request_counter = 0

    async def draw(self, wheel_id: str, n: int, **_: Any) -> np.ndarray:
        seed = self._request_counter
        self._request_counter += 1
        wheel = self.registry.get(wheel_id)
        start = time.monotonic()
        self.metrics.enqueued(int(n))
        rng = request_stream(self.seed, digest_key(wheel_id), seed)
        draws = wheel.select_many(int(n), rng)
        self.metrics.dequeued()
        self.metrics.batch_sizes.observe(1)
        self.metrics.served(time.monotonic() - start)
        await asyncio.sleep(0)
        return draws


def _leg_report(
    scheduler, elapsed: float, requests: int, n_draws: int
) -> Dict[str, Any]:
    metrics = scheduler.metrics
    return {
        "requests": requests,
        "draws": requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": metrics.latency.snapshot(),
        "batch_sizes": metrics.batch_sizes.snapshot(),
    }


def _determinism_certificate(
    wheel_size: int, seed: int, *, methods: Sequence[str] = _CERTIFICATE_METHODS
) -> Dict[str, Any]:
    """Certify responses are bit-identical solo vs coalesced.

    For each method, the same ``(wheel, n, seed)`` request set is served
    three ways — fully coalesced (``max_batch`` large), strictly solo
    (``max_batch=1``), and directly via ``select_many`` on the compiled
    wheel with the request's replayed substream — and all three must
    agree byte for byte.
    """
    sizes = [1, 3, 17, 64, 5, 128, 2, 31]
    per_method: Dict[str, Any] = {}
    all_ok = True
    for method in methods:
        fitness = np.arange(1.0, wheel_size + 1.0)
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        wheel = registry.get(wheel_id)

        async def serve(max_batch: int) -> List[np.ndarray]:
            sched = MicroBatchScheduler(
                registry,
                BatchConfig(max_batch=max_batch, max_delay_us=500.0),
                seed=seed,
            )
            out = await asyncio.gather(
                *(
                    sched.draw(wheel_id, n, seed=i)
                    for i, n in enumerate(sizes)
                )
            )
            await sched.close()
            return out

        coalesced = asyncio.run(serve(max_batch=len(sizes)))
        solo = asyncio.run(serve(max_batch=1))
        direct = [
            wheel.select_many(
                n, request_stream(seed, digest_key(wheel_id), i)
            )
            for i, n in enumerate(sizes)
        ]
        ok = all(
            np.array_equal(c, s) and np.array_equal(c, d)
            for c, s, d in zip(coalesced, solo, direct)
        )
        all_ok = all_ok and ok
        per_method[method] = {
            "requests": len(sizes),
            "sizes": sizes,
            "bitwise_identical": bool(ok),
        }
    return {"methods": per_method, "ok": bool(all_ok)}


def _overload_probe(
    wheel_size: int, seed: int, *, queue_limit: int = 8, burst: int = 96
) -> Dict[str, Any]:
    """The acceptance drill: a burst far past ``queue_limit``.

    Asserts the contract shape — every request answered (ok or shed),
    nothing hangs, and the shed count shows up in metrics.
    """
    registry = WheelRegistry()
    wheel_id, _ = registry.register(np.arange(1.0, wheel_size + 1.0))
    scheduler = MicroBatchScheduler(
        registry,
        BatchConfig(max_batch=16, max_delay_us=200.0, queue_limit=queue_limit),
        seed=seed,
    )

    async def drill() -> Dict[str, int]:
        outcome = await run_open_loop(
            scheduler, wheel_id, requests=burst, n_draws=4, timeout_s=30.0
        )
        await scheduler.close()
        return outcome

    outcome = asyncio.run(drill())
    shed_metric = scheduler.metrics.shed_total
    accounted = outcome["ok"] + outcome["shed"] == outcome["submitted"]
    return {
        "queue_limit": queue_limit,
        "submitted": outcome["submitted"],
        "ok": outcome["ok"],
        "shed": outcome["shed"],
        "shed_total_metric": shed_metric,
        "all_accounted": bool(accounted),
        "metrics_consistent": bool(shed_metric == outcome["shed"]),
        "ok_shape": bool(
            accounted and outcome["shed"] > 0 and shed_metric == outcome["shed"]
        ),
    }


def run_bench_serve(
    wheel_size: int = 1000,
    clients: int = 64,
    requests_per_client: int = 32,
    n_draws: int = 8,
    seed: int = 0,
    method: str = "log_bidding",
    max_batch: int = 64,
    max_delay_us: float = 200.0,
    gate_target: float = 10.0,
) -> Dict[str, Any]:
    """Measure batched vs naive serving and assemble the report.

    The default configuration is the acceptance gate: 64 closed-loop
    clients against a 1000-item ``log_bidding`` wheel, requiring >= 10x
    requests/s of the micro-batching scheduler over the per-request
    validate+select baseline.
    """
    if wheel_size < 2:
        raise ValueError(f"wheel_size must be >= 2, got {wheel_size}")
    if clients <= 0 or requests_per_client <= 0 or n_draws <= 0:
        raise ValueError("clients, requests_per_client, n_draws must be positive")
    fitness = np.arange(1.0, wheel_size + 1.0)
    total_requests = clients * requests_per_client

    def measure(make_scheduler) -> Tuple[Any, float]:
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        scheduler = make_scheduler(registry)

        async def go() -> float:
            # Warm-up round primes allocators and compiled tables.
            await run_closed_loop(
                scheduler, wheel_id, clients=min(clients, 8),
                requests_per_client=1, n_draws=n_draws,
            )
            elapsed = await run_closed_loop(
                scheduler, wheel_id, clients=clients,
                requests_per_client=requests_per_client, n_draws=n_draws,
            )
            close = getattr(scheduler, "close", None)
            if close is not None:
                await close()
            return elapsed

        return scheduler, asyncio.run(go())

    config = BatchConfig(max_batch=max_batch, max_delay_us=max_delay_us)
    naive, naive_s = measure(lambda r: NaiveScheduler(r, seed=seed))
    cached, cached_s = measure(lambda r: _CachedNaiveScheduler(r, seed=seed))
    batched, batched_s = measure(
        lambda r: MicroBatchScheduler(r, config, seed=seed)
    )

    legs = {
        "naive": _leg_report(naive, naive_s, total_requests, n_draws),
        "cached_naive": _leg_report(cached, cached_s, total_requests, n_draws),
        "batched": _leg_report(batched, batched_s, total_requests, n_draws),
    }
    gate_speedup = (
        legs["batched"]["requests_per_s"] / legs["naive"]["requests_per_s"]
        if legs["naive"]["requests_per_s"] > 0
        else 0.0
    )
    determinism = _determinism_certificate(wheel_size, seed)
    overload = _overload_probe(wheel_size, seed)

    return {
        "schema": BENCH_SERVE_SCHEMA,
        "config": {
            "wheel_size": wheel_size,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "n_draws": n_draws,
            "seed": seed,
            "method": method,
            "max_batch": max_batch,
            "max_delay_us": max_delay_us,
        },
        "results": {
            "legs": legs,
            "gate_target": gate_target,
            "gate_speedup": gate_speedup,
            "gate_met": bool(gate_speedup >= gate_target),
            "determinism": determinism,
            "overload": overload,
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench_serve(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed serve bench.

    Layout plus the two *correctness* certificates (determinism and
    overload shape) are required; the performance gate itself is
    recorded but not required, because a loaded shared CI runner may
    legitimately miss a throughput target.
    """
    if not isinstance(report, dict):
        raise ValueError(f"report must be a dict, got {type(report).__name__}")
    if report.get("schema") != BENCH_SERVE_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_SERVE_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing or malformed section {section!r}")
    results = report["results"]
    for key in _REQUIRED_RESULT_KEYS:
        if key not in results:
            raise ValueError(f"results missing key {key!r}")
    legs = results["legs"]
    for leg in ("naive", "batched"):
        if leg not in legs:
            raise ValueError(f"results.legs missing leg {leg!r}")
        for key in _REQUIRED_LEG_KEYS:
            if key not in legs[leg]:
                raise ValueError(f"leg {leg!r} missing key {key!r}")
        if legs[leg]["requests_per_s"] <= 0:
            raise ValueError(f"leg {leg!r} recorded no throughput")
    determinism = results["determinism"]
    if not determinism.get("ok"):
        raise ValueError(
            "coalescing-determinism certificate failed: solo and coalesced "
            "responses are not bit-identical"
        )
    for name, entry in determinism.get("methods", {}).items():
        if not entry.get("bitwise_identical"):
            raise ValueError(f"determinism certificate failed for method {name!r}")
    overload = results["overload"]
    if not overload.get("ok_shape"):
        raise ValueError(
            "overload probe failed: expected every burst request accounted "
            "for (ok + shed == submitted) with a non-zero, metric-consistent "
            f"shed count; got {overload}"
        )
    if not isinstance(results["gate_met"], bool):
        raise ValueError("gate_met must be a bool")


def write_bench_serve(report: Dict[str, Any], path: str = "BENCH_serve.json") -> str:
    """Validate and persist the report; returns the path written."""
    validate_bench_serve(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_bench_serve(report: Dict[str, Any]) -> str:
    """Human-readable summary of a serve bench report."""
    config = report["config"]
    results = report["results"]
    lines = [
        f"bench-serve: {config['clients']} clients x "
        f"{config['requests_per_client']} reqs, n={config['wheel_size']}, "
        f"method={config['method']}, draws/req={config['n_draws']}",
        "",
        f"{'leg':<14}{'req/s':>12}{'p50 us':>10}{'p99 us':>10}{'mean batch':>12}",
    ]
    for name in ("naive", "cached_naive", "batched"):
        leg = results["legs"].get(name)
        if leg is None:
            continue
        lines.append(
            f"{name:<14}{leg['requests_per_s']:>12.0f}"
            f"{leg['latency']['p50_us']:>10.0f}"
            f"{leg['latency']['p99_us']:>10.0f}"
            f"{leg['batch_sizes']['mean_size']:>12.2f}"
        )
    gate = "MET" if results["gate_met"] else "missed"
    lines += [
        "",
        f"gate: batched/naive = {results['gate_speedup']:.1f}x "
        f"(target {results['gate_target']:.0f}x) -> {gate}",
        f"determinism certificate: "
        f"{'ok' if results['determinism']['ok'] else 'FAILED'} "
        f"({', '.join(results['determinism']['methods'])})",
        f"overload probe: {results['overload']['ok']} ok / "
        f"{results['overload']['shed']} shed of "
        f"{results['overload']['submitted']} "
        f"(shape {'ok' if results['overload']['ok_shape'] else 'FAILED'})",
    ]
    return "\n".join(lines)
