"""Load generation and the recorded ``bench-serve`` report.

Two generator shapes, matching how services are actually characterised:

* **closed loop** (:func:`run_closed_loop`): each of ``clients``
  concurrent clients waits for its response before sending the next
  request — throughput emerges from latency, the shape behind the
  headline batched-vs-naive gate;
* **open loop** (:func:`run_open_loop`): the whole request burst is
  submitted at once regardless of responses — offered load exceeds
  capacity and the service must shed; this drives the overload probe.

Both of those drive a scheduler in-process.  The third shape goes over
the wire: :func:`run_tcp_load` forks ``procs`` client *processes*, each
running an asyncio closed loop of real TCP connections speaking either
JSON-lines or binary frames, and merges the per-process latency
histograms exactly.  One Python client event loop saturates around the
throughput an 8-worker server can sustain, so without the fan-out the
bench would measure the client; with it, the server is the bottleneck
again.

:func:`run_bench_serve` assembles the full report in the same
run/validate/write/render shape as the repo's other benches, persisted
as ``BENCH_serve.json`` by ``python -m repro bench-serve``:

* the PR 5 scheduler legs (naive / cached_naive / batched) and their
  >= 10x coalescing gate, coalescing-determinism certificate, and
  overload probe;
* a **protocol** leg pair — the same closed-loop TCP workload spoken as
  JSON-lines vs binary frames — gated at >= 2x;
* a **cluster** worker sweep (1, 2, 4, 8 shard processes) with scaling
  efficiency, auto-skipped (with the reason recorded) when the host has
  fewer than 4 cores, plus the **per-shard determinism certificate**:
  byte-identical draws from a 1-worker and an N-worker cluster.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.errors import ServiceOverloadedError
from repro.rng.streams import request_stream
from repro.service import frames as frames_mod
from repro.service.cluster import ClusterService
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import raise_structured
from repro.service.registry import WheelRegistry, digest_key
from repro.service.scheduler import BatchConfig, MicroBatchScheduler, NaiveScheduler
from repro.service.server import SelectionService, start_tcp_server

__all__ = [
    "run_closed_loop",
    "run_open_loop",
    "run_tcp_load",
    "run_bench_serve",
    "validate_bench_serve",
    "write_bench_serve",
    "render_bench_serve",
    "BENCH_SERVE_SCHEMA",
]

#: Schema tag for BENCH_serve.json (bump on layout changes).  v2 adds
#: the protocol (frames-vs-jsonl) and cluster (worker-sweep + per-shard
#: determinism) sections.
BENCH_SERVE_SCHEMA = "repro/bench-serve/v2"

#: Methods covered by the coalescing-determinism certificate: the
#: paper's method plus one representative of each other kernel family.
_CERTIFICATE_METHODS = ("log_bidding", "gumbel", "alias")

#: Keys every results block must carry (checked by the CI smoke job).
_REQUIRED_RESULT_KEYS = (
    "legs",
    "gate_target",
    "gate_speedup",
    "gate_met",
    "determinism",
    "overload",
    "protocol",
    "cluster",
)

_REQUIRED_LEG_KEYS = (
    "requests",
    "elapsed_s",
    "requests_per_s",
    "latency",
    "batch_sizes",
)

#: The worker counts the cluster sweep targets on a big-enough host.
_CLUSTER_SWEEP = (1, 2, 4, 8)

#: Scaling-efficiency gate: throughput(4) / (4 * throughput(1)).
_SCALING_GATE_WORKERS = 4
_SCALING_GATE_TARGET = 0.7

#: Binary frames must beat JSON-lines by this factor on the TCP legs.
_PROTOCOL_GATE_TARGET = 2.0


async def run_closed_loop(
    scheduler,
    wheel_id: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
) -> float:
    """Closed-loop load: each client awaits its response before the next.

    Returns elapsed wall seconds for the whole run.  Request seeds are
    assigned by the scheduler's monotonic counter, so reruns against the
    same seed replay the same draws.
    """

    async def client(_: int) -> None:
        for _ in range(requests_per_client):
            await scheduler.draw(wheel_id, n_draws)

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    return time.perf_counter() - start


async def run_open_loop(
    scheduler,
    wheel_id: str,
    *,
    requests: int,
    n_draws: int,
    timeout_s: float = 30.0,
) -> Dict[str, int]:
    """Open-loop burst: submit everything at once, count the outcomes.

    Every request completes one way or another inside ``timeout_s`` —
    the no-hang guarantee the overload acceptance drill asserts.
    """

    async def one() -> str:
        try:
            await scheduler.draw(wheel_id, n_draws)
            return "ok"
        except ServiceOverloadedError:
            return "shed"

    results = await asyncio.wait_for(
        asyncio.gather(*(one() for _ in range(requests))), timeout=timeout_s
    )
    return {
        "submitted": requests,
        "ok": sum(1 for r in results if r == "ok"),
        "shed": sum(1 for r in results if r == "shed"),
    }


# ----------------------------------------------------------------------
# Multi-process TCP load generation
# ----------------------------------------------------------------------


async def _tcp_client(
    kind: str,
    host: str,
    port: int,
    wheel_id: str,
    requests_per_client: int,
    n_draws: int,
    seed_base: int,
    hist: LatencyHistogram,
) -> int:
    """One closed-loop TCP connection; returns requests completed."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(requests_per_client):
            request = {
                "op": "draw",
                "wheel": wheel_id,
                "n": n_draws,
                "seed": seed_base + i,
            }
            start = time.perf_counter()
            if kind == "frames":
                writer.write(frames_mod.request_to_frame(request))
                await writer.drain()
                frame = await frames_mod.read_frame(
                    reader, max_body_bytes=64 << 20
                )
                if frame is None:
                    raise ConnectionError("server closed mid-run")
                response = frames_mod.frame_to_response(*frame)
            else:
                writer.write(
                    (json.dumps(request, separators=(",", ":")) + "\n").encode()
                )
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ConnectionError("server closed mid-run")
                response = json.loads(line)
            raise_structured(response)
            hist.observe(time.perf_counter() - start)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return requests_per_client


def _loadgen_proc(args: Tuple) -> Dict[str, Any]:
    """One load-generator process: drive its client share, report stats.

    Top-level (not a closure) so it survives every multiprocessing start
    method.  Latencies are recorded into a local histogram whose full
    state ships back for exact merging.
    """
    kind, host, port, wheel_id, clients, requests_per_client, n_draws, seed0 = args
    hist = LatencyHistogram()

    async def go() -> float:
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _tcp_client(
                    kind,
                    host,
                    port,
                    wheel_id,
                    requests_per_client,
                    n_draws,
                    seed0 + c * requests_per_client,
                    hist,
                )
                for c in range(clients)
            )
        )
        return time.perf_counter() - start

    elapsed = asyncio.run(go())
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "elapsed_s": elapsed,
        "latency_state": hist.state(),
    }


def _split_clients(clients: int, procs: int) -> List[int]:
    base, extra = divmod(clients, procs)
    return [base + (1 if p < extra else 0) for p in range(procs)]


async def run_tcp_load(
    host: str,
    port: int,
    wheel_id: str,
    *,
    kind: str = "frames",
    clients: int = 64,
    requests_per_client: int = 16,
    n_draws: int = 8,
    procs: int = 1,
    seed_base: int = 0,
) -> Dict[str, Any]:
    """Drive a listening server from ``procs`` client processes.

    Runs inside the server's event loop: the process pool is awaited via
    an executor thread so the server keeps serving while the clients
    hammer it.  Per-process latency histograms merge exactly
    (:meth:`LatencyHistogram.merge_state`); throughput uses the
    conservative convention ``total requests / slowest process elapsed``.
    """
    if kind not in ("frames", "jsonl"):
        raise ValueError(f"kind must be 'frames' or 'jsonl', got {kind!r}")
    if procs <= 0:
        raise ValueError(f"procs must be positive, got {procs}")
    procs = min(procs, clients)
    shares = _split_clients(clients, procs)
    args = []
    offset = seed_base
    for share in shares:
        args.append(
            (kind, host, port, wheel_id, share, requests_per_client, n_draws, offset)
        )
        offset += share * requests_per_client
    loop = asyncio.get_running_loop()
    if procs == 1:
        # Single generator: no fork needed, run it on a thread so the
        # server loop stays responsive.
        results = [await loop.run_in_executor(None, _loadgen_proc, args[0])]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(procs) as pool:
            results = await loop.run_in_executor(
                None, pool.map, _loadgen_proc, args
            )
    merged = LatencyHistogram()
    for result in results:
        merged.merge_state(result["latency_state"])
    total_requests = sum(r["requests"] for r in results)
    elapsed = max(r["elapsed_s"] for r in results)
    return {
        "kind": kind,
        "procs": procs,
        "clients": clients,
        "requests": total_requests,
        "draws": total_requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": total_requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": merged.snapshot(),
        "per_proc": [
            {"requests": r["requests"], "elapsed_s": r["elapsed_s"]} for r in results
        ],
    }


# ----------------------------------------------------------------------
# In-process scheduler legs (PR 5)
# ----------------------------------------------------------------------


class _CachedNaiveScheduler:
    """Secondary baseline: compiled cache hit per request, no coalescing.

    Isolates the two effects the batched leg stacks: against ``naive``
    it shows the caching win, against ``batched`` the coalescing win.
    """

    def __init__(self, registry: WheelRegistry, *, seed: int = 0, metrics=None):
        self.registry = registry
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._request_counter = 0

    async def draw(self, wheel_id: str, n: int, **_: Any) -> np.ndarray:
        seed = self._request_counter
        self._request_counter += 1
        wheel = self.registry.get(wheel_id)
        start = time.monotonic()
        self.metrics.enqueued(int(n))
        rng = request_stream(self.seed, digest_key(wheel_id), seed)
        draws = wheel.select_many(int(n), rng)
        self.metrics.dequeued()
        self.metrics.batch_sizes.observe(1)
        self.metrics.served(time.monotonic() - start)
        await asyncio.sleep(0)
        return draws


def _leg_report(
    scheduler, elapsed: float, requests: int, n_draws: int
) -> Dict[str, Any]:
    metrics = scheduler.metrics
    return {
        "requests": requests,
        "draws": requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": metrics.latency.snapshot(),
        "batch_sizes": metrics.batch_sizes.snapshot(),
    }


def _determinism_certificate(
    wheel_size: int, seed: int, *, methods: Sequence[str] = _CERTIFICATE_METHODS
) -> Dict[str, Any]:
    """Certify responses are bit-identical solo vs coalesced.

    For each method, the same ``(wheel, n, seed)`` request set is served
    three ways — fully coalesced (``max_batch`` large), strictly solo
    (``max_batch=1``), and directly via ``select_many`` on the compiled
    wheel with the request's replayed substream — and all three must
    agree byte for byte.
    """
    sizes = [1, 3, 17, 64, 5, 128, 2, 31]
    per_method: Dict[str, Any] = {}
    all_ok = True
    for method in methods:
        fitness = np.arange(1.0, wheel_size + 1.0)
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        wheel = registry.get(wheel_id)

        async def serve(max_batch: int) -> List[np.ndarray]:
            sched = MicroBatchScheduler(
                registry,
                BatchConfig(max_batch=max_batch, max_delay_us=500.0),
                seed=seed,
            )
            out = await asyncio.gather(
                *(
                    sched.draw(wheel_id, n, seed=i)
                    for i, n in enumerate(sizes)
                )
            )
            await sched.close()
            return out

        coalesced = asyncio.run(serve(max_batch=len(sizes)))
        solo = asyncio.run(serve(max_batch=1))
        direct = [
            wheel.select_many(
                n, request_stream(seed, digest_key(wheel_id), i)
            )
            for i, n in enumerate(sizes)
        ]
        ok = all(
            np.array_equal(c, s) and np.array_equal(c, d)
            for c, s, d in zip(coalesced, solo, direct)
        )
        all_ok = all_ok and ok
        per_method[method] = {
            "requests": len(sizes),
            "sizes": sizes,
            "bitwise_identical": bool(ok),
        }
    return {"methods": per_method, "ok": bool(all_ok)}


def _overload_probe(
    wheel_size: int, seed: int, *, queue_limit: int = 8, burst: int = 96
) -> Dict[str, Any]:
    """The acceptance drill: a burst far past ``queue_limit``.

    Asserts the contract shape — every request answered (ok or shed),
    nothing hangs, and the shed count shows up in metrics.
    """
    registry = WheelRegistry()
    wheel_id, _ = registry.register(np.arange(1.0, wheel_size + 1.0))
    scheduler = MicroBatchScheduler(
        registry,
        BatchConfig(max_batch=16, max_delay_us=200.0, queue_limit=queue_limit),
        seed=seed,
    )

    async def drill() -> Dict[str, int]:
        outcome = await run_open_loop(
            scheduler, wheel_id, requests=burst, n_draws=4, timeout_s=30.0
        )
        await scheduler.close()
        return outcome

    outcome = asyncio.run(drill())
    shed_metric = scheduler.metrics.shed_total
    accounted = outcome["ok"] + outcome["shed"] == outcome["submitted"]
    return {
        "queue_limit": queue_limit,
        "submitted": outcome["submitted"],
        "ok": outcome["ok"],
        "shed": outcome["shed"],
        "shed_total_metric": shed_metric,
        "all_accounted": bool(accounted),
        "metrics_consistent": bool(shed_metric == outcome["shed"]),
        "ok_shape": bool(
            accounted and outcome["shed"] > 0 and shed_metric == outcome["shed"]
        ),
    }


# ----------------------------------------------------------------------
# Protocol (frames vs JSON-lines) legs
# ----------------------------------------------------------------------


def _measure_protocol_leg(
    kind: str,
    fitness: np.ndarray,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    """One TCP leg: ephemeral server, multi-process closed-loop clients."""
    service = SelectionService(seed=seed, config=config)
    wheel_id, _ = service.registry.register(fitness, method=method)

    async def go() -> Dict[str, Any]:
        server = await start_tcp_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            # Warm-up primes connections, allocators, compiled tables.
            await run_tcp_load(
                "127.0.0.1", port, wheel_id, kind=kind,
                clients=min(clients, 8), requests_per_client=2,
                n_draws=n_draws, procs=1, seed_base=1 << 40,
            )
            return await run_tcp_load(
                "127.0.0.1", port, wheel_id, kind=kind,
                clients=clients, requests_per_client=requests_per_client,
                n_draws=n_draws, procs=procs, seed_base=0,
            )
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    leg = asyncio.run(go())
    leg["batch_sizes"] = service.metrics.batch_sizes.snapshot()
    return leg


def _protocol_section(
    fitness: np.ndarray,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    legs = {
        kind: _measure_protocol_leg(
            kind, fitness, method,
            clients=clients, requests_per_client=requests_per_client,
            n_draws=n_draws, seed=seed, procs=procs, config=config,
        )
        for kind in ("jsonl", "frames")
    }
    jsonl_rps = legs["jsonl"]["requests_per_s"]
    speedup = legs["frames"]["requests_per_s"] / jsonl_rps if jsonl_rps > 0 else 0.0
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "n_draws": n_draws,
        "procs": procs,
        "legs": legs,
        "speedup": speedup,
        "gate_target": _PROTOCOL_GATE_TARGET,
        "gate_met": bool(speedup >= _PROTOCOL_GATE_TARGET),
    }


# ----------------------------------------------------------------------
# Cluster sweep + per-shard determinism certificate
# ----------------------------------------------------------------------


def _measure_cluster_leg(
    workers: int,
    fitness_vectors: List[np.ndarray],
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    """Throughput of a ``workers``-shard cluster over binary frames.

    Several distinct wheels are registered so the consistent-hash ring
    actually spreads load across shards; clients round-robin over them.
    """
    cluster = ClusterService(workers=workers, seed=seed, config=config)

    async def go() -> Dict[str, Any]:
        wheel_ids = []
        for fitness in fitness_vectors:
            reply = await cluster.handle_request(
                {"op": "register", "fitness": fitness, "method": method}
            )
            raise_structured(reply)
            wheel_ids.append(reply["wheel"])
        server = await start_tcp_server(cluster, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            per_wheel_clients = _split_clients(clients, len(wheel_ids))
            seed0 = 0
            loads = []
            for wheel_id, share in zip(wheel_ids, per_wheel_clients):
                if share == 0:
                    continue
                loads.append(
                    run_tcp_load(
                        "127.0.0.1", port, wheel_id, kind="frames",
                        clients=share, requests_per_client=requests_per_client,
                        n_draws=n_draws, procs=max(1, procs // len(wheel_ids)),
                        seed_base=seed0,
                    )
                )
                seed0 += share * requests_per_client
            start = time.perf_counter()
            results = await asyncio.gather(*loads)
            elapsed = time.perf_counter() - start
            stats = await cluster.stats()
            return {"results": results, "elapsed_s": elapsed, "stats": stats}
        finally:
            server.close()
            await server.wait_closed()
            await cluster.close()

    out = asyncio.run(go())
    total_requests = sum(r["requests"] for r in out["results"])
    elapsed = out["elapsed_s"]
    # Per-wheel loads report snapshots; the worst wheel bounds the leg.
    p99 = max((r["latency"]["p99_us"] for r in out["results"]), default=0.0)
    p50 = max((r["latency"]["p50_us"] for r in out["results"]), default=0.0)
    shard_stats = out["stats"]["shards"]
    return {
        "workers": workers,
        "requests": total_requests,
        "draws": total_requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": total_requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": {"p50_us": p50, "p99_us": p99},
        "routing": out["stats"]["routed"],
        "routing_max_share": out["stats"]["routing_max_share"],
        "batch_mean_size": (
            sum(s["batch_sizes"]["mean_size"] * s["batch_sizes"]["batches"] for s in shard_stats)
            / max(1, sum(s["batch_sizes"]["batches"] for s in shard_stats))
        ),
        "compiles": sum(s["registry"]["compiles"] for s in shard_stats),
        "store_hits": sum(s["registry"]["store_hits"] for s in shard_stats),
    }


def _cluster_determinism_certificate(
    wheel_size: int, seed: int, *, workers: int = 3, method: str = "log_bidding"
) -> Dict[str, Any]:
    """The per-shard determinism certificate.

    The same ``(wheel_id, request seed)`` set — several wheels so the
    ring routes to different shards, varied draw sizes — is served by a
    1-worker and a ``workers``-worker cluster with the same service
    seed, and replayed directly on a compiled wheel.  All three must be
    byte-identical: shard placement and coalescing are invisible in the
    draws.
    """
    sizes = [1, 5, 33, 64, 2, 17]
    vectors = [
        np.arange(1.0, wheel_size + 1.0),
        np.arange(wheel_size, 0.0, -1.0),
        np.linspace(0.5, 7.5, wheel_size),
    ]

    def serve(n_workers: int) -> List[List[np.ndarray]]:
        cluster = ClusterService(workers=n_workers, seed=seed)

        async def go() -> List[List[np.ndarray]]:
            out: List[List[np.ndarray]] = []
            for fitness in vectors:
                reply = await cluster.handle_request(
                    {"op": "register", "fitness": fitness, "method": method}
                )
                raise_structured(reply)
                wheel_id = reply["wheel"]
                responses = await asyncio.gather(
                    *(
                        cluster.handle_request(
                            {"op": "draw", "wheel": wheel_id, "n": n, "seed": i}
                        )
                        for i, n in enumerate(sizes)
                    )
                )
                for r in responses:
                    raise_structured(r)
                out.append([np.asarray(r["draws"]) for r in responses])
            await cluster.close()
            return out

        return asyncio.run(go())

    single = serve(1)
    multi = serve(workers)
    registry = WheelRegistry()
    per_wheel = []
    all_ok = True
    for v_idx, fitness in enumerate(vectors):
        wheel_id, _ = registry.register(fitness, method=method)
        wheel = registry.get(wheel_id)
        direct = [
            wheel.select_many(n, request_stream(seed, digest_key(wheel_id), i))
            for i, n in enumerate(sizes)
        ]
        ok = all(
            np.array_equal(s, m) and np.array_equal(s, d)
            for s, m, d in zip(single[v_idx], multi[v_idx], direct)
        )
        all_ok = all_ok and ok
        per_wheel.append({"wheel": wheel_id, "bitwise_identical": bool(ok)})
    return {
        "workers_compared": [1, workers],
        "method": method,
        "sizes": sizes,
        "wheels": per_wheel,
        "ok": bool(all_ok),
    }


def _default_cluster_sweep(cpu_count: int) -> List[int]:
    """Worker counts to measure: the full {1,2,4,8} sweep on a >= 4 core
    host, a minimal {1,2} path-exercise otherwise."""
    if cpu_count >= _SCALING_GATE_WORKERS:
        return [w for w in _CLUSTER_SWEEP if w <= max(8, cpu_count)]
    return [1, 2]


def _cluster_section(
    wheel_size: int,
    seed: int,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    procs: int,
    config: BatchConfig,
    workers_sweep: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    cpu_count = os.cpu_count() or 1
    sweep = (
        list(workers_sweep)
        if workers_sweep is not None
        else _default_cluster_sweep(cpu_count)
    )
    # Distinct wheels so the ring spreads load; deterministic contents.
    fitness_vectors = [
        np.arange(1.0, wheel_size + 1.0) * (1.0 + 0.01 * k) for k in range(8)
    ]
    legs = [
        _measure_cluster_leg(
            w, fitness_vectors, method,
            clients=clients, requests_per_client=requests_per_client,
            n_draws=n_draws, seed=seed, procs=procs, config=config,
        )
        for w in sweep
    ]
    by_workers = {str(leg["workers"]): leg for leg in legs}
    base = by_workers.get("1", legs[0])
    efficiency = {
        str(leg["workers"]): (
            leg["requests_per_s"] / (leg["workers"] * base["requests_per_s"])
            if base["requests_per_s"] > 0
            else 0.0
        )
        for leg in legs
    }
    gate_key = str(_SCALING_GATE_WORKERS)
    if cpu_count < _SCALING_GATE_WORKERS:
        scaling = {
            "gate_target": _SCALING_GATE_TARGET,
            "gate_workers": _SCALING_GATE_WORKERS,
            "gate_met": None,
            "skipped": True,
            "skip_reason": (
                f"cpu_count={cpu_count} < {_SCALING_GATE_WORKERS}: scaling "
                f"efficiency is not measurable on this host; sweep limited "
                f"to workers={sweep} to exercise the multi-process path"
            ),
            "efficiency": efficiency,
        }
    else:
        eff4 = efficiency.get(gate_key, 0.0)
        scaling = {
            "gate_target": _SCALING_GATE_TARGET,
            "gate_workers": _SCALING_GATE_WORKERS,
            "gate_met": bool(eff4 >= _SCALING_GATE_TARGET),
            "skipped": False,
            "skip_reason": None,
            "efficiency": efficiency,
        }
    return {
        "cpu_count": cpu_count,
        "workers_sweep": sweep,
        "legs": by_workers,
        "scaling": scaling,
        "determinism": _cluster_determinism_certificate(wheel_size, seed),
    }


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------


def run_bench_serve(
    wheel_size: int = 1000,
    clients: int = 64,
    requests_per_client: int = 32,
    n_draws: int = 8,
    seed: int = 0,
    method: str = "log_bidding",
    max_batch: int = 64,
    max_delay_us: float = 200.0,
    gate_target: float = 10.0,
    procs: int = 1,
    cluster_workers: Optional[Sequence[int]] = None,
    protocol_draws: int = 1024,
    protocol_requests_per_client: int = 16,
) -> Dict[str, Any]:
    """Measure the serving stack end to end and assemble the report.

    The default configuration is the acceptance gate: 64 closed-loop
    clients against a 1000-item ``log_bidding`` wheel, requiring >= 10x
    requests/s of the micro-batching scheduler over the per-request
    validate+select baseline, >= 2x of binary frames over JSON-lines on
    the TCP legs, and (on hosts with >= 4 cores) >= 0.7 scaling
    efficiency at 4 cluster workers.
    """
    if wheel_size < 2:
        raise ValueError(f"wheel_size must be >= 2, got {wheel_size}")
    if clients <= 0 or requests_per_client <= 0 or n_draws <= 0:
        raise ValueError("clients, requests_per_client, n_draws must be positive")
    if procs <= 0:
        raise ValueError(f"procs must be positive, got {procs}")
    fitness = np.arange(1.0, wheel_size + 1.0)
    total_requests = clients * requests_per_client

    def measure(make_scheduler) -> Tuple[Any, float]:
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        scheduler = make_scheduler(registry)

        async def go() -> float:
            # Warm-up round primes allocators and compiled tables.
            await run_closed_loop(
                scheduler, wheel_id, clients=min(clients, 8),
                requests_per_client=1, n_draws=n_draws,
            )
            elapsed = await run_closed_loop(
                scheduler, wheel_id, clients=clients,
                requests_per_client=requests_per_client, n_draws=n_draws,
            )
            close = getattr(scheduler, "close", None)
            if close is not None:
                await close()
            return elapsed

        return scheduler, asyncio.run(go())

    config = BatchConfig(max_batch=max_batch, max_delay_us=max_delay_us)
    naive, naive_s = measure(lambda r: NaiveScheduler(r, seed=seed))
    cached, cached_s = measure(lambda r: _CachedNaiveScheduler(r, seed=seed))
    batched, batched_s = measure(
        lambda r: MicroBatchScheduler(r, config, seed=seed)
    )

    legs = {
        "naive": _leg_report(naive, naive_s, total_requests, n_draws),
        "cached_naive": _leg_report(cached, cached_s, total_requests, n_draws),
        "batched": _leg_report(batched, batched_s, total_requests, n_draws),
    }
    gate_speedup = (
        legs["batched"]["requests_per_s"] / legs["naive"]["requests_per_s"]
        if legs["naive"]["requests_per_s"] > 0
        else 0.0
    )
    determinism = _determinism_certificate(wheel_size, seed)
    overload = _overload_probe(wheel_size, seed)
    protocol = _protocol_section(
        fitness, method,
        clients=clients, requests_per_client=protocol_requests_per_client,
        n_draws=protocol_draws, seed=seed, procs=procs, config=config,
    )
    cluster = _cluster_section(
        wheel_size, seed, method,
        clients=clients, requests_per_client=requests_per_client,
        n_draws=n_draws, procs=procs, config=config,
        workers_sweep=cluster_workers,
    )

    return {
        "schema": BENCH_SERVE_SCHEMA,
        "config": {
            "wheel_size": wheel_size,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "n_draws": n_draws,
            "seed": seed,
            "method": method,
            "max_batch": max_batch,
            "max_delay_us": max_delay_us,
            "procs": procs,
            "protocol_draws": protocol_draws,
            "protocol_requests_per_client": protocol_requests_per_client,
        },
        "results": {
            "legs": legs,
            "gate_target": gate_target,
            "gate_speedup": gate_speedup,
            "gate_met": bool(gate_speedup >= gate_target),
            "determinism": determinism,
            "overload": overload,
            "protocol": protocol,
            "cluster": cluster,
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench_serve(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed serve bench.

    Layout plus the *correctness* certificates — coalescing determinism,
    the per-shard cluster determinism certificate, and the overload
    shape — are required; the performance gates themselves are recorded
    but not required, because a loaded shared CI runner may legitimately
    miss a throughput target.  The scaling gate must either be evaluated
    or carry an explicit skip reason.
    """
    if not isinstance(report, dict):
        raise ValueError(f"report must be a dict, got {type(report).__name__}")
    if report.get("schema") != BENCH_SERVE_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_SERVE_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing or malformed section {section!r}")
    results = report["results"]
    for key in _REQUIRED_RESULT_KEYS:
        if key not in results:
            raise ValueError(f"results missing key {key!r}")
    legs = results["legs"]
    for leg in ("naive", "batched"):
        if leg not in legs:
            raise ValueError(f"results.legs missing leg {leg!r}")
        for key in _REQUIRED_LEG_KEYS:
            if key not in legs[leg]:
                raise ValueError(f"leg {leg!r} missing key {key!r}")
        if legs[leg]["requests_per_s"] <= 0:
            raise ValueError(f"leg {leg!r} recorded no throughput")
    determinism = results["determinism"]
    if not determinism.get("ok"):
        raise ValueError(
            "coalescing-determinism certificate failed: solo and coalesced "
            "responses are not bit-identical"
        )
    for name, entry in determinism.get("methods", {}).items():
        if not entry.get("bitwise_identical"):
            raise ValueError(f"determinism certificate failed for method {name!r}")
    overload = results["overload"]
    if not overload.get("ok_shape"):
        raise ValueError(
            "overload probe failed: expected every burst request accounted "
            "for (ok + shed == submitted) with a non-zero, metric-consistent "
            f"shed count; got {overload}"
        )
    protocol = results["protocol"]
    for kind in ("jsonl", "frames"):
        leg = protocol.get("legs", {}).get(kind)
        if not leg or leg.get("requests_per_s", 0) <= 0:
            raise ValueError(f"protocol leg {kind!r} missing or recorded no throughput")
    if not isinstance(protocol.get("gate_met"), bool):
        raise ValueError("protocol.gate_met must be a bool")
    cluster = results["cluster"]
    cert = cluster.get("determinism", {})
    if not cert.get("ok"):
        raise ValueError(
            "per-shard determinism certificate failed: 1-worker and "
            "N-worker clusters did not return byte-identical draws"
        )
    for entry in cert.get("wheels", []):
        if not entry.get("bitwise_identical"):
            raise ValueError(
                f"per-shard determinism failed for wheel {entry.get('wheel')!r}"
            )
    scaling = cluster.get("scaling", {})
    if scaling.get("skipped"):
        if not scaling.get("skip_reason"):
            raise ValueError("skipped scaling gate must record a skip_reason")
    elif not isinstance(scaling.get("gate_met"), bool):
        raise ValueError("evaluated scaling gate must record a bool gate_met")
    if not cluster.get("legs"):
        raise ValueError("cluster section recorded no worker legs")
    for key, leg in cluster["legs"].items():
        if leg.get("requests_per_s", 0) <= 0:
            raise ValueError(f"cluster leg workers={key} recorded no throughput")
    if not isinstance(results["gate_met"], bool):
        raise ValueError("gate_met must be a bool")


def write_bench_serve(report: Dict[str, Any], path: str = "BENCH_serve.json") -> str:
    """Validate and persist the report; returns the path written."""
    validate_bench_serve(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_bench_serve(report: Dict[str, Any]) -> str:
    """Human-readable summary of a serve bench report."""
    config = report["config"]
    results = report["results"]
    lines = [
        f"bench-serve: {config['clients']} clients x "
        f"{config['requests_per_client']} reqs, n={config['wheel_size']}, "
        f"method={config['method']}, draws/req={config['n_draws']}",
        "",
        f"{'leg':<14}{'req/s':>12}{'p50 us':>10}{'p99 us':>10}{'mean batch':>12}",
    ]
    for name in ("naive", "cached_naive", "batched"):
        leg = results["legs"].get(name)
        if leg is None:
            continue
        lines.append(
            f"{name:<14}{leg['requests_per_s']:>12.0f}"
            f"{leg['latency']['p50_us']:>10.0f}"
            f"{leg['latency']['p99_us']:>10.0f}"
            f"{leg['batch_sizes']['mean_size']:>12.2f}"
        )
    gate = "MET" if results["gate_met"] else "missed"
    lines += [
        "",
        f"gate: batched/naive = {results['gate_speedup']:.1f}x "
        f"(target {results['gate_target']:.0f}x) -> {gate}",
        f"determinism certificate: "
        f"{'ok' if results['determinism']['ok'] else 'FAILED'} "
        f"({', '.join(results['determinism']['methods'])})",
        f"overload probe: {results['overload']['ok']} ok / "
        f"{results['overload']['shed']} shed of "
        f"{results['overload']['submitted']} "
        f"(shape {'ok' if results['overload']['ok_shape'] else 'FAILED'})",
    ]
    protocol = results.get("protocol")
    if protocol:
        pgate = "MET" if protocol["gate_met"] else "missed"
        lines += [
            "",
            f"protocol ({protocol['clients']} clients x "
            f"{protocol['n_draws']} draws/req, procs={protocol['procs']}):",
            f"  jsonl  {protocol['legs']['jsonl']['requests_per_s']:>10.0f} req/s",
            f"  frames {protocol['legs']['frames']['requests_per_s']:>10.0f} req/s",
            f"  frames/jsonl = {protocol['speedup']:.2f}x "
            f"(target {protocol['gate_target']:.0f}x) -> {pgate}",
        ]
    cluster = results.get("cluster")
    if cluster:
        lines += ["", f"cluster sweep (cpu_count={cluster['cpu_count']}):"]
        for key in sorted(cluster["legs"], key=int):
            leg = cluster["legs"][key]
            eff = cluster["scaling"]["efficiency"].get(key)
            line = f"  workers={key:<3}{leg['requests_per_s']:>10.0f} req/s"
            if eff is not None:
                line += f"  eff={eff:.2f}"
            lines.append(line)
        scaling = cluster["scaling"]
        if scaling["skipped"]:
            lines.append(f"  scaling gate: SKIPPED ({scaling['skip_reason']})")
        else:
            sgate = "MET" if scaling["gate_met"] else "missed"
            lines.append(
                f"  scaling gate: eff@{scaling['gate_workers']} >= "
                f"{scaling['gate_target']} -> {sgate}"
            )
        cert = cluster["determinism"]
        lines.append(
            f"  per-shard determinism (workers {cert['workers_compared']}): "
            f"{'ok' if cert['ok'] else 'FAILED'} across {len(cert['wheels'])} wheels"
        )
    return "\n".join(lines)
