"""Load generation and the recorded ``bench-serve`` report.

Two generator shapes, matching how services are actually characterised:

* **closed loop** (:func:`run_closed_loop`): each of ``clients``
  concurrent clients waits for its response before sending the next
  request — throughput emerges from latency, the shape behind the
  headline batched-vs-naive gate;
* **open loop** (:func:`run_open_loop`): the whole request burst is
  submitted at once regardless of responses — offered load exceeds
  capacity and the service must shed; this drives the overload probe.

Both of those drive a scheduler in-process.  The third shape goes over
the wire: :func:`run_tcp_load` forks ``procs`` client *processes*, each
running an asyncio closed loop of real TCP connections speaking either
JSON-lines or binary frames, and merges the per-process latency
histograms exactly.  One Python client event loop saturates around the
throughput an 8-worker server can sustain, so without the fan-out the
bench would measure the client; with it, the server is the bottleneck
again.

:func:`run_bench_serve` assembles the full report in the same
run/validate/write/render shape as the repo's other benches, persisted
as ``BENCH_serve.json`` by ``python -m repro bench-serve``:

* the PR 5 scheduler legs (naive / cached_naive / batched) and their
  >= 10x coalescing gate, coalescing-determinism certificate, and
  overload probe;
* a **protocol** leg pair — the same closed-loop TCP workload spoken as
  JSON-lines vs binary frames — gated at >= 2x;
* a **cluster** worker sweep (1, 2, 4, 8 shard processes) with scaling
  efficiency, auto-skipped (with the reason recorded) when the host has
  fewer than 4 cores, plus the **per-shard determinism certificate**:
  byte-identical draws from a 1-worker and an N-worker cluster.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.engine.compiled import AcceptanceWheel, CompiledWheel
from repro.errors import ServiceOverloadedError
from repro.rng.streams import request_stream
from repro.service import frames as frames_mod
from repro.service.cluster import ClusterService
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.protocol import raise_structured
from repro.service.registry import WheelRegistry, digest_key
from repro.service.scheduler import BatchConfig, MicroBatchScheduler, NaiveScheduler
from repro.service.server import SelectionService, start_tcp_server
from repro.tune.timers import median_of

__all__ = [
    "run_closed_loop",
    "run_open_loop",
    "run_tcp_load",
    "run_tcp_mutate_load",
    "run_bench_serve",
    "validate_bench_serve",
    "write_bench_serve",
    "render_bench_serve",
    "BENCH_SERVE_SCHEMA",
]

#: Schema tag for BENCH_serve.json (bump on layout changes).  v2 adds
#: the protocol (frames-vs-jsonl) and cluster (worker-sweep + per-shard
#: determinism) sections.  v3 adds the live-mutation sections: the
#: delta-update-vs-reregister gate, the ``--mutate`` served workload leg
#: with per-version latency histograms, the per-version determinism
#: certificate, and the served-vs-in-process dynamic colony loop.
BENCH_SERVE_SCHEMA = "repro/bench-serve/v3"

#: Methods covered by the coalescing-determinism certificate: the
#: paper's method plus one representative of each other kernel family.
_CERTIFICATE_METHODS = ("log_bidding", "gumbel", "alias")

#: Keys every results block must carry (checked by the CI smoke job).
_REQUIRED_RESULT_KEYS = (
    "legs",
    "gate_target",
    "gate_speedup",
    "gate_met",
    "determinism",
    "overload",
    "protocol",
    "cluster",
    "update",
    "colony",
)

_REQUIRED_LEG_KEYS = (
    "requests",
    "elapsed_s",
    "requests_per_s",
    "latency",
    "batch_sizes",
)

#: The worker counts the cluster sweep targets on a big-enough host.
_CLUSTER_SWEEP = (1, 2, 4, 8)

#: Scaling-efficiency gate: throughput(4) / (4 * throughput(1)).
_SCALING_GATE_WORKERS = 4
_SCALING_GATE_TARGET = 0.7

#: Binary frames must beat JSON-lines by this factor on the TCP legs.
_PROTOCOL_GATE_TARGET = 2.0

#: The delta-update path must beat re-register+recompile by this factor
#: for every measured delta size k <= n/100 at the gate wheel size.
_UPDATE_GATE_TARGET = 10.0
_UPDATE_GATE_N = 100_000
_UPDATE_GATE_KS = (10, 100, 1000)

#: The served dynamic colony loop (draws + per-iteration UPDATE over
#: binary frames) must stay within this factor of the in-process
#: vectorized loop — the "serving a live colony is viable" gate.
_COLONY_GATE_TARGET = 25.0


async def run_closed_loop(
    scheduler,
    wheel_id: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
) -> float:
    """Closed-loop load: each client awaits its response before the next.

    Returns elapsed wall seconds for the whole run.  Request seeds are
    assigned by the scheduler's monotonic counter, so reruns against the
    same seed replay the same draws.
    """

    async def client(_: int) -> None:
        for _ in range(requests_per_client):
            await scheduler.draw(wheel_id, n_draws)

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    return time.perf_counter() - start


async def run_open_loop(
    scheduler,
    wheel_id: str,
    *,
    requests: int,
    n_draws: int,
    timeout_s: float = 30.0,
) -> Dict[str, int]:
    """Open-loop burst: submit everything at once, count the outcomes.

    Every request completes one way or another inside ``timeout_s`` —
    the no-hang guarantee the overload acceptance drill asserts.
    """

    async def one() -> str:
        try:
            await scheduler.draw(wheel_id, n_draws)
            return "ok"
        except ServiceOverloadedError:
            return "shed"

    results = await asyncio.wait_for(
        asyncio.gather(*(one() for _ in range(requests))), timeout=timeout_s
    )
    return {
        "submitted": requests,
        "ok": sum(1 for r in results if r == "ok"),
        "shed": sum(1 for r in results if r == "shed"),
    }


# ----------------------------------------------------------------------
# Multi-process TCP load generation
# ----------------------------------------------------------------------


async def _tcp_client(
    kind: str,
    host: str,
    port: int,
    wheel_id: str,
    requests_per_client: int,
    n_draws: int,
    seed_base: int,
    hist: LatencyHistogram,
) -> int:
    """One closed-loop TCP connection; returns requests completed."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(requests_per_client):
            request = {
                "op": "draw",
                "wheel": wheel_id,
                "n": n_draws,
                "seed": seed_base + i,
            }
            start = time.perf_counter()
            if kind == "frames":
                writer.write(frames_mod.request_to_frame(request))
                await writer.drain()
                frame = await frames_mod.read_frame(
                    reader, max_body_bytes=64 << 20
                )
                if frame is None:
                    raise ConnectionError("server closed mid-run")
                response = frames_mod.frame_to_response(*frame)
            else:
                writer.write(
                    (json.dumps(request, separators=(",", ":")) + "\n").encode()
                )
                await writer.drain()
                line = await reader.readline()
                if not line:
                    raise ConnectionError("server closed mid-run")
                response = json.loads(line)
            raise_structured(response)
            hist.observe(time.perf_counter() - start)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return requests_per_client


def _loadgen_proc(args: Tuple) -> Dict[str, Any]:
    """One load-generator process: drive its client share, report stats.

    Top-level (not a closure) so it survives every multiprocessing start
    method.  Latencies are recorded into a local histogram whose full
    state ships back for exact merging.
    """
    kind, host, port, wheel_id, clients, requests_per_client, n_draws, seed0 = args
    hist = LatencyHistogram()

    async def go() -> float:
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _tcp_client(
                    kind,
                    host,
                    port,
                    wheel_id,
                    requests_per_client,
                    n_draws,
                    seed0 + c * requests_per_client,
                    hist,
                )
                for c in range(clients)
            )
        )
        return time.perf_counter() - start

    elapsed = asyncio.run(go())
    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        "elapsed_s": elapsed,
        "latency_state": hist.state(),
    }


def _split_clients(clients: int, procs: int) -> List[int]:
    base, extra = divmod(clients, procs)
    return [base + (1 if p < extra else 0) for p in range(procs)]


async def run_tcp_load(
    host: str,
    port: int,
    wheel_id: str,
    *,
    kind: str = "frames",
    clients: int = 64,
    requests_per_client: int = 16,
    n_draws: int = 8,
    procs: int = 1,
    seed_base: int = 0,
) -> Dict[str, Any]:
    """Drive a listening server from ``procs`` client processes.

    Runs inside the server's event loop: the process pool is awaited via
    an executor thread so the server keeps serving while the clients
    hammer it.  Per-process latency histograms merge exactly
    (:meth:`LatencyHistogram.merge_state`); throughput uses the
    conservative convention ``total requests / slowest process elapsed``.
    """
    if kind not in ("frames", "jsonl"):
        raise ValueError(f"kind must be 'frames' or 'jsonl', got {kind!r}")
    if procs <= 0:
        raise ValueError(f"procs must be positive, got {procs}")
    procs = min(procs, clients)
    shares = _split_clients(clients, procs)
    args = []
    offset = seed_base
    for share in shares:
        args.append(
            (kind, host, port, wheel_id, share, requests_per_client, n_draws, offset)
        )
        offset += share * requests_per_client
    loop = asyncio.get_running_loop()
    if procs == 1:
        # Single generator: no fork needed, run it on a thread so the
        # server loop stays responsive.
        results = [await loop.run_in_executor(None, _loadgen_proc, args[0])]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(procs) as pool:
            results = await loop.run_in_executor(
                None, pool.map, _loadgen_proc, args
            )
    merged = LatencyHistogram()
    for result in results:
        merged.merge_state(result["latency_state"])
    total_requests = sum(r["requests"] for r in results)
    elapsed = max(r["elapsed_s"] for r in results)
    return {
        "kind": kind,
        "procs": procs,
        "clients": clients,
        "requests": total_requests,
        "draws": total_requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": total_requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": merged.snapshot(),
        "per_proc": [
            {"requests": r["requests"], "elapsed_s": r["elapsed_s"]} for r in results
        ],
    }


# ----------------------------------------------------------------------
# Mutating TCP workload (--mutate): interleaved draws and UPDATEs
# ----------------------------------------------------------------------


async def _send_request(kind, reader, writer, request) -> Dict[str, Any]:
    """One request/response round trip on an open connection."""
    if kind == "frames":
        writer.write(frames_mod.request_to_frame(request))
        await writer.drain()
        frame = await frames_mod.read_frame(reader, max_body_bytes=64 << 20)
        if frame is None:
            raise ConnectionError("server closed mid-run")
        return frames_mod.frame_to_response(*frame)
    writer.write((json.dumps(request, separators=(",", ":")) + "\n").encode())
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed mid-run")
    return json.loads(line)


async def _mutate_tcp_client(
    kind: str,
    host: str,
    port: int,
    wheel_id: str,
    wheel_size: int,
    requests_per_client: int,
    n_draws: int,
    update_every: int,
    update_k: int,
    seed_base: int,
    draw_hists: Dict[int, LatencyHistogram],
    update_hist: LatencyHistogram,
) -> Tuple[int, int, int]:
    """One closed-loop client mixing draws with chained UPDATEs.

    Every ``update_every``-th request is an UPDATE against the client's
    current wheel id; the response's new id becomes the target of every
    subsequent draw, so each client walks its own delta chain from the
    shared root.  Draw latencies are recorded *per version depth* —
    ``draw_hists[v]`` holds the draws served by version ``v`` wheels —
    and update latencies separately; both merge exactly across
    processes.  Returns ``(draws, updates, final_version)``.
    """
    delta_rng = np.random.default_rng(1_000_003 * (seed_base + 1))
    reader, writer = await asyncio.open_connection(host, port)
    draws = updates = version = 0
    current = wheel_id
    try:
        for i in range(requests_per_client):
            if update_every > 0 and (i + 1) % update_every == 0:
                idx = delta_rng.choice(wheel_size, size=update_k, replace=False)
                vals = delta_rng.random(update_k) + 0.5
                request: Dict[str, Any] = {
                    "op": "update",
                    "wheel": current,
                    "indices": idx if kind == "frames" else idx.tolist(),
                    "values": vals if kind == "frames" else vals.tolist(),
                }
                start = time.perf_counter()
                response = await _send_request(kind, reader, writer, request)
                raise_structured(response)
                update_hist.observe(time.perf_counter() - start)
                current = response["wheel"]
                version = int(response["version"])
                updates += 1
            else:
                request = {
                    "op": "draw",
                    "wheel": current,
                    "n": n_draws,
                    "seed": seed_base + i,
                }
                start = time.perf_counter()
                response = await _send_request(kind, reader, writer, request)
                raise_structured(response)
                hist = draw_hists.get(version)
                if hist is None:
                    hist = draw_hists[version] = LatencyHistogram()
                hist.observe(time.perf_counter() - start)
                draws += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    return draws, updates, version


def _mutate_proc(args: Tuple) -> Dict[str, Any]:
    """One mutate load-generator process (top-level for spawn safety)."""
    (
        kind, host, port, wheel_id, wheel_size, clients,
        requests_per_client, n_draws, update_every, update_k, seed0,
    ) = args
    draw_hists: Dict[int, LatencyHistogram] = {}
    update_hist = LatencyHistogram()

    async def go() -> Tuple[float, List[Tuple[int, int, int]]]:
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _mutate_tcp_client(
                    kind, host, port, wheel_id, wheel_size,
                    requests_per_client, n_draws, update_every, update_k,
                    seed0 + c * requests_per_client, draw_hists, update_hist,
                )
                for c in range(clients)
            )
        )
        return time.perf_counter() - start, list(outcomes)

    elapsed, outcomes = asyncio.run(go())
    return {
        "clients": clients,
        "draws": sum(o[0] for o in outcomes),
        "updates": sum(o[1] for o in outcomes),
        "max_version": max((o[2] for o in outcomes), default=0),
        "elapsed_s": elapsed,
        "draw_latency_states": {
            str(v): h.state() for v, h in draw_hists.items()
        },
        "update_latency_state": update_hist.state(),
    }


async def run_tcp_mutate_load(
    host: str,
    port: int,
    wheel_id: str,
    wheel_size: int,
    *,
    kind: str = "frames",
    clients: int = 16,
    requests_per_client: int = 32,
    n_draws: int = 8,
    update_every: int = 4,
    update_k: int = 8,
    procs: int = 1,
    seed_base: int = 0,
) -> Dict[str, Any]:
    """The ``--mutate`` workload: interleaved draw/UPDATE traffic.

    ``update_every`` sets the update:draw ratio (one UPDATE per
    ``update_every`` requests; ``0`` disables mutation entirely) and
    ``update_k`` the delta size.  As in :func:`run_tcp_load` the clients
    are fanned out over ``procs`` processes; the per-version draw
    histograms and the update histogram ship home as full bucket state
    and merge exactly (:meth:`LatencyHistogram.merge_state`), so the
    reported per-version distributions are identical to a single-process
    run's.
    """
    if kind not in ("frames", "jsonl"):
        raise ValueError(f"kind must be 'frames' or 'jsonl', got {kind!r}")
    if procs <= 0:
        raise ValueError(f"procs must be positive, got {procs}")
    if update_every < 0 or update_k <= 0:
        raise ValueError("update_every must be >= 0 and update_k positive")
    if update_k > wheel_size:
        raise ValueError(
            f"update_k {update_k} exceeds wheel_size {wheel_size}"
        )
    procs = min(procs, clients)
    shares = _split_clients(clients, procs)
    args = []
    offset = seed_base
    for share in shares:
        args.append(
            (
                kind, host, port, wheel_id, wheel_size, share,
                requests_per_client, n_draws, update_every, update_k, offset,
            )
        )
        offset += share * requests_per_client
    loop = asyncio.get_running_loop()
    if procs == 1:
        results = [await loop.run_in_executor(None, _mutate_proc, args[0])]
    else:
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        with ctx.Pool(procs) as pool:
            results = await loop.run_in_executor(
                None, pool.map, _mutate_proc, args
            )
    per_version: Dict[str, LatencyHistogram] = {}
    update_hist = LatencyHistogram()
    all_draws = LatencyHistogram()
    for result in results:
        for v, state in result["draw_latency_states"].items():
            hist = per_version.get(v)
            if hist is None:
                hist = per_version[v] = LatencyHistogram()
            hist.merge_state(state)
            all_draws.merge_state(state)
        update_hist.merge_state(result["update_latency_state"])
    draws = sum(r["draws"] for r in results)
    updates = sum(r["updates"] for r in results)
    elapsed = max(r["elapsed_s"] for r in results)
    requests = draws + updates
    return {
        "kind": kind,
        "procs": procs,
        "clients": clients,
        "update_every": update_every,
        "update_k": update_k,
        "requests": requests,
        "draws": draws,
        "updates": updates,
        "max_version": max((r["max_version"] for r in results), default=0),
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else 0.0,
        "updates_per_s": updates / elapsed if elapsed > 0 else 0.0,
        "latency": all_draws.snapshot(),
        "update_latency": update_hist.snapshot(),
        "per_version_latency": {
            v: per_version[v].snapshot()
            for v in sorted(per_version, key=int)
        },
    }


# ----------------------------------------------------------------------
# In-process scheduler legs (PR 5)
# ----------------------------------------------------------------------


class _CachedNaiveScheduler:
    """Secondary baseline: compiled cache hit per request, no coalescing.

    Isolates the two effects the batched leg stacks: against ``naive``
    it shows the caching win, against ``batched`` the coalescing win.
    """

    def __init__(self, registry: WheelRegistry, *, seed: int = 0, metrics=None):
        self.registry = registry
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._request_counter = 0

    async def draw(self, wheel_id: str, n: int, **_: Any) -> np.ndarray:
        seed = self._request_counter
        self._request_counter += 1
        wheel = self.registry.get(wheel_id)
        start = time.monotonic()
        self.metrics.enqueued(int(n))
        rng = request_stream(self.seed, digest_key(wheel_id), seed)
        draws = wheel.select_many(int(n), rng)
        self.metrics.dequeued()
        self.metrics.batch_sizes.observe(1)
        self.metrics.served(time.monotonic() - start)
        await asyncio.sleep(0)
        return draws


def _leg_report(
    scheduler, elapsed: float, requests: int, n_draws: int
) -> Dict[str, Any]:
    metrics = scheduler.metrics
    return {
        "requests": requests,
        "draws": requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": metrics.latency.snapshot(),
        "batch_sizes": metrics.batch_sizes.snapshot(),
    }


def _determinism_certificate(
    wheel_size: int, seed: int, *, methods: Sequence[str] = _CERTIFICATE_METHODS
) -> Dict[str, Any]:
    """Certify responses are bit-identical solo vs coalesced.

    For each method, the same ``(wheel, n, seed)`` request set is served
    three ways — fully coalesced (``max_batch`` large), strictly solo
    (``max_batch=1``), and directly via ``select_many`` on the compiled
    wheel with the request's replayed substream — and all three must
    agree byte for byte.
    """
    sizes = [1, 3, 17, 64, 5, 128, 2, 31]
    per_method: Dict[str, Any] = {}
    all_ok = True
    for method in methods:
        fitness = np.arange(1.0, wheel_size + 1.0)
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        wheel = registry.get(wheel_id)

        async def serve(max_batch: int) -> List[np.ndarray]:
            sched = MicroBatchScheduler(
                registry,
                BatchConfig(max_batch=max_batch, max_delay_us=500.0),
                seed=seed,
            )
            out = await asyncio.gather(
                *(
                    sched.draw(wheel_id, n, seed=i)
                    for i, n in enumerate(sizes)
                )
            )
            await sched.close()
            return out

        coalesced = asyncio.run(serve(max_batch=len(sizes)))
        solo = asyncio.run(serve(max_batch=1))
        direct = [
            wheel.select_many(
                n, request_stream(seed, digest_key(wheel_id), i)
            )
            for i, n in enumerate(sizes)
        ]
        ok = all(
            np.array_equal(c, s) and np.array_equal(c, d)
            for c, s, d in zip(coalesced, solo, direct)
        )
        all_ok = all_ok and ok
        per_method[method] = {
            "requests": len(sizes),
            "sizes": sizes,
            "bitwise_identical": bool(ok),
        }
    return {"methods": per_method, "ok": bool(all_ok)}


def _overload_probe(
    wheel_size: int, seed: int, *, queue_limit: int = 8, burst: int = 96
) -> Dict[str, Any]:
    """The acceptance drill: a burst far past ``queue_limit``.

    Asserts the contract shape — every request answered (ok or shed),
    nothing hangs, and the shed count shows up in metrics.
    """
    registry = WheelRegistry()
    wheel_id, _ = registry.register(np.arange(1.0, wheel_size + 1.0))
    scheduler = MicroBatchScheduler(
        registry,
        BatchConfig(max_batch=16, max_delay_us=200.0, queue_limit=queue_limit),
        seed=seed,
    )

    async def drill() -> Dict[str, int]:
        outcome = await run_open_loop(
            scheduler, wheel_id, requests=burst, n_draws=4, timeout_s=30.0
        )
        await scheduler.close()
        return outcome

    outcome = asyncio.run(drill())
    shed_metric = scheduler.metrics.shed_total
    accounted = outcome["ok"] + outcome["shed"] == outcome["submitted"]
    return {
        "queue_limit": queue_limit,
        "submitted": outcome["submitted"],
        "ok": outcome["ok"],
        "shed": outcome["shed"],
        "shed_total_metric": shed_metric,
        "all_accounted": bool(accounted),
        "metrics_consistent": bool(shed_metric == outcome["shed"]),
        "ok_shape": bool(
            accounted and outcome["shed"] > 0 and shed_metric == outcome["shed"]
        ),
    }


# ----------------------------------------------------------------------
# Protocol (frames vs JSON-lines) legs
# ----------------------------------------------------------------------


def _measure_protocol_leg(
    kind: str,
    fitness: np.ndarray,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    """One TCP leg: ephemeral server, multi-process closed-loop clients."""
    service = SelectionService(seed=seed, config=config)
    wheel_id, _ = service.registry.register(fitness, method=method)

    async def go() -> Dict[str, Any]:
        server = await start_tcp_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            # Warm-up primes connections, allocators, compiled tables.
            await run_tcp_load(
                "127.0.0.1", port, wheel_id, kind=kind,
                clients=min(clients, 8), requests_per_client=2,
                n_draws=n_draws, procs=1, seed_base=1 << 40,
            )
            return await run_tcp_load(
                "127.0.0.1", port, wheel_id, kind=kind,
                clients=clients, requests_per_client=requests_per_client,
                n_draws=n_draws, procs=procs, seed_base=0,
            )
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    leg = asyncio.run(go())
    leg["batch_sizes"] = service.metrics.batch_sizes.snapshot()
    return leg


def _protocol_section(
    fitness: np.ndarray,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    legs = {
        kind: _measure_protocol_leg(
            kind, fitness, method,
            clients=clients, requests_per_client=requests_per_client,
            n_draws=n_draws, seed=seed, procs=procs, config=config,
        )
        for kind in ("jsonl", "frames")
    }
    jsonl_rps = legs["jsonl"]["requests_per_s"]
    speedup = legs["frames"]["requests_per_s"] / jsonl_rps if jsonl_rps > 0 else 0.0
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "n_draws": n_draws,
        "procs": procs,
        "legs": legs,
        "speedup": speedup,
        "gate_target": _PROTOCOL_GATE_TARGET,
        "gate_met": bool(speedup >= _PROTOCOL_GATE_TARGET),
    }


# ----------------------------------------------------------------------
# Live-mutation sections: delta gate, mutate leg, per-version
# determinism certificate, and the served dynamic colony loop
# ----------------------------------------------------------------------


def _update_gate_section(
    seed: int,
    *,
    n: int = _UPDATE_GATE_N,
    ks: Sequence[int] = _UPDATE_GATE_KS,
    trials: int = 3,
    method: str = "log_bidding",
) -> Dict[str, Any]:
    """The >= 10x delta-update gate at the issue's wheel size.

    For each delta size ``k <= n/100``, the same mutation is served two
    ways — the full re-register path (content hash + validate + compile)
    on a cold registry, and :meth:`WheelRegistry.update` against the
    registered root — and the per-k speedup is the ratio of the two
    median times.  The gate requires every measured k to clear the
    target.
    """
    rng = np.random.default_rng(seed + 0x5EED)
    base = rng.random(n) + 0.1
    registry = WheelRegistry(max_wheels=len(ks) * trials + 8)
    root_id, _ = registry.register(base, method=method)
    legs: Dict[str, Any] = {}
    speedups: List[float] = []
    for k in ks:
        k = int(min(max(1, k), max(1, n // 100)))
        rereg: List[float] = []
        delta: List[float] = []
        for _ in range(trials):
            idx = rng.choice(n, size=k, replace=False)
            vals = rng.random(k) + 0.1
            mutated = base.copy()
            mutated[idx] = vals
            cold = WheelRegistry()
            start = time.perf_counter()
            cold.register(mutated, method=method)
            rereg.append(time.perf_counter() - start)
            start = time.perf_counter()
            registry.update(root_id, idx, vals)
            delta.append(time.perf_counter() - start)
        # Lower median via the shared helper: robust to one outlier in
        # either direction, and unbiased for the ratio gate below.
        rereg_s = median_of(rereg)
        delta_s = median_of(delta)
        speedup = rereg_s / delta_s if delta_s > 0 else 0.0
        speedups.append(speedup)
        legs[str(k)] = {
            "k": k,
            "reregister_ms": rereg_s * 1e3,
            "delta_ms": delta_s * 1e3,
            "speedup": speedup,
        }
    stats = registry.stats()
    min_speedup = min(speedups) if speedups else 0.0
    return {
        "n": n,
        "trials": trials,
        "method": method,
        "legs": legs,
        "min_speedup": min_speedup,
        "gate_target": _UPDATE_GATE_TARGET,
        "gate_met": bool(min_speedup >= _UPDATE_GATE_TARGET),
        "registry": {
            key: stats[key]
            for key in (
                "updates",
                "update_hits",
                "delta_recompiles",
                "update_fenwick",
                "update_rebuild",
                "max_chain_len",
                "misses",
            )
        },
    }


def _measure_mutate_leg(
    fitness: np.ndarray,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    update_every: int,
    update_k: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    """The served ``--mutate`` leg: ephemeral server, mutating clients.

    Registry capacity is sized to the version count the workload mints,
    so the leg measures delta-update latency rather than LRU churn; the
    server-side update counters ride along in the report.
    """
    updates_per_client = (
        requests_per_client // update_every if update_every > 0 else 0
    )
    service = SelectionService(
        seed=seed,
        config=config,
        max_wheels=max(256, clients * (updates_per_client + 1) + 16),
    )
    wheel_id, _ = service.registry.register(fitness, method=method)

    async def go() -> Dict[str, Any]:
        server = await start_tcp_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await run_tcp_mutate_load(
                "127.0.0.1", port, wheel_id, int(len(fitness)),
                kind="frames", clients=clients,
                requests_per_client=requests_per_client, n_draws=n_draws,
                update_every=update_every, update_k=update_k,
                procs=procs, seed_base=0,
            )
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    leg = asyncio.run(go())
    stats = service.registry.stats()
    leg["service"] = {
        "updates_total": service.metrics.updates_total,
        "update_indices_total": service.metrics.update_indices_total,
        "update_latency": service.metrics.update_latency.snapshot(),
        "registry": {
            key: stats[key]
            for key in (
                "updates",
                "update_hits",
                "delta_recompiles",
                "update_fenwick",
                "update_rebuild",
                "max_chain_len",
                "versions",
                "misses",
                "evictions",
            )
        },
    }
    return leg


def _version_determinism_certificate(
    wheel_size: int,
    seed: int,
    *,
    workers: int = 3,
    chain: int = 3,
    method: str = "log_bidding",
) -> Dict[str, Any]:
    """The per-version determinism certificate.

    A chain of UPDATEs is replayed on a 1-worker and a ``workers``-worker
    cluster (asserting both mint the identical history-addressed ids),
    and every version — root included — is drawn against twice: once the
    moment it exists and once after the whole chain does.  All draws must
    be byte-identical across pool sizes, across the two passes (the
    copy-on-write guarantee: later updates never disturb a parent), and
    against a direct replay oracle: a *freshly compiled* wheel holding
    the version's values on the version's resolved kernel.  A
    one-update ``stochastic_acceptance`` chain rides along with its own
    rejection-sampler oracle.
    """
    sizes = [1, 7, 33, 64]
    delta_rng = np.random.default_rng(seed + 1717)
    base = np.arange(1.0, wheel_size + 1.0)
    k = max(1, wheel_size // 50)

    # Local mirror: derives each version's expected id, kernel, values.
    mirror = WheelRegistry()
    root_id, _ = mirror.register(base, method=method)
    versions: List[Tuple[str, np.ndarray]] = [(root_id, base.copy())]
    deltas: List[Tuple[np.ndarray, np.ndarray]] = []
    current, values = root_id, base.copy()
    for _ in range(chain):
        idx = delta_rng.choice(wheel_size, size=k, replace=False)
        vals = delta_rng.random(k) + 0.5
        deltas.append((idx, vals))
        current, _ = mirror.update(current, idx, vals)
        values = values.copy()
        values[idx] = vals
        versions.append((current, values))

    def serve(n_workers: int):
        cluster = ClusterService(workers=n_workers, seed=seed)

        async def draw_all(wid: str) -> List[np.ndarray]:
            responses = await asyncio.gather(
                *(
                    cluster.handle_request(
                        {"op": "draw", "wheel": wid, "n": sz, "seed": i}
                    )
                    for i, sz in enumerate(sizes)
                )
            )
            for r in responses:
                raise_structured(r)
            return [np.asarray(r["draws"]) for r in responses]

        async def go():
            reply = await cluster.handle_request(
                {"op": "register", "fitness": base.tolist(), "method": method}
            )
            raise_structured(reply)
            if reply["wheel"] != root_id:
                raise AssertionError("cluster minted a different root id")
            first: Dict[str, List[np.ndarray]] = {root_id: await draw_all(root_id)}
            cur = root_id
            for idx, vals in deltas:
                reply = await cluster.handle_request(
                    {
                        "op": "update",
                        "wheel": cur,
                        "indices": idx.tolist(),
                        "values": vals.tolist(),
                    }
                )
                raise_structured(reply)
                cur = reply["wheel"]
                first[cur] = await draw_all(cur)
            if list(first) != [wid for wid, _ in versions]:
                raise AssertionError("cluster minted different version ids")
            second = {wid: await draw_all(wid) for wid, _ in versions}
            await cluster.close()
            return first, second

        return asyncio.run(go())

    single_first, single_second = serve(1)
    multi_first, multi_second = serve(workers)
    per_version = []
    all_ok = True
    cow_stable = True
    for version, (wid, vals_v) in enumerate(versions):
        kernel = mirror.get(wid).kernel
        oracle = CompiledWheel(vals_v, method, kernel=kernel)
        direct = [
            oracle.select_many(sz, request_stream(seed, digest_key(wid), i))
            for i, sz in enumerate(sizes)
        ]
        stable = all(
            np.array_equal(a, b) and np.array_equal(c, d)
            for a, b, c, d in zip(
                single_first[wid], single_second[wid],
                multi_first[wid], multi_second[wid],
            )
        )
        ok = stable and all(
            np.array_equal(a, c) and np.array_equal(a, e)
            for a, c, e in zip(single_first[wid], multi_first[wid], direct)
        )
        cow_stable = cow_stable and stable
        all_ok = all_ok and ok
        per_version.append(
            {
                "version": version,
                "wheel": wid,
                "kernel": kernel,
                "bitwise_identical": bool(ok),
            }
        )

    # Acceptance-backend chain: one update, same three-way comparison
    # against the rejection sampler's own replay oracle.
    sa_mirror = WheelRegistry()
    sa_root, _ = sa_mirror.register(base, backend="stochastic_acceptance")
    sa_idx, sa_vals = deltas[0]
    sa_child, _ = sa_mirror.update(sa_root, sa_idx, sa_vals)
    sa_values = base.copy()
    sa_values[sa_idx] = sa_vals

    def serve_sa(n_workers: int) -> Tuple[str, List[np.ndarray]]:
        cluster = ClusterService(workers=n_workers, seed=seed)

        async def go():
            reply = await cluster.handle_request(
                {
                    "op": "register",
                    "fitness": base.tolist(),
                    "backend": "stochastic_acceptance",
                }
            )
            raise_structured(reply)
            reply = await cluster.handle_request(
                {
                    "op": "update",
                    "wheel": reply["wheel"],
                    "indices": sa_idx.tolist(),
                    "values": sa_vals.tolist(),
                }
            )
            raise_structured(reply)
            wid = reply["wheel"]
            out = []
            for i, sz in enumerate(sizes):
                r = await cluster.handle_request(
                    {"op": "draw", "wheel": wid, "n": sz, "seed": i}
                )
                raise_structured(r)
                out.append(np.asarray(r["draws"]))
            await cluster.close()
            return wid, out

        return asyncio.run(go())

    sa_id_single, sa_single = serve_sa(1)
    sa_id_multi, sa_multi = serve_sa(workers)
    sa_oracle = AcceptanceWheel(sa_values)
    sa_direct = [
        sa_oracle.select_many(sz, request_stream(seed, digest_key(sa_child), i))
        for i, sz in enumerate(sizes)
    ]
    acceptance_ok = (
        sa_id_single == sa_child
        and sa_id_multi == sa_child
        and all(
            np.array_equal(a, b) and np.array_equal(a, c)
            for a, b, c in zip(sa_single, sa_multi, sa_direct)
        )
    )
    all_ok = all_ok and bool(acceptance_ok)
    return {
        "workers_compared": [1, workers],
        "method": method,
        "chain": chain,
        "sizes": sizes,
        "versions": per_version,
        "cow_stable": bool(cow_stable),
        "acceptance_ok": bool(acceptance_ok),
        "ok": bool(all_ok),
    }


def _update_section(
    fitness: np.ndarray,
    method: str,
    seed: int,
    *,
    wheel_size: int,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    update_every: int,
    update_k: int,
    procs: int,
    config: BatchConfig,
    update_n: int,
    mutate: bool,
) -> Dict[str, Any]:
    """Assemble the ``update`` results block (gate + leg + certificate)."""
    section = _update_gate_section(seed, n=update_n, method=method)
    mutate_clients = clients if mutate else min(clients, 16)
    mutate_rpc = requests_per_client if mutate else min(requests_per_client, 32)
    section["mutate"] = _measure_mutate_leg(
        fitness, method,
        clients=mutate_clients, requests_per_client=mutate_rpc,
        n_draws=n_draws, update_every=update_every,
        update_k=min(update_k, wheel_size), seed=seed, procs=procs,
        config=config,
    )
    section["determinism"] = _version_determinism_certificate(
        min(wheel_size, 512), seed, method=method
    )
    return section


def _colony_section(
    seed: int,
    *,
    n: int = 50_000,
    ants: int = 256,
    iterations: int = 25,
    update_k: int = 50,
    method: str = "log_bidding",
    config: Optional[BatchConfig] = None,
) -> Dict[str, Any]:
    """The served dynamic colony loop vs its in-process vectorized twin.

    The workload is the paper's motivating ACO shape: per iteration, one
    batched selection of ``ants`` next-choices from the pheromone wheel,
    then a ``k``-sparse pheromone delta.  In process that is one cumsum
    plus one ``searchsorted`` batch and a scatter; served, it is one
    DRAW and one UPDATE frame per iteration over a real TCP connection,
    the UPDATE minting the next version the following DRAW targets.  The
    gate bounds the served/in-process slowdown — the "a live colony can
    be served" viability factor.
    """
    n = int(n)
    update_k = int(min(update_k, n))
    rng = np.random.default_rng(seed + 424242)
    base = rng.random(n) + 0.1
    deltas = [
        (rng.choice(n, size=update_k, replace=False), rng.random(update_k) + 0.5)
        for _ in range(iterations)
    ]
    draw_u = rng.random((iterations, ants))

    values = base.copy()
    start = time.perf_counter()
    for it in range(iterations):
        cs = np.cumsum(values)
        np.minimum(
            np.searchsorted(cs, draw_u[it] * cs[-1], side="right"), n - 1
        )
        idx, vals = deltas[it]
        values[idx] = vals
    inproc_s = time.perf_counter() - start

    service = SelectionService(
        seed=seed, config=config, max_wheels=iterations + 8
    )
    wheel_id, _ = service.registry.register(base, method=method)

    async def go() -> float:
        server = await start_tcp_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            warm = await _send_request(
                "frames", reader, writer,
                {"op": "draw", "wheel": wheel_id, "n": ants, "seed": 1 << 40},
            )
            raise_structured(warm)
            cur = wheel_id
            begin = time.perf_counter()
            for it in range(iterations):
                reply = await _send_request(
                    "frames", reader, writer,
                    {"op": "draw", "wheel": cur, "n": ants, "seed": it},
                )
                raise_structured(reply)
                idx, vals = deltas[it]
                reply = await _send_request(
                    "frames", reader, writer,
                    {"op": "update", "wheel": cur, "indices": idx, "values": vals},
                )
                raise_structured(reply)
                cur = reply["wheel"]
            return time.perf_counter() - begin
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            # Let the server-side handler observe the EOF and finish its
            # own close before the loop is torn down.
            await asyncio.sleep(0.05)
            server.close()
            await server.wait_closed()
            await service.close()

    served_s = asyncio.run(go())
    factor = served_s / inproc_s if inproc_s > 0 else 0.0
    return {
        "n": n,
        "ants": ants,
        "iterations": iterations,
        "update_k": update_k,
        "method": method,
        "inprocess_s": inproc_s,
        "served_s": served_s,
        "inprocess_iter_us": inproc_s / iterations * 1e6,
        "served_iter_us": served_s / iterations * 1e6,
        "factor": factor,
        "gate_target": _COLONY_GATE_TARGET,
        "gate_met": bool(0.0 < factor <= _COLONY_GATE_TARGET),
    }


# ----------------------------------------------------------------------
# Cluster sweep + per-shard determinism certificate
# ----------------------------------------------------------------------


def _measure_cluster_leg(
    workers: int,
    fitness_vectors: List[np.ndarray],
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    seed: int,
    procs: int,
    config: BatchConfig,
) -> Dict[str, Any]:
    """Throughput of a ``workers``-shard cluster over binary frames.

    Several distinct wheels are registered so the consistent-hash ring
    actually spreads load across shards; clients round-robin over them.
    """
    cluster = ClusterService(workers=workers, seed=seed, config=config)

    async def go() -> Dict[str, Any]:
        wheel_ids = []
        for fitness in fitness_vectors:
            reply = await cluster.handle_request(
                {"op": "register", "fitness": fitness, "method": method}
            )
            raise_structured(reply)
            wheel_ids.append(reply["wheel"])
        server = await start_tcp_server(cluster, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            per_wheel_clients = _split_clients(clients, len(wheel_ids))
            seed0 = 0
            loads = []
            for wheel_id, share in zip(wheel_ids, per_wheel_clients):
                if share == 0:
                    continue
                loads.append(
                    run_tcp_load(
                        "127.0.0.1", port, wheel_id, kind="frames",
                        clients=share, requests_per_client=requests_per_client,
                        n_draws=n_draws, procs=max(1, procs // len(wheel_ids)),
                        seed_base=seed0,
                    )
                )
                seed0 += share * requests_per_client
            start = time.perf_counter()
            results = await asyncio.gather(*loads)
            elapsed = time.perf_counter() - start
            stats = await cluster.stats()
            return {"results": results, "elapsed_s": elapsed, "stats": stats}
        finally:
            server.close()
            await server.wait_closed()
            await cluster.close()

    out = asyncio.run(go())
    total_requests = sum(r["requests"] for r in out["results"])
    elapsed = out["elapsed_s"]
    # Per-wheel loads report snapshots; the worst wheel bounds the leg.
    p99 = max((r["latency"]["p99_us"] for r in out["results"]), default=0.0)
    p50 = max((r["latency"]["p50_us"] for r in out["results"]), default=0.0)
    shard_stats = out["stats"]["shards"]
    return {
        "workers": workers,
        "requests": total_requests,
        "draws": total_requests * n_draws,
        "elapsed_s": elapsed,
        "requests_per_s": total_requests / elapsed if elapsed > 0 else 0.0,
        "draws_per_s": total_requests * n_draws / elapsed if elapsed > 0 else 0.0,
        "latency": {"p50_us": p50, "p99_us": p99},
        "routing": out["stats"]["routed"],
        "routing_max_share": out["stats"]["routing_max_share"],
        "batch_mean_size": (
            sum(s["batch_sizes"]["mean_size"] * s["batch_sizes"]["batches"] for s in shard_stats)
            / max(1, sum(s["batch_sizes"]["batches"] for s in shard_stats))
        ),
        "compiles": sum(s["registry"]["compiles"] for s in shard_stats),
        "store_hits": sum(s["registry"]["store_hits"] for s in shard_stats),
    }


def _cluster_determinism_certificate(
    wheel_size: int, seed: int, *, workers: int = 3, method: str = "log_bidding"
) -> Dict[str, Any]:
    """The per-shard determinism certificate.

    The same ``(wheel_id, request seed)`` set — several wheels so the
    ring routes to different shards, varied draw sizes — is served by a
    1-worker and a ``workers``-worker cluster with the same service
    seed, and replayed directly on a compiled wheel.  All three must be
    byte-identical: shard placement and coalescing are invisible in the
    draws.
    """
    sizes = [1, 5, 33, 64, 2, 17]
    vectors = [
        np.arange(1.0, wheel_size + 1.0),
        np.arange(wheel_size, 0.0, -1.0),
        np.linspace(0.5, 7.5, wheel_size),
    ]

    def serve(n_workers: int) -> List[List[np.ndarray]]:
        cluster = ClusterService(workers=n_workers, seed=seed)

        async def go() -> List[List[np.ndarray]]:
            out: List[List[np.ndarray]] = []
            for fitness in vectors:
                reply = await cluster.handle_request(
                    {"op": "register", "fitness": fitness, "method": method}
                )
                raise_structured(reply)
                wheel_id = reply["wheel"]
                responses = await asyncio.gather(
                    *(
                        cluster.handle_request(
                            {"op": "draw", "wheel": wheel_id, "n": n, "seed": i}
                        )
                        for i, n in enumerate(sizes)
                    )
                )
                for r in responses:
                    raise_structured(r)
                out.append([np.asarray(r["draws"]) for r in responses])
            await cluster.close()
            return out

        return asyncio.run(go())

    single = serve(1)
    multi = serve(workers)
    registry = WheelRegistry()
    per_wheel = []
    all_ok = True
    for v_idx, fitness in enumerate(vectors):
        wheel_id, _ = registry.register(fitness, method=method)
        wheel = registry.get(wheel_id)
        direct = [
            wheel.select_many(n, request_stream(seed, digest_key(wheel_id), i))
            for i, n in enumerate(sizes)
        ]
        ok = all(
            np.array_equal(s, m) and np.array_equal(s, d)
            for s, m, d in zip(single[v_idx], multi[v_idx], direct)
        )
        all_ok = all_ok and ok
        per_wheel.append({"wheel": wheel_id, "bitwise_identical": bool(ok)})
    return {
        "workers_compared": [1, workers],
        "method": method,
        "sizes": sizes,
        "wheels": per_wheel,
        "ok": bool(all_ok),
    }


def _default_cluster_sweep(cpu_count: int) -> List[int]:
    """Worker counts to measure: the full {1,2,4,8} sweep on a >= 4 core
    host, a minimal {1,2} path-exercise otherwise."""
    if cpu_count >= _SCALING_GATE_WORKERS:
        return [w for w in _CLUSTER_SWEEP if w <= max(8, cpu_count)]
    return [1, 2]


def _cluster_section(
    wheel_size: int,
    seed: int,
    method: str,
    *,
    clients: int,
    requests_per_client: int,
    n_draws: int,
    procs: int,
    config: BatchConfig,
    workers_sweep: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    cpu_count = os.cpu_count() or 1
    sweep = (
        list(workers_sweep)
        if workers_sweep is not None
        else _default_cluster_sweep(cpu_count)
    )
    # Distinct wheels so the ring spreads load; deterministic contents.
    fitness_vectors = [
        np.arange(1.0, wheel_size + 1.0) * (1.0 + 0.01 * k) for k in range(8)
    ]
    legs = [
        _measure_cluster_leg(
            w, fitness_vectors, method,
            clients=clients, requests_per_client=requests_per_client,
            n_draws=n_draws, seed=seed, procs=procs, config=config,
        )
        for w in sweep
    ]
    by_workers = {str(leg["workers"]): leg for leg in legs}
    base = by_workers.get("1", legs[0])
    efficiency = {
        str(leg["workers"]): (
            leg["requests_per_s"] / (leg["workers"] * base["requests_per_s"])
            if base["requests_per_s"] > 0
            else 0.0
        )
        for leg in legs
    }
    gate_key = str(_SCALING_GATE_WORKERS)
    if cpu_count < _SCALING_GATE_WORKERS:
        scaling = {
            "gate_target": _SCALING_GATE_TARGET,
            "gate_workers": _SCALING_GATE_WORKERS,
            "gate_met": None,
            "skipped": True,
            "skip_reason": (
                f"cpu_count={cpu_count} < {_SCALING_GATE_WORKERS}: scaling "
                f"efficiency is not measurable on this host; sweep limited "
                f"to workers={sweep} to exercise the multi-process path"
            ),
            "efficiency": efficiency,
        }
    else:
        eff4 = efficiency.get(gate_key, 0.0)
        scaling = {
            "gate_target": _SCALING_GATE_TARGET,
            "gate_workers": _SCALING_GATE_WORKERS,
            "gate_met": bool(eff4 >= _SCALING_GATE_TARGET),
            "skipped": False,
            "skip_reason": None,
            "efficiency": efficiency,
        }
    return {
        "cpu_count": cpu_count,
        "workers_sweep": sweep,
        "legs": by_workers,
        "scaling": scaling,
        "determinism": _cluster_determinism_certificate(wheel_size, seed),
    }


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------


def run_bench_serve(
    wheel_size: int = 1000,
    clients: int = 64,
    requests_per_client: int = 32,
    n_draws: int = 8,
    seed: int = 0,
    method: str = "log_bidding",
    max_batch: int = 64,
    max_delay_us: float = 200.0,
    gate_target: float = 10.0,
    procs: int = 1,
    cluster_workers: Optional[Sequence[int]] = None,
    protocol_draws: int = 1024,
    protocol_requests_per_client: int = 16,
    mutate: bool = False,
    update_every: int = 4,
    update_k: int = 8,
    update_n: int = _UPDATE_GATE_N,
    colony_n: int = 50_000,
    colony_ants: int = 256,
    colony_iterations: int = 25,
) -> Dict[str, Any]:
    """Measure the serving stack end to end and assemble the report.

    The default configuration is the acceptance gate: 64 closed-loop
    clients against a 1000-item ``log_bidding`` wheel, requiring >= 10x
    requests/s of the micro-batching scheduler over the per-request
    validate+select baseline, >= 2x of binary frames over JSON-lines on
    the TCP legs, (on hosts with >= 4 cores) >= 0.7 scaling efficiency
    at 4 cluster workers, >= 10x of the delta-update path over
    re-register+recompile at ``update_n``, and the served dynamic colony
    loop within ``_COLONY_GATE_TARGET`` (25x) of its in-process twin.  The
    mutate leg always runs at a light default so the report shape is
    stable; ``mutate=True`` (the CLI's ``--mutate``) runs it at the full
    client count.
    """
    if wheel_size < 2:
        raise ValueError(f"wheel_size must be >= 2, got {wheel_size}")
    if clients <= 0 or requests_per_client <= 0 or n_draws <= 0:
        raise ValueError("clients, requests_per_client, n_draws must be positive")
    if procs <= 0:
        raise ValueError(f"procs must be positive, got {procs}")
    fitness = np.arange(1.0, wheel_size + 1.0)
    total_requests = clients * requests_per_client

    def measure(make_scheduler) -> Tuple[Any, float]:
        registry = WheelRegistry()
        wheel_id, _ = registry.register(fitness, method=method)
        scheduler = make_scheduler(registry)

        async def go() -> float:
            # Warm-up round primes allocators and compiled tables.
            await run_closed_loop(
                scheduler, wheel_id, clients=min(clients, 8),
                requests_per_client=1, n_draws=n_draws,
            )
            elapsed = await run_closed_loop(
                scheduler, wheel_id, clients=clients,
                requests_per_client=requests_per_client, n_draws=n_draws,
            )
            close = getattr(scheduler, "close", None)
            if close is not None:
                await close()
            return elapsed

        return scheduler, asyncio.run(go())

    config = BatchConfig(max_batch=max_batch, max_delay_us=max_delay_us)
    naive, naive_s = measure(lambda r: NaiveScheduler(r, seed=seed))
    cached, cached_s = measure(lambda r: _CachedNaiveScheduler(r, seed=seed))
    batched, batched_s = measure(
        lambda r: MicroBatchScheduler(r, config, seed=seed)
    )

    legs = {
        "naive": _leg_report(naive, naive_s, total_requests, n_draws),
        "cached_naive": _leg_report(cached, cached_s, total_requests, n_draws),
        "batched": _leg_report(batched, batched_s, total_requests, n_draws),
    }
    gate_speedup = (
        legs["batched"]["requests_per_s"] / legs["naive"]["requests_per_s"]
        if legs["naive"]["requests_per_s"] > 0
        else 0.0
    )
    determinism = _determinism_certificate(wheel_size, seed)
    overload = _overload_probe(wheel_size, seed)
    protocol = _protocol_section(
        fitness, method,
        clients=clients, requests_per_client=protocol_requests_per_client,
        n_draws=protocol_draws, seed=seed, procs=procs, config=config,
    )
    cluster = _cluster_section(
        wheel_size, seed, method,
        clients=clients, requests_per_client=requests_per_client,
        n_draws=n_draws, procs=procs, config=config,
        workers_sweep=cluster_workers,
    )
    update = _update_section(
        fitness, method, seed,
        wheel_size=wheel_size, clients=clients,
        requests_per_client=requests_per_client, n_draws=n_draws,
        update_every=update_every, update_k=update_k, procs=procs,
        config=config, update_n=update_n, mutate=mutate,
    )
    colony = _colony_section(
        seed, n=colony_n, ants=colony_ants, iterations=colony_iterations,
        method=method, config=config,
    )

    return {
        "schema": BENCH_SERVE_SCHEMA,
        "config": {
            "wheel_size": wheel_size,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "n_draws": n_draws,
            "seed": seed,
            "method": method,
            "max_batch": max_batch,
            "max_delay_us": max_delay_us,
            "procs": procs,
            "protocol_draws": protocol_draws,
            "protocol_requests_per_client": protocol_requests_per_client,
            "mutate": mutate,
            "update_every": update_every,
            "update_k": update_k,
            "update_n": update_n,
            "colony_n": colony_n,
            "colony_ants": colony_ants,
            "colony_iterations": colony_iterations,
        },
        "results": {
            "legs": legs,
            "gate_target": gate_target,
            "gate_speedup": gate_speedup,
            "gate_met": bool(gate_speedup >= gate_target),
            "determinism": determinism,
            "overload": overload,
            "protocol": protocol,
            "cluster": cluster,
            "update": update,
            "colony": colony,
        },
        "meta": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }


def validate_bench_serve(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed serve bench.

    Layout plus the *correctness* certificates — coalescing determinism,
    the per-shard cluster determinism certificate, the per-version
    (copy-on-write) determinism certificate, and the overload
    shape — are required; the performance gates themselves are recorded
    but not required, because a loaded shared CI runner may legitimately
    miss a throughput target.  The scaling gate must either be evaluated
    or carry an explicit skip reason.
    """
    if not isinstance(report, dict):
        raise ValueError(f"report must be a dict, got {type(report).__name__}")
    if report.get("schema") != BENCH_SERVE_SCHEMA:
        raise ValueError(
            f"schema mismatch: {report.get('schema')!r} != {BENCH_SERVE_SCHEMA!r}"
        )
    for section in ("config", "results", "meta"):
        if not isinstance(report.get(section), dict):
            raise ValueError(f"missing or malformed section {section!r}")
    results = report["results"]
    for key in _REQUIRED_RESULT_KEYS:
        if key not in results:
            raise ValueError(f"results missing key {key!r}")
    legs = results["legs"]
    for leg in ("naive", "batched"):
        if leg not in legs:
            raise ValueError(f"results.legs missing leg {leg!r}")
        for key in _REQUIRED_LEG_KEYS:
            if key not in legs[leg]:
                raise ValueError(f"leg {leg!r} missing key {key!r}")
        if legs[leg]["requests_per_s"] <= 0:
            raise ValueError(f"leg {leg!r} recorded no throughput")
    determinism = results["determinism"]
    if not determinism.get("ok"):
        raise ValueError(
            "coalescing-determinism certificate failed: solo and coalesced "
            "responses are not bit-identical"
        )
    for name, entry in determinism.get("methods", {}).items():
        if not entry.get("bitwise_identical"):
            raise ValueError(f"determinism certificate failed for method {name!r}")
    overload = results["overload"]
    if not overload.get("ok_shape"):
        raise ValueError(
            "overload probe failed: expected every burst request accounted "
            "for (ok + shed == submitted) with a non-zero, metric-consistent "
            f"shed count; got {overload}"
        )
    protocol = results["protocol"]
    for kind in ("jsonl", "frames"):
        leg = protocol.get("legs", {}).get(kind)
        if not leg or leg.get("requests_per_s", 0) <= 0:
            raise ValueError(f"protocol leg {kind!r} missing or recorded no throughput")
    if not isinstance(protocol.get("gate_met"), bool):
        raise ValueError("protocol.gate_met must be a bool")
    cluster = results["cluster"]
    cert = cluster.get("determinism", {})
    if not cert.get("ok"):
        raise ValueError(
            "per-shard determinism certificate failed: 1-worker and "
            "N-worker clusters did not return byte-identical draws"
        )
    for entry in cert.get("wheels", []):
        if not entry.get("bitwise_identical"):
            raise ValueError(
                f"per-shard determinism failed for wheel {entry.get('wheel')!r}"
            )
    scaling = cluster.get("scaling", {})
    if scaling.get("skipped"):
        if not scaling.get("skip_reason"):
            raise ValueError("skipped scaling gate must record a skip_reason")
    elif not isinstance(scaling.get("gate_met"), bool):
        raise ValueError("evaluated scaling gate must record a bool gate_met")
    if not cluster.get("legs"):
        raise ValueError("cluster section recorded no worker legs")
    for key, leg in cluster["legs"].items():
        if leg.get("requests_per_s", 0) <= 0:
            raise ValueError(f"cluster leg workers={key} recorded no throughput")
    update = results["update"]
    if not update.get("legs"):
        raise ValueError("update section recorded no delta legs")
    for key, leg in update["legs"].items():
        if leg.get("delta_ms", 0) <= 0 or leg.get("reregister_ms", 0) <= 0:
            raise ValueError(f"update leg k={key} recorded no timings")
    if not isinstance(update.get("gate_met"), bool):
        raise ValueError("update.gate_met must be a bool")
    mutate_leg = update.get("mutate", {})
    if mutate_leg.get("draws", 0) <= 0:
        raise ValueError("mutate leg recorded no draws")
    per_client = mutate_leg.get("requests", 0) // max(1, mutate_leg.get("clients", 1))
    if 0 < mutate_leg.get("update_every", 0) <= per_client:
        if mutate_leg.get("updates", 0) <= 0:
            raise ValueError("mutate leg with update traffic recorded no updates")
        if not mutate_leg.get("per_version_latency"):
            raise ValueError("mutate leg missing per-version latency histograms")
    version_cert = update.get("determinism", {})
    if not version_cert.get("ok"):
        raise ValueError(
            "per-version determinism certificate failed: versioned draws "
            "are not byte-identical to direct replay"
        )
    for entry in version_cert.get("versions", []):
        if not entry.get("bitwise_identical"):
            raise ValueError(
                f"per-version determinism failed for {entry.get('wheel')!r}"
            )
    colony = results["colony"]
    if colony.get("inprocess_s", 0) <= 0 or colony.get("served_s", 0) <= 0:
        raise ValueError("colony section recorded no timings")
    if not isinstance(colony.get("gate_met"), bool):
        raise ValueError("colony.gate_met must be a bool")
    if not isinstance(results["gate_met"], bool):
        raise ValueError("gate_met must be a bool")


def write_bench_serve(report: Dict[str, Any], path: str = "BENCH_serve.json") -> str:
    """Validate and persist the report; returns the path written."""
    validate_bench_serve(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def render_bench_serve(report: Dict[str, Any]) -> str:
    """Human-readable summary of a serve bench report."""
    config = report["config"]
    results = report["results"]
    lines = [
        f"bench-serve: {config['clients']} clients x "
        f"{config['requests_per_client']} reqs, n={config['wheel_size']}, "
        f"method={config['method']}, draws/req={config['n_draws']}",
        "",
        f"{'leg':<14}{'req/s':>12}{'p50 us':>10}{'p99 us':>10}{'mean batch':>12}",
    ]
    for name in ("naive", "cached_naive", "batched"):
        leg = results["legs"].get(name)
        if leg is None:
            continue
        lines.append(
            f"{name:<14}{leg['requests_per_s']:>12.0f}"
            f"{leg['latency']['p50_us']:>10.0f}"
            f"{leg['latency']['p99_us']:>10.0f}"
            f"{leg['batch_sizes']['mean_size']:>12.2f}"
        )
    gate = "MET" if results["gate_met"] else "missed"
    lines += [
        "",
        f"gate: batched/naive = {results['gate_speedup']:.1f}x "
        f"(target {results['gate_target']:.0f}x) -> {gate}",
        f"determinism certificate: "
        f"{'ok' if results['determinism']['ok'] else 'FAILED'} "
        f"({', '.join(results['determinism']['methods'])})",
        f"overload probe: {results['overload']['ok']} ok / "
        f"{results['overload']['shed']} shed of "
        f"{results['overload']['submitted']} "
        f"(shape {'ok' if results['overload']['ok_shape'] else 'FAILED'})",
    ]
    protocol = results.get("protocol")
    if protocol:
        pgate = "MET" if protocol["gate_met"] else "missed"
        lines += [
            "",
            f"protocol ({protocol['clients']} clients x "
            f"{protocol['n_draws']} draws/req, procs={protocol['procs']}):",
            f"  jsonl  {protocol['legs']['jsonl']['requests_per_s']:>10.0f} req/s",
            f"  frames {protocol['legs']['frames']['requests_per_s']:>10.0f} req/s",
            f"  frames/jsonl = {protocol['speedup']:.2f}x "
            f"(target {protocol['gate_target']:.0f}x) -> {pgate}",
        ]
    cluster = results.get("cluster")
    if cluster:
        lines += ["", f"cluster sweep (cpu_count={cluster['cpu_count']}):"]
        for key in sorted(cluster["legs"], key=int):
            leg = cluster["legs"][key]
            eff = cluster["scaling"]["efficiency"].get(key)
            line = f"  workers={key:<3}{leg['requests_per_s']:>10.0f} req/s"
            if eff is not None:
                line += f"  eff={eff:.2f}"
            lines.append(line)
        scaling = cluster["scaling"]
        if scaling["skipped"]:
            lines.append(f"  scaling gate: SKIPPED ({scaling['skip_reason']})")
        else:
            sgate = "MET" if scaling["gate_met"] else "missed"
            lines.append(
                f"  scaling gate: eff@{scaling['gate_workers']} >= "
                f"{scaling['gate_target']} -> {sgate}"
            )
        cert = cluster["determinism"]
        lines.append(
            f"  per-shard determinism (workers {cert['workers_compared']}): "
            f"{'ok' if cert['ok'] else 'FAILED'} across {len(cert['wheels'])} wheels"
        )
    update = results.get("update")
    if update:
        ugate = "MET" if update["gate_met"] else "missed"
        lines += ["", f"delta updates (n={update['n']}):"]
        for key in sorted(update["legs"], key=int):
            leg = update["legs"][key]
            lines.append(
                f"  k={key:<6}delta {leg['delta_ms']:>8.2f} ms vs "
                f"re-register {leg['reregister_ms']:>8.2f} ms  "
                f"({leg['speedup']:.1f}x)"
            )
        lines.append(
            f"  update gate: min speedup = {update['min_speedup']:.1f}x "
            f"(target {update['gate_target']:.0f}x) -> {ugate}"
        )
        mutate_leg = update.get("mutate")
        if mutate_leg:
            lines.append(
                f"  mutate leg: {mutate_leg['requests_per_s']:.0f} req/s, "
                f"{mutate_leg['updates']} updates "
                f"(1:{mutate_leg['update_every']} of requests, "
                f"k={mutate_leg['update_k']}), "
                f"{len(mutate_leg['per_version_latency'])} version depths"
            )
        cert = update.get("determinism")
        if cert:
            lines.append(
                f"  per-version determinism (workers {cert['workers_compared']}, "
                f"chain {cert['chain']}): {'ok' if cert['ok'] else 'FAILED'}; "
                f"acceptance {'ok' if cert['acceptance_ok'] else 'FAILED'}"
            )
    colony = results.get("colony")
    if colony:
        cgate = "MET" if colony["gate_met"] else "missed"
        lines += [
            "",
            f"dynamic colony loop (n={colony['n']}, ants={colony['ants']}, "
            f"{colony['iterations']} iters, k={colony['update_k']}):",
            f"  in-process {colony['inprocess_iter_us']:>10.0f} us/iter",
            f"  served     {colony['served_iter_us']:>10.0f} us/iter",
            f"  served/in-process = {colony['factor']:.1f}x "
            f"(target <= {colony['gate_target']:.0f}x) -> {cgate}",
        ]
    return "\n".join(lines)
