"""Shared compiled-wheel blob store: write-once, read-anywhere.

Cluster workers each hold a private :class:`~repro.service.registry.
WheelRegistry`, but compilation is deduped *across* processes through
this store: the first worker to claim a wheel id compiles it and
publishes the :meth:`repro.engine.CompiledWheel.to_bytes` blob; every
other worker (concurrent or later) imports the blob instead of
recompiling.  Hit/miss/publish counters make the dedupe observable in
the ``stats`` RPC.

The store is a directory of mmap-read blob files, one per wheel id,
defaulting to ``/dev/shm`` when the host has it — i.e. the files are
plain shared memory pages, never touching disk — with a tempdir
fallback elsewhere.  This deliberately avoids
``multiprocessing.shared_memory`` on Python < 3.13, whose resource
tracker unlinks attached segments at child exit; named files with
atomic-rename publication have none of those lifetime hazards and give
the same zero-serialization sharing.

Concurrency protocol (all lock-free, POSIX-atomic):

* **publish**: write to ``<id>.tmp.<pid>``, then ``os.rename`` onto
  ``<id>.wheel`` — readers can never observe a partial blob;
* **claim**: ``O_CREAT | O_EXCL`` on ``<id>.claim`` — exactly one
  process wins the right to compile; losers :meth:`wait` for the
  publication (with a timeout escape hatch that falls back to local
  compilation if the claimant dies).
"""

from __future__ import annotations

import mmap
import os
import tempfile
import time
from typing import Any, Dict, Optional

__all__ = ["SharedWheelStore", "default_store_root"]

_BLOB_SUFFIX = ".wheel"
_CLAIM_SUFFIX = ".claim"


def default_store_root() -> str:
    """Directory new stores are created under (shared memory if present)."""
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return tempfile.gettempdir()


def _safe_name(wheel_id: str) -> str:
    """Map a wheel id to a filename.

    Root ids contain ``:`` and versioned ids (``<root>@<verhex>``) add
    ``@``; both map to distinct filename-safe characters so a version's
    blob can never collide with its root's.
    """
    return wheel_id.replace(":", "_").replace("@", "+")


class SharedWheelStore:
    """Cross-process blob cache keyed by content-addressed wheel id.

    Parameters
    ----------
    path:
        Existing store directory to attach to (how workers join the
        parent's store).  When ``None`` a fresh directory is created
        under ``root`` and this instance becomes its *owner*: closing
        the owner removes the directory.
    root:
        Parent directory for fresh stores (default: ``/dev/shm`` when
        available).

    The instance is cheap and picklable-by-path: ship ``store.path`` to
    a worker and construct ``SharedWheelStore(path=...)`` there.
    """

    def __init__(self, path: Optional[str] = None, *, root: Optional[str] = None):
        if path is None:
            self.path = tempfile.mkdtemp(
                prefix="repro-wheels-", dir=root or default_store_root()
            )
            self._owner = True
        else:
            if not os.path.isdir(path):
                raise FileNotFoundError(f"wheel store directory {path!r} missing")
            self.path = path
            self._owner = False
        self.hits = 0
        self.misses = 0
        self.publishes = 0
        self.claims = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _blob_path(self, wheel_id: str) -> str:
        return os.path.join(self.path, _safe_name(wheel_id) + _BLOB_SUFFIX)

    def __contains__(self, wheel_id: str) -> bool:
        return os.path.exists(self._blob_path(wheel_id))

    def get(self, wheel_id: str) -> Optional[bytes]:
        """Fetch a published blob, or ``None``; counts the hit/miss."""
        try:
            with open(self._blob_path(wheel_id), "rb") as fh:
                size = os.fstat(fh.fileno()).st_size
                if size == 0:  # pragma: no cover - impossible via publish
                    raise FileNotFoundError
                with mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ) as mapped:
                    blob = bytes(mapped)
        except FileNotFoundError:
            self.misses += 1
            return None
        self.hits += 1
        return blob

    def publish(self, wheel_id: str, blob: bytes) -> bool:
        """Publish a blob (atomic, last-writer-wins on identical content).

        Returns ``False`` when the id was already published — the
        duplicate write is skipped, which is what makes registration
        write-once in the common path.
        """
        target = self._blob_path(wheel_id)
        if os.path.exists(target):
            return False
        tmp = f"{target}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
        os.rename(tmp, target)
        self.publishes += 1
        self._release_claim(wheel_id)
        return True

    # ------------------------------------------------------------------
    def claim(self, wheel_id: str) -> bool:
        """Try to win the exclusive right to compile ``wheel_id``.

        Exactly one process across the cluster returns ``True`` per id
        (until the claim is released by publication); the rest should
        :meth:`wait`.
        """
        try:
            fd = os.open(
                os.path.join(self.path, _safe_name(wheel_id) + _CLAIM_SUFFIX),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        self.claims += 1
        return True

    def _release_claim(self, wheel_id: str) -> None:
        try:
            os.unlink(os.path.join(self.path, _safe_name(wheel_id) + _CLAIM_SUFFIX))
        except FileNotFoundError:
            pass

    def wait(
        self, wheel_id: str, timeout_s: float = 5.0, poll_s: float = 0.0005
    ) -> Optional[bytes]:
        """Wait for another process's publication of ``wheel_id``.

        Returns the blob, or ``None`` on timeout (claimant presumed
        dead) — the caller should then compile locally; correctness
        never depends on the store, only dedupe does.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            blob = self.get(wheel_id)
            if blob is not None:
                return blob
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-able dedupe accounting (merged into shard stats)."""
        try:
            published = sum(
                1 for name in os.listdir(self.path) if name.endswith(_BLOB_SUFFIX)
            )
        except FileNotFoundError:
            published = 0
        return {
            "path": self.path,
            "published": published,
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
            "claims": self.claims,
        }

    def close(self) -> None:
        """Owner: remove the backing directory; attachers: no-op."""
        if self._closed or not self._owner:
            self._closed = True
            return
        self._closed = True
        try:
            for name in os.listdir(self.path):
                try:
                    os.unlink(os.path.join(self.path, name))
                except FileNotFoundError:
                    pass
            os.rmdir(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedWheelStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedWheelStore(path={self.path!r}, owner={self._owner})"
