"""Content-addressed wheel registry with LRU-bounded compiled artifacts.

A wheel's identity is the SHA-256 of its *canonicalized* fitness vector
(contiguous little-endian float64 bytes) together with the selection
method and kernel policy.  Identity therefore survives the client's
container type (list, tuple, ndarray of any compatible dtype), process
restarts, and LRU eviction: re-registering the same wheel always yields
the same id, which is why eviction is safe to expose to clients.

Registration compiles at most once per distinct wheel; subsequent
registrations are cache hits that only touch the LRU order.  Compiled
artifacts (alias tables, prefix sums, key constants) can be shipped to
worker processes via :meth:`WheelRegistry.export` /
:meth:`WheelRegistry.import_blob` without recompiling, riding on
:meth:`repro.engine.CompiledWheel.to_bytes`.

With a :class:`repro.service.shm.SharedWheelStore` attached, the
compile-once guarantee extends *across processes*: before compiling, a
registry first consults the store (adopting a blob another worker
published), then races for the store's exclusive claim — so N cluster
replicas registering the same fitness vector concurrently still compile
it exactly once, with ``store_hits`` / ``compiles`` counters proving it.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.fitness import FitnessVector
from repro.engine.compiled import CompiledWheel
from repro.errors import UnknownWheelError

__all__ = ["wheel_digest", "WheelRegistry", "DEFAULT_MAX_WHEELS"]

#: Default LRU capacity: compiled wheels are O(n) memory each, so a few
#: hundred thousand-item wheels stay well under typical service budgets.
DEFAULT_MAX_WHEELS = 256

#: Digest prefix; versioned so a canonicalization change can never alias
#: ids minted under the old scheme.
_DIGEST_PREFIX = "w1"


def wheel_digest(fitness, method: str, policy: str) -> str:
    """Content address of ``(fitness, method, policy)``.

    The fitness vector is canonicalized to contiguous little-endian
    ``float64`` before hashing, so every representation of the same
    numbers maps to the same id.  The id embeds nothing positional — two
    services (or two runs) independently derive identical ids.
    """
    values = np.ascontiguousarray(np.asarray(fitness, dtype=np.float64))
    if values.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        values = values.astype("<f8")
    h = hashlib.sha256()
    h.update(b"repro-wheel-v1\x00")
    h.update(str(method).encode("utf-8") + b"\x00")
    h.update(str(policy).encode("utf-8") + b"\x00")
    h.update(np.int64(values.size).tobytes())
    h.update(values.tobytes())
    return f"{_DIGEST_PREFIX}:{h.hexdigest()}"


def digest_key(wheel_id: str) -> int:
    """A 64-bit integer derived from a wheel id (substream key material)."""
    tail = wheel_id.rsplit(":", 1)[-1]
    return int(tail[:16], 16)


class _Entry:
    """One cached wheel: the compiled artifact plus accounting."""

    __slots__ = ("wheel", "method", "policy", "hits")

    def __init__(self, wheel: CompiledWheel, method: str, policy: str) -> None:
        self.wheel = wheel
        self.method = method
        self.policy = policy
        self.hits = 0


class WheelRegistry:
    """LRU cache of compiled wheels keyed by content address.

    Thread-safe: the service runs single-threaded under asyncio, but the
    registry is also the hand-off point for shipping wheels to worker
    processes, so every public method takes the internal lock.

    Parameters
    ----------
    max_wheels:
        LRU capacity; the least recently used compiled wheel is evicted
        beyond this.  Content addressing makes eviction recoverable —
        re-registering reproduces the identical id.
    policy:
        Default kernel policy for registrations (``"auto"`` serves the
        fastest distribution-preserving kernel; ``"faithful"`` pins the
        bit-exact simulation of the registry method).
    store:
        Optional :class:`repro.service.shm.SharedWheelStore` for
        cross-process compile dedupe; local behaviour is unchanged
        without one.
    """

    def __init__(
        self,
        max_wheels: int = DEFAULT_MAX_WHEELS,
        policy: str = "auto",
        store=None,
    ) -> None:
        if max_wheels <= 0:
            raise ValueError(f"max_wheels must be positive, got {max_wheels}")
        self.max_wheels = int(max_wheels)
        self.policy = str(policy)
        self.store = store
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self.compiles = 0

    # ------------------------------------------------------------------
    def register(
        self,
        fitness,
        method: str = "log_bidding",
        policy: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Register (or re-hit) a wheel; returns ``(wheel_id, cached)``.

        Validation and compilation run outside the lock at most once per
        distinct wheel.  Raises the usual fitness contract errors
        (``FitnessError`` / ``DegenerateFitnessError``) for invalid
        vectors and ``UnknownMethodError`` for unknown methods — the
        service maps these to structured error responses.
        """
        policy = self.policy if policy is None else str(policy)
        fitness = fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        wheel_id = wheel_digest(fitness.values, method, policy)
        with self._lock:
            entry = self._entries.get(wheel_id)
            if entry is not None:
                entry.hits += 1
                self.hits += 1
                self._entries.move_to_end(wheel_id)
                return wheel_id, True
        # Compile outside the lock: O(n) table builds must not serialize
        # unrelated lookups.  A racing duplicate registration compiles
        # twice and the second insert wins; ids are identical either way.
        wheel = self._materialize(fitness, method, policy, wheel_id)
        with self._lock:
            cached = wheel_id in self._entries
            if not cached:
                self.misses += 1
                self._entries[wheel_id] = _Entry(wheel, str(method), policy)
                self._evict_locked()
            else:
                self.hits += 1
            self._entries.move_to_end(wheel_id)
            return wheel_id, cached

    def _materialize(
        self, fitness: FitnessVector, method: str, policy: str, wheel_id: str
    ) -> CompiledWheel:
        """Obtain the compiled wheel — from the shared store if possible.

        Store order of preference: adopt a published blob (store hit,
        zero compilation); else win the claim and compile + publish;
        else wait out the claimant and adopt its publication.  A dead
        claimant degrades to a local compile after the wait times out —
        the store only ever dedupes work, never gates correctness.
        """
        store = self.store
        claimed = False
        if store is not None:
            blob = store.get(wheel_id)
            if blob is None:
                claimed = store.claim(wheel_id)
                if not claimed:
                    blob = store.wait(wheel_id)
            if blob is not None:
                self.store_hits += 1
                return CompiledWheel.from_bytes(blob)
        try:
            wheel = CompiledWheel(fitness, method, kernel=policy)
        except BaseException:
            if claimed:
                store._release_claim(wheel_id)
            raise
        self.compiles += 1
        if store is not None:
            store.publish(wheel_id, wheel.to_bytes())
        return wheel

    def get(self, wheel_id: str) -> CompiledWheel:
        """Look up a compiled wheel, refreshing its LRU position.

        Raises
        ------
        UnknownWheelError
            If the id was never registered or has been evicted; the
            caller can re-register the same fitness to mint the same id.
        """
        with self._lock:
            entry = self._entries.get(wheel_id)
            if entry is None:
                raise UnknownWheelError(
                    f"wheel {wheel_id!r} is not registered (or was evicted); "
                    f"re-register the fitness vector to restore it"
                )
            entry.hits += 1
            self.hits += 1
            self._entries.move_to_end(wheel_id)
            return entry.wheel

    def __contains__(self, wheel_id: str) -> bool:
        with self._lock:
            return wheel_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def export(self, wheel_id: str) -> bytes:
        """Serialize a cached wheel for shipping to a worker process."""
        return self.get(wheel_id).to_bytes()

    def import_blob(self, blob: bytes) -> str:
        """Adopt a wheel serialized by :meth:`export`; returns its id.

        The id is recomputed from the imported content, so a corrupted
        or mismatched blob can never be addressed as the original.
        """
        wheel = CompiledWheel.from_bytes(blob)
        wheel_id = wheel_digest(wheel.fitness.values, wheel.method, wheel.policy)
        with self._lock:
            if wheel_id not in self._entries:
                self._entries[wheel_id] = _Entry(wheel, wheel.method, wheel.kernel)
                self._evict_locked()
            self._entries.move_to_end(wheel_id)
        return wheel_id

    # ------------------------------------------------------------------
    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_wheels:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, Any]:
        """JSON-able cache accounting (merged into metrics snapshots)."""
        with self._lock:
            lookups = self.hits + self.misses
            out = {
                "wheels": len(self._entries),
                "max_wheels": self.max_wheels,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "compiles": self.compiles,
                "store_hits": self.store_hits,
            }
            if self.store is not None:
                out["store"] = self.store.stats()
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WheelRegistry(wheels={len(self)}, max_wheels={self.max_wheels}, "
            f"policy={self.policy!r})"
        )
