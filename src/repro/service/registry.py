"""Content-addressed wheel registry with LRU-bounded compiled artifacts.

A wheel's identity is the SHA-256 of its *canonicalized* fitness vector
(contiguous little-endian float64 bytes) together with the selection
method and kernel policy.  Identity therefore survives the client's
container type (list, tuple, ndarray of any compatible dtype), process
restarts, and LRU eviction: re-registering the same wheel always yields
the same id, which is why eviction is safe to expose to clients.

Registration compiles at most once per distinct wheel; subsequent
registrations are cache hits that only touch the LRU order.  Compiled
artifacts (alias tables, prefix sums, key constants) can be shipped to
worker processes via :meth:`WheelRegistry.export` /
:meth:`WheelRegistry.import_blob` without recompiling, riding on
:meth:`repro.engine.CompiledWheel.to_bytes`.

With a :class:`repro.service.shm.SharedWheelStore` attached, the
compile-once guarantee extends *across processes*: before compiling, a
registry first consults the store (adopting a blob another worker
published), then races for the store's exclusive claim — so N cluster
replicas registering the same fitness vector concurrently still compile
it exactly once, with ``store_hits`` / ``compiles`` counters proving it.

Live mutation rides on **versioned wheels**: :meth:`WheelRegistry.update`
applies an ``(indices, values)`` delta to a registered wheel and mints a
*new* id — ``<root>@<verhex>``, where ``verhex`` hashes the parent id and
the canonical delta, so the same update history derives the same id on
every replica while the embedded root keeps every version of a wheel on
its owning cluster shard.  Versions are copy-on-write: the parent entry
is never touched, so in-flight draws against the old id stay bitwise
deterministic.  The new version is built by *incremental recompilation*
(a :class:`repro.core.dynamic.FenwickSampler` mirror applies the delta —
per-index tree walks below its measured cutoff, one vectorised rebuild
above it — and :meth:`repro.engine.CompiledWheel.apply_updates` patches
the kernel artifacts) instead of the full hash+validate+compile
registration path.  ``backend="stochastic_acceptance"`` skips
compilation entirely: the entry serves Lipowski & Lipowska rejection
sampling and its only derived state is the running max weight.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.dynamic import FenwickSampler
from repro.core.fitness import FitnessVector
from repro.engine.compiled import (
    AcceptanceWheel,
    CompiledWheel,
    _canonical_delta,
    wheel_from_bytes,
)
from repro.errors import DegenerateFitnessError, UnknownWheelError

__all__ = [
    "wheel_digest",
    "digest_key",
    "base_id",
    "version_id",
    "WheelRegistry",
    "DEFAULT_MAX_WHEELS",
    "BACKENDS",
]

#: Serving backends a wheel can be registered under.
BACKENDS = ("compiled", "stochastic_acceptance")

#: Default LRU capacity: compiled wheels are O(n) memory each, so a few
#: hundred thousand-item wheels stay well under typical service budgets.
DEFAULT_MAX_WHEELS = 256

#: Digest prefix; versioned so a canonicalization change can never alias
#: ids minted under the old scheme.
_DIGEST_PREFIX = "w1"


def wheel_digest(fitness, method: str, policy: str) -> str:
    """Content address of ``(fitness, method, policy)``.

    The fitness vector is canonicalized to contiguous little-endian
    ``float64`` before hashing, so every representation of the same
    numbers maps to the same id.  The id embeds nothing positional — two
    services (or two runs) independently derive identical ids.
    """
    values = np.ascontiguousarray(np.asarray(fitness, dtype=np.float64))
    if values.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        values = values.astype("<f8")
    h = hashlib.sha256()
    h.update(b"repro-wheel-v1\x00")
    h.update(str(method).encode("utf-8") + b"\x00")
    h.update(str(policy).encode("utf-8") + b"\x00")
    h.update(np.int64(values.size).tobytes())
    h.update(values.tobytes())
    return f"{_DIGEST_PREFIX}:{h.hexdigest()}"


def digest_key(wheel_id: str) -> int:
    """A 64-bit integer derived from a wheel id (substream key material).

    For a versioned id (``<root>@<verhex>``) the version digest is folded
    in, so draws against different versions of the same wheel consume
    distinct substreams; root ids keep their historical key bit-for-bit.
    """
    tail = wheel_id.rsplit(":", 1)[-1]
    if "@" in tail:
        root, _, ver = tail.partition("@")
        return int(root[:16], 16) ^ int(ver[:16], 16)
    return int(tail[:16], 16)


def base_id(wheel_id: str) -> str:
    """The root (shard-routing) id of a possibly-versioned wheel id.

    Every version of a wheel shares its root's hash-ring placement, so
    updates and subsequent draws against any version coalesce on the
    owning shard.
    """
    return wheel_id.split("@", 1)[0]


def version_id(parent_id: str, indices: np.ndarray, values: np.ndarray) -> str:
    """Derive the child id for applying a canonical delta to ``parent_id``.

    The version digest chains over the full parent id (itself possibly
    versioned) and the delta's canonical bytes, so the same update
    history mints the same id on every replica — *history*-addressed,
    where root ids are content-addressed.  The root prefix is preserved
    for shard routing (see :func:`base_id`).
    """
    idx = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
    vals = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if idx.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        idx = idx.astype("<i8")
    if vals.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        vals = vals.astype("<f8")
    h = hashlib.sha256()
    h.update(b"repro-wheel-update-v1\x00")
    h.update(parent_id.encode("ascii") + b"\x00")
    h.update(np.int64(idx.size).tobytes())
    h.update(idx.tobytes())
    h.update(vals.tobytes())
    return f"{base_id(parent_id)}@{h.hexdigest()[:16]}"


class _Entry:
    """One cached wheel: the serving artifact plus accounting.

    ``parent``/``version`` place the entry in its delta chain (roots are
    version 0 with no parent).  ``sampler`` is the lazily-built Fenwick
    mirror that applies deltas for compiled entries; it rides along to
    the child on update so consecutive updates never rebuild it.
    """

    __slots__ = ("wheel", "method", "policy", "hits", "parent", "version", "sampler")

    def __init__(
        self,
        wheel: Union[CompiledWheel, AcceptanceWheel],
        method: str,
        policy: str,
        parent: Optional[str] = None,
        version: int = 0,
    ) -> None:
        self.wheel = wheel
        self.method = method
        self.policy = policy
        self.hits = 0
        self.parent = parent
        self.version = version
        self.sampler: Optional[FenwickSampler] = None


class WheelRegistry:
    """LRU cache of compiled wheels keyed by content address.

    Thread-safe: the service runs single-threaded under asyncio, but the
    registry is also the hand-off point for shipping wheels to worker
    processes, so every public method takes the internal lock.

    Parameters
    ----------
    max_wheels:
        LRU capacity; the least recently used compiled wheel is evicted
        beyond this.  Content addressing makes eviction recoverable —
        re-registering reproduces the identical id.
    policy:
        Default kernel policy for registrations (``"auto"`` serves the
        fastest distribution-preserving kernel; ``"faithful"`` pins the
        bit-exact simulation of the registry method).
    store:
        Optional :class:`repro.service.shm.SharedWheelStore` for
        cross-process compile dedupe; local behaviour is unchanged
        without one.
    """

    def __init__(
        self,
        max_wheels: int = DEFAULT_MAX_WHEELS,
        policy: str = "auto",
        store=None,
    ) -> None:
        if max_wheels <= 0:
            raise ValueError(f"max_wheels must be positive, got {max_wheels}")
        self.max_wheels = int(max_wheels)
        self.policy = str(policy)
        self.store = store
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        # root id -> number of lineage records under it, insertion/touch
        # ordered.  A pinned root (any lineage) is exempt from LRU
        # eviction: clients may still hold any version id ever minted
        # under it, and chain replay bottoms out at the root.
        self._pinned: "OrderedDict[str, int]" = OrderedDict()
        # version id -> (parent id, canonical delta).  Deltas are tiny
        # (k indices + values) and survive entry eviction, so an evicted
        # version is re-derived by replaying its chain from the nearest
        # live ancestor instead of erroring.  Bounded by max_lineage:
        # past it, the least-recently-updated root's whole cohort is
        # forgotten at once (never a partial chain) and that root
        # becomes evictable again.
        self._lineage: Dict[str, Tuple[str, np.ndarray, np.ndarray]] = {}
        self.max_lineage = max(1024, 64 * self.max_wheels)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self.compiles = 0
        self.updates = 0
        self.update_hits = 0
        self.delta_recompiles = 0
        self.update_fenwick = 0
        self.update_rebuild = 0
        self.max_chain_len = 0
        self.rederives = 0

    # ------------------------------------------------------------------
    def register(
        self,
        fitness,
        method: str = "log_bidding",
        policy: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Register (or re-hit) a wheel; returns ``(wheel_id, cached)``.

        Validation and compilation run outside the lock at most once per
        distinct wheel.  Raises the usual fitness contract errors
        (``FitnessError`` / ``DegenerateFitnessError``) for invalid
        vectors and ``UnknownMethodError`` for unknown methods — the
        service maps these to structured error responses.

        ``backend="stochastic_acceptance"`` serves the wheel through the
        update-free rejection sampler instead of a compiled kernel: no
        tables are built, the only derived state is the running max
        weight, and the method is pinned to ``stochastic_acceptance``
        (the bit-contract is the Lipowski & Lipowska propose/accept
        loop; every exact method's distribution is the same ``F_i``).
        """
        policy = self.policy if policy is None else str(policy)
        backend = "compiled" if backend is None else str(backend)
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if backend == "stochastic_acceptance":
            if method == "independent":
                raise ValueError(
                    "the stochastic_acceptance backend serves the exact "
                    "distribution; the independent baseline's bias cannot "
                    "ride on it"
                )
            method = "stochastic_acceptance"
            # The rejection sampler has no kernel; "sa" is its digest
            # token so acceptance wheels never alias compiled ones.
            policy = "sa"
        fitness = fitness if isinstance(fitness, FitnessVector) else FitnessVector(fitness)
        wheel_id = wheel_digest(fitness.values, method, policy)
        with self._lock:
            entry = self._entries.get(wheel_id)
            if entry is not None:
                entry.hits += 1
                self.hits += 1
                self._entries.move_to_end(wheel_id)
                return wheel_id, True
        # Compile outside the lock: O(n) table builds must not serialize
        # unrelated lookups.  A racing duplicate registration compiles
        # twice and the second insert wins; ids are identical either way.
        wheel = self._materialize(fitness, method, policy, wheel_id, backend)
        with self._lock:
            cached = wheel_id in self._entries
            if not cached:
                self.misses += 1
                self._entries[wheel_id] = _Entry(wheel, str(method), policy)
                self._evict_locked()
            else:
                self.hits += 1
            self._entries.move_to_end(wheel_id)
            return wheel_id, cached

    def _materialize(
        self,
        fitness: FitnessVector,
        method: str,
        policy: str,
        wheel_id: str,
        backend: str = "compiled",
    ) -> Union[CompiledWheel, AcceptanceWheel]:
        """Obtain the compiled wheel — from the shared store if possible.

        Store order of preference: adopt a published blob (store hit,
        zero compilation); else win the claim and compile + publish;
        else wait out the claimant and adopt its publication.  A dead
        claimant degrades to a local compile after the wait times out —
        the store only ever dedupes work, never gates correctness.
        """
        store = self.store
        claimed = False
        if store is not None:
            blob = store.get(wheel_id)
            if blob is None:
                claimed = store.claim(wheel_id)
                if not claimed:
                    blob = store.wait(wheel_id)
            if blob is not None:
                self.store_hits += 1
                return wheel_from_bytes(blob)
        try:
            if backend == "stochastic_acceptance":
                wheel = AcceptanceWheel(fitness, policy=policy)
            else:
                wheel = CompiledWheel(fitness, method, kernel=policy)
        except BaseException:
            if claimed:
                store._release_claim(wheel_id)
            raise
        self.compiles += 1
        if store is not None:
            store.publish(wheel_id, wheel.to_bytes())
        return wheel

    def update(
        self, wheel_id: str, indices, values
    ) -> Tuple[str, Dict[str, Any]]:
        """Apply a delta to a registered wheel; returns ``(new_id, info)``.

        Copy-on-write: the parent entry is untouched, so draws already
        in flight against ``wheel_id`` replay bitwise.  The child id is
        derived from the parent id and the canonical delta
        (:func:`version_id`), so re-sending the same update is an
        idempotent cache hit (``info["cached"]``) — and never counts as
        an LRU miss, because nothing is looked up by content.

        Incremental recompilation instead of re-registration: a
        :class:`FenwickSampler` mirror applies the delta (per-index
        O(log n) tree walks below its measured ``rebuild_cutoff``, one
        vectorised linear rebuild above it) and the parent's kernel
        artifacts are patched via
        :meth:`repro.engine.CompiledWheel.apply_updates` — no content
        hash, no full validation, no Vose table build.  Acceptance
        (``stochastic_acceptance`` backend) entries skip even that and
        only advance the running max weight.

        ``info`` carries ``version`` (chain depth), ``parent``, and
        ``cached``.
        """
        entry = self._touch_or_rederive(wheel_id)
        uniq, vals_u = _canonical_delta(indices, values, entry.wheel.n)
        new_id = version_id(wheel_id, uniq, vals_u)
        with self._lock:
            cached = self._entries.get(new_id)
            if cached is not None:
                cached.hits += 1
                self.update_hits += 1
                self._entries.move_to_end(new_id)
                info = {"cached": True, "version": cached.version, "parent": wheel_id}
                return new_id, info
        # Build outside the lock, same rationale as register().
        version = entry.version + 1
        if isinstance(entry.wheel, AcceptanceWheel):
            new_wheel = entry.wheel.apply_updates(uniq, vals_u)
            mirror = None
            used_fenwick = False
        else:
            with self._lock:
                mirror = entry.sampler
            if mirror is None:
                mirror = FenwickSampler(entry.wheel.fitness.values)
                with self._lock:
                    entry.sampler = mirror
            mirror = mirror.copy()  # COW: never mutate the parent's mirror
            used_fenwick = uniq.size < mirror.rebuild_cutoff
            mirror.update_many(uniq, vals_u)
            if mirror.total <= 0.0:
                raise DegenerateFitnessError(
                    "update would zero every fitness value"
                )
            new_wheel = entry.wheel.apply_updates(
                uniq, vals_u, new_values=mirror.values
            )
        with self._lock:
            existing = self._entries.get(new_id)
            if existing is not None:
                existing.hits += 1
                self.update_hits += 1
                info = {"cached": True, "version": existing.version, "parent": wheel_id}
            else:
                self.updates += 1
                if isinstance(new_wheel, AcceptanceWheel):
                    pass
                else:
                    self.delta_recompiles += 1
                    if used_fenwick:
                        self.update_fenwick += 1
                    else:
                        self.update_rebuild += 1
                child = _Entry(
                    new_wheel, entry.method, entry.policy,
                    parent=wheel_id, version=version,
                )
                child.sampler = mirror
                self._entries[new_id] = child
                if version > self.max_chain_len:
                    self.max_chain_len = version
                info = {"cached": False, "version": version, "parent": wheel_id}
            # The delta outlives the entry: re-derivation replays it if
            # the child (or an intermediate ancestor) gets evicted.  The
            # root is (re)pinned against eviction while lineage exists.
            root = base_id(new_id)
            if new_id not in self._lineage:
                self._pinned[root] = self._pinned.get(root, 0) + 1
            self._lineage[new_id] = (wheel_id, uniq, vals_u)
            self._pinned.move_to_end(root)
            self._prune_lineage_locked(keep=root)
            self._evict_locked()
            self._entries.move_to_end(new_id)
            return new_id, info

    # ------------------------------------------------------------------
    def _prune_lineage_locked(self, keep: Optional[str] = None) -> None:
        """Bound lineage memory: forget whole cohorts, oldest root first.

        Dropping a root's cohort atomically (never a partial chain)
        preserves the invariant that any lineage record reaches a live
        root; the dropped root unpins and ages out of the LRU normally.
        ``keep`` protects the root being updated right now.
        """
        while len(self._lineage) > self.max_lineage and len(self._pinned) > 1:
            oldest = next(iter(self._pinned))
            if oldest == keep:
                self._pinned.move_to_end(oldest)
                oldest = next(iter(self._pinned))
                if oldest == keep:  # pragma: no cover - single pinned root
                    break
            self._pinned.pop(oldest)
            dead = [k for k in self._lineage if base_id(k) == oldest]
            for k in dead:
                del self._lineage[k]

    def _touch_or_rederive(self, wheel_id: str) -> _Entry:
        """Look up an update/draw target, rebuilding evicted versions.

        Refreshes the entry's LRU slot without counting a content hit or
        miss (update traffic keeps the cache counters draw-oriented).
        A missing *versioned* id is re-derived by replaying its recorded
        delta chain from the nearest live ancestor — the recovery that
        makes LRU eviction safe for live version chains.
        """
        for attempt in (0, 1):
            with self._lock:
                entry = self._entries.get(wheel_id)
                if entry is not None:
                    entry.hits += 1
                    self._entries.move_to_end(wheel_id)
                    return entry
            if attempt == 0 and not self._replay_chain(wheel_id):
                break
        raise UnknownWheelError(
            f"wheel {wheel_id!r} is not registered (or was evicted); "
            f"re-register (and replay updates) to restore it"
        )

    def _replay_chain(self, wheel_id: str) -> bool:
        """Rebuild an evicted version from its lineage; True on success.

        Walks parent links until a live ancestor, then replays each
        recorded delta oldest-first through :meth:`update` (which mints
        bit-identical ids — version ids are history-addressed).  Returns
        False when the chain is broken (root evicted with no live
        descendants: its lineage died with it).
        """
        if "@" not in wheel_id:
            return False
        with self._lock:
            chain = []
            cur = wheel_id
            while cur not in self._entries:
                rec = self._lineage.get(cur)
                if rec is None:
                    return False
                chain.append((cur, rec))
                cur = rec[0]
        for expected_id, (parent, idx, vals) in reversed(chain):
            minted, _info = self.update(parent, idx, vals)
            if minted != expected_id:  # pragma: no cover - corrupt lineage
                return False
        with self._lock:
            self.rederives += 1
        return True

    def get(self, wheel_id: str) -> CompiledWheel:
        """Look up a compiled wheel, refreshing its LRU position.

        An evicted *versioned* wheel is transparently re-derived from
        its lineage (delta chain replay from the nearest live ancestor),
        so UPDATE-then-evict-then-DRAW serves rather than erroring.

        Raises
        ------
        UnknownWheelError
            If the id was never registered or has been evicted beyond
            recovery; the caller can re-register the same fitness to
            mint the same root id (and replay updates for versions).
        """
        for attempt in (0, 1):
            with self._lock:
                entry = self._entries.get(wheel_id)
                if entry is not None:
                    entry.hits += 1
                    self.hits += 1
                    self._entries.move_to_end(wheel_id)
                    return entry.wheel
            if attempt == 0 and not self._replay_chain(wheel_id):
                break
        raise UnknownWheelError(
            f"wheel {wheel_id!r} is not registered (or was evicted); "
            f"re-register the fitness vector to restore it"
        )

    def __contains__(self, wheel_id: str) -> bool:
        with self._lock:
            return wheel_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def export(self, wheel_id: str) -> bytes:
        """Serialize a cached wheel for shipping to a worker process."""
        return self.get(wheel_id).to_bytes()

    def import_blob(self, blob: bytes) -> str:
        """Adopt a wheel serialized by :meth:`export`; returns its id.

        The id is recomputed from the imported content, so a corrupted
        or mismatched blob can never be addressed as the original.
        """
        wheel = wheel_from_bytes(blob)
        wheel_id = wheel_digest(wheel.fitness.values, wheel.method, wheel.policy)
        with self._lock:
            if wheel_id not in self._entries:
                self._entries[wheel_id] = _Entry(wheel, wheel.method, wheel.kernel)
                self._evict_locked()
            self._entries.move_to_end(wheel_id)
        return wheel_id

    # ------------------------------------------------------------------
    def _evict_locked(self) -> None:
        """LRU eviction that never strands a live version chain.

        Roots with lineage (any version ever minted and not yet pruned)
        are *pinned*: evicting one would make every version a client may
        still hold unrecoverable — chain replay bottoms out at the root,
        and only roots are re-registerable by content.  The scan skips
        pinned roots and the MRU entry (the insert that triggered
        eviction); if that leaves no victim the cache tolerates a
        bounded overflow — at most one entry per pinned root — rather
        than break the chain-replay guarantee.  Versioned entries evict
        freely; their lineage records stay behind for re-derivation.
        """
        while len(self._entries) > self.max_wheels:
            victim = None
            mru = next(reversed(self._entries))
            for wid in self._entries:  # LRU -> MRU
                if wid == mru:
                    break
                if "@" not in wid and wid in self._pinned:
                    continue
                victim = wid
                break
            if victim is None:
                break
            self._entries.pop(victim)
            self.evictions += 1

    def stats(self) -> Dict[str, Any]:
        """JSON-able cache accounting (merged into metrics snapshots)."""
        with self._lock:
            lookups = self.hits + self.misses
            out = {
                "wheels": len(self._entries),
                "max_wheels": self.max_wheels,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "compiles": self.compiles,
                "store_hits": self.store_hits,
                "updates": self.updates,
                "update_hits": self.update_hits,
                "delta_recompiles": self.delta_recompiles,
                "update_fenwick": self.update_fenwick,
                "update_rebuild": self.update_rebuild,
                "max_chain_len": self.max_chain_len,
                "rederives": self.rederives,
                "pinned_roots": len(self._pinned),
                "versions": sum(
                    1 for e in self._entries.values() if e.version > 0
                ),
            }
            if self.store is not None:
                out["store"] = self.store.stats()
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WheelRegistry(wheels={len(self)}, max_wheels={self.max_wheels}, "
            f"policy={self.policy!r})"
        )
