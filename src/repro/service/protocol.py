"""JSON-lines wire protocol for the selection service.

One request per line, one response per line, UTF-8, no framing beyond
``\\n`` — trivially scriptable (``echo '{"op": "ping"}' | python -m
repro serve --stdio``) and language-neutral.

Requests::

    {"op": "register", "fitness": [..], "method": "log_bidding",
     "policy": "auto", "backend": "compiled", "id": 7}
    {"op": "draw", "wheel": "w1:<hex>", "n": 16, "seed": 123,
     "deadline_us": 5000, "id": 8}
    {"op": "update", "wheel": "w1:<hex>", "indices": [3, 17],
     "values": [0.5, 2.0], "id": 12}
    {"op": "metrics", "id": 9}
    {"op": "stats", "id": 10}
    {"op": "ping", "id": 11}

Responses always echo ``id`` (when given) and carry a ``status``:

* ``{"status": "ok", ...}`` — op-specific payload (``wheel``/``cached``
  for register, ``draws`` for draw, ``wheel``/``version``/``parent``/
  ``cached`` for update — the new *versioned* id to draw against —
  the snapshot for metrics, the per-shard breakdown for stats);
* ``{"status": "overloaded", "error": ..., "message": ...}`` — the
  request was shed by admission control or expired in queue; safe to
  retry after backoff;
* ``{"status": "draining", "error": "ServiceDrainingError",
   "message": ...}`` — the service is shutting down gracefully;
  requests accepted earlier on this connection still complete, new ones
  should be retried against another replica;
* ``{"status": "error", "error": "DegenerateFitnessError",
   "message": ...}`` — structured failure; ``error`` is the repro
  exception class name so clients can re-raise the contract exception
  (see :func:`raise_structured`).

The same request/response dicts also travel as length-prefixed binary
frames on the hot path (:mod:`repro.service.frames`); this JSON-lines
form remains the negotiated fallback for old clients and stdio mode.

The service **never** answers a malformed line with silence or a closed
socket: undecodable input yields a ``ProtocolError`` response so a
confused client fails fast instead of hanging.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    DegenerateFitnessError,
    FitnessError,
    ProtocolError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadedError,
    UnknownMethodError,
    UnknownWheelError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "decode_request",
    "encode_response",
    "error_response",
    "ok_response",
    "raise_structured",
    "STRUCTURED_ERRORS",
]

#: Bumped on any wire-visible change; reported by the ``ping`` op.
#: v2 adds the ``stats`` op, the ``draining`` status, and binary-frame
#: negotiation (requests and responses are unchanged otherwise, so v1
#: clients interoperate).
PROTOCOL_VERSION = "repro/serve/v2"

#: Exception classes a response's ``error`` field may name, i.e. the
#: errors clients can round-trip back into typed exceptions.
STRUCTURED_ERRORS = {
    exc.__name__: exc
    for exc in (
        DeadlineExceededError,
        DegenerateFitnessError,
        FitnessError,
        ProtocolError,
        ReproError,
        ServiceDrainingError,
        ServiceError,
        ServiceOverloadedError,
        UnknownMethodError,
        UnknownWheelError,
        ValueError,
    )
}

_VALID_OPS = ("register", "draw", "update", "metrics", "stats", "ping")


def decode_request(line: str) -> Dict[str, Any]:
    """Parse one request line into a validated dict.

    Raises
    ------
    ProtocolError
        Not JSON, not an object, missing/unknown ``op``, or op-specific
        required fields absent or of the wrong shape.  The message is
        specific enough to debug from the client side alone.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op not in _VALID_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(_VALID_OPS)}"
        )
    if op == "register":
        fitness = request.get("fitness")
        if not isinstance(fitness, list) or not fitness:
            raise ProtocolError("register requires a non-empty 'fitness' array")
        backend = request.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ProtocolError(
                f"register 'backend' must be a string, got {backend!r}"
            )
    elif op == "update":
        if not isinstance(request.get("wheel"), str):
            raise ProtocolError("update requires a string 'wheel' id")
        indices = request.get("indices")
        values = request.get("values")
        if not isinstance(indices, list) or not indices:
            raise ProtocolError("update requires a non-empty 'indices' array")
        if not isinstance(values, list) or not values:
            raise ProtocolError("update requires a non-empty 'values' array")
        if len(indices) != len(values):
            raise ProtocolError(
                f"update 'indices' and 'values' must match, "
                f"got {len(indices)} vs {len(values)}"
            )
    elif op == "draw":
        if not isinstance(request.get("wheel"), str):
            raise ProtocolError("draw requires a string 'wheel' id")
        n = request.get("n", 1)
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ProtocolError(f"draw 'n' must be a positive integer, got {n!r}")
        seed = request.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise ProtocolError(f"draw 'seed' must be an integer, got {seed!r}")
    return request


def _json_default(value: Any):
    """JSON fallback for the numpy payloads response dicts may carry.

    Response dicts keep draws as ndarrays so the binary-frame transport
    can write them zero-copy; the conversion cost is paid only here, on
    the JSON-lines fallback path.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_response(response: Dict[str, Any]) -> bytes:
    """Serialize one response dict to a wire line (with trailing newline)."""
    return (
        json.dumps(response, separators=(",", ":"), default=_json_default) + "\n"
    ).encode("utf-8")


def ok_response(request_id: Optional[Any] = None, **payload: Any) -> Dict[str, Any]:
    """Build a success response, echoing the request id when present.

    ndarray payloads (draw results) are kept as arrays — the frame
    transport writes them zero-copy and :func:`encode_response` converts
    them only when the response actually leaves as JSON.
    """
    response: Dict[str, Any] = {"status": "ok"}
    if request_id is not None:
        response["id"] = request_id
    response.update(payload)
    return response


def error_response(
    exc: BaseException, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """Map an exception to its structured wire form.

    Shedding and expiry get ``status: "overloaded"`` (retryable), a
    graceful shutdown gets ``status: "draining"`` (retry elsewhere);
    everything else is ``status: "error"``.  The concrete class name
    rides in ``error`` either way, so clients keep full fidelity.
    """
    if isinstance(exc, ServiceDrainingError):
        status = "draining"
    elif isinstance(exc, (ServiceOverloadedError, DeadlineExceededError)):
        status = "overloaded"
    else:
        status = "error"
    response: Dict[str, Any] = {
        "status": status,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def raise_structured(response: Dict[str, Any]) -> Dict[str, Any]:
    """Re-raise a structured error response as its typed exception.

    Returns the response unchanged when ``status`` is ``"ok"`` — so
    clients can pipe every response through this one call.  Unknown
    error names degrade to :class:`ServiceError` rather than being
    swallowed.
    """
    status = response.get("status")
    if status == "ok":
        return response
    name = response.get("error", "")
    message = response.get("message", f"service returned status {status!r}")
    exc_type = STRUCTURED_ERRORS.get(name, ServiceError)
    raise exc_type(message)
