"""Dynamic micro-batching of concurrent draw requests.

Concurrent ``draw(wheel_id, n)`` calls against the same wheel are
coalesced into one :meth:`repro.engine.CompiledWheel.select_segments`
invocation — the inference-server trick applied to roulette wheels.  The
correctness headline is the **coalescing determinism contract**:

    every request draws from its own substream
    (``request_stream(service_seed, wheel_key, request_seed)``), and
    ``select_segments`` consumes those substreams exactly as solo
    ``select_many`` calls would, so a response is bit-identical whether
    the request was served alone, with one neighbour, or in a full
    batch — under any arrival interleaving.

Batching policy (per wheel):

* flush immediately once ``max_batch`` requests are pending;
* otherwise an opportunistic drainer yields to the event loop while new
  requests keep arriving and flushes as soon as arrivals stall for one
  tick — closed-loop clients coalesce fully without ever waiting out a
  timer;
* ``max_delay_us`` bounds the wait regardless, so open-loop trickle
  traffic sees bounded added latency.

Overload policy: admission control refuses (never queues) work past
``queue_limit`` by raising :class:`ServiceOverloadedError`; queued
requests whose ``deadline`` passes before their batch runs fail with
:class:`DeadlineExceededError`.  Waiters are always completed — a draw
call can fail but can never hang (the ``TeamTimeoutError`` discipline).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    ServiceDrainingError,
    ServiceOverloadedError,
)
from repro.rng.streams import SplitMixStream, derive_seeds, request_stream
from repro.service.metrics import ServiceMetrics
from repro.service.registry import WheelRegistry, digest_key

__all__ = ["BatchConfig", "MicroBatchScheduler", "NaiveScheduler"]


@dataclass
class BatchConfig:
    """Scheduler knobs (defaults tuned for the bench-serve workload)."""

    #: Requests per wheel that force an immediate flush.
    max_batch: int = 64
    #: Upper bound on coalescing delay for a queued request.
    max_delay_us: float = 200.0
    #: Admission bound on requests queued across all wheels.
    queue_limit: int = 1024
    #: Hard cap on draws in a single request (bounds flush memory).
    max_request_draws: int = 1 << 20

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_delay_us < 0:
            raise ValueError(f"max_delay_us must be >= 0, got {self.max_delay_us}")
        if self.queue_limit <= 0:
            raise ValueError(f"queue_limit must be positive, got {self.queue_limit}")
        if self.max_request_draws <= 0:
            raise ValueError(
                f"max_request_draws must be positive, got {self.max_request_draws}"
            )

    @classmethod
    def autotune(
        cls,
        *,
        batch_base_s: float,
        batch_per_draw_s: float,
        arrival_rate_rps: float,
        n_draws: int = 8,
        concurrency: float = 1.0,
        headroom: float = 2.0,
        batch_cap: int = 1024,
        delay_cap_us: float = 5000.0,
        queue_limit: int = 1024,
        max_request_draws: int = 1 << 20,
    ) -> "BatchConfig":
        """Derive ``max_batch``/``max_delay_us`` from the calibrated kernel model.

        The calibration (:func:`repro.tune.probes.probe_batch_kernel`)
        models one flush as ``batch_base_s + batch_per_draw_s * draws``.
        Serving ``B`` coalesced requests of ``n_draws`` draws therefore
        costs ``batch_base_s / B + batch_per_draw_s * n_draws`` per
        request, and keeping up with ``arrival_rate_rps`` requests/s
        needs that to stay under ``1 / rate`` — which pins the smallest
        sustainable batch:

            ``B_min = batch_base_s / (1/rate - batch_per_draw_s * n_draws)``

        ``concurrency`` is the measured burst size of the workload (a
        short probe run's ``queue_peak``): closed-loop clients arrive as
        simultaneous bursts rather than a steady stream, and a batch
        bound below the burst size splits every burst into multiple
        kernel passes no matter what the rate says.  ``max_batch`` is
        ``headroom * max(B_min, concurrency)`` (clamped to
        ``[1, batch_cap]``; the cap also applies when the marginal draw
        cost alone exceeds the arrival interval, i.e. no batch size can
        keep up and the queue bound is the real defence).
        ``max_delay_us`` is the time the target batch takes to *arrive*
        at the given rate — waiting any longer buys no extra coalescing,
        it only adds latency (clamped to ``delay_cap_us``).

        Deterministic given its inputs; draws are untouched (the config
        only decides when batches flush, never what any request draws).
        """
        if batch_base_s < 0.0 or batch_per_draw_s < 0.0:
            raise ValueError(
                f"kernel model costs must be >= 0, got base={batch_base_s}, "
                f"per_draw={batch_per_draw_s}"
            )
        if arrival_rate_rps <= 0.0:
            raise ValueError(
                f"arrival_rate_rps must be positive, got {arrival_rate_rps}"
            )
        if n_draws <= 0:
            raise ValueError(f"n_draws must be positive, got {n_draws}")
        if concurrency < 1.0:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        if batch_cap < 1:
            raise ValueError(f"batch_cap must be >= 1, got {batch_cap}")
        if delay_cap_us < 0.0:
            raise ValueError(f"delay_cap_us must be >= 0, got {delay_cap_us}")
        slack_s = 1.0 / arrival_rate_rps - batch_per_draw_s * n_draws
        if slack_s <= 0.0 or batch_base_s == 0.0:
            # Marginal kernel cost alone exceeds the arrival interval
            # (batch as hard as possible), or flushes are free (batch
            # size is irrelevant; coalesce opportunistically only).
            b_min = float(batch_cap) if slack_s <= 0.0 else 1.0
        else:
            b_min = batch_base_s / slack_s
        max_batch = max(
            1, min(batch_cap, math.ceil(headroom * max(b_min, concurrency)))
        )
        max_delay_us = min(delay_cap_us, 1e6 * max_batch / arrival_rate_rps)
        return cls(
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            queue_limit=queue_limit,
            max_request_draws=max_request_draws,
        )


@dataclass
class _Pending:
    """One queued draw request awaiting its batch."""

    n: int
    seed: int
    future: "asyncio.Future[np.ndarray]"
    enqueued_at: float
    deadline: Optional[float] = None  # absolute monotonic time


@dataclass
class _WheelQueue:
    """Per-wheel pending list plus its drainer task."""

    key: int  # substream key material from the wheel id
    pending: List[_Pending] = field(default_factory=list)
    drainer: Optional["asyncio.Task"] = None


class MicroBatchScheduler:
    """Coalesce concurrent draws per wheel into single kernel passes.

    Parameters
    ----------
    registry:
        The content-addressed wheel cache to draw from.
    config:
        Batching/overload knobs (:class:`BatchConfig`).
    seed:
        Service master seed; a request's substream is the pure function
        ``request_stream(seed, wheel_key, request_seed)`` of it, so two
        services with the same seed answer identically.
    metrics:
        Optional shared :class:`ServiceMetrics`; a private one is
        created otherwise.
    controller:
        Optional :class:`repro.tune.controller.DelayController` (or any
        object with its ``observe(batch_sizes, config)`` signature).
        When present, it is consulted after each flush and may adjust
        ``config.max_delay_us`` within its bounds — adapting how long
        trickle traffic waits to coalesce.  Off by default.  Tuning is
        bitwise-invisible in responses: every request draws from its
        own substream, so the controller changes *when* batches flush,
        never what any request draws.
    """

    def __init__(
        self,
        registry: WheelRegistry,
        config: Optional[BatchConfig] = None,
        *,
        seed: int = 0,
        metrics: Optional[ServiceMetrics] = None,
        controller=None,
    ) -> None:
        self.registry = registry
        self.config = config or BatchConfig()
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.controller = controller
        self._queues: Dict[str, _WheelQueue] = {}
        self._queued_requests = 0
        self._request_counter = 0
        self._closed = False
        self._draining = False

    # ------------------------------------------------------------------
    def next_request_seed(self) -> int:
        """Assign a seed for a request that didn't bring one.

        Monotonic per scheduler and independent of batching decisions,
        so auto-seeded requests keep the determinism contract for a
        fixed arrival order.
        """
        seed = self._request_counter
        self._request_counter += 1
        return seed

    def substream(self, wheel_id: str, request_seed: int):
        """The (replayable) uniform source for one request."""
        return request_stream(self.seed, digest_key(wheel_id), request_seed)

    # ------------------------------------------------------------------
    async def draw(
        self,
        wheel_id: str,
        n: int,
        *,
        seed: Optional[int] = None,
        deadline_us: Optional[float] = None,
    ) -> np.ndarray:
        """Draw ``n`` indices from a registered wheel, coalescing freely.

        Raises
        ------
        UnknownWheelError
            Unknown/evicted ``wheel_id`` (raised before queueing).
        ServiceOverloadedError
            Admission control refused the request (queue at bound).
        DeadlineExceededError
            The request was queued but its deadline passed unserved.
        """
        if self._closed:
            raise ServiceOverloadedError("scheduler is closed")
        if self._draining:
            raise ServiceDrainingError(
                "scheduler is draining; in-flight requests are completing "
                "but new draws are refused"
            )
        n = int(n)
        if n <= 0:
            raise ValueError(f"draw size must be positive, got {n}")
        if n > self.config.max_request_draws:
            raise ValueError(
                f"draw size {n} exceeds max_request_draws="
                f"{self.config.max_request_draws}; split the request"
            )
        self.registry.get(wheel_id)  # raise UnknownWheelError pre-admission
        if self._queued_requests >= self.config.queue_limit:
            self.metrics.shed()
            raise ServiceOverloadedError(
                f"queue limit {self.config.queue_limit} reached "
                f"({self._queued_requests} queued); request shed"
            )
        if seed is None:
            seed = self.next_request_seed()
        now = time.monotonic()
        req = _Pending(
            n=n,
            seed=int(seed),
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline=None if deadline_us is None else now + deadline_us * 1e-6,
        )
        queue = self._queues.get(wheel_id)
        if queue is None:
            queue = self._queues[wheel_id] = _WheelQueue(key=digest_key(wheel_id))
        queue.pending.append(req)
        self._queued_requests += 1
        self.metrics.enqueued(n)
        if len(queue.pending) >= self.config.max_batch:
            self._flush(wheel_id, queue)
        elif queue.drainer is None or queue.drainer.done():
            queue.drainer = asyncio.ensure_future(self._drain(wheel_id, queue))
        return await req.future

    async def update(self, wheel_id: str, indices, values):
        """Mint a new wheel version from a delta; returns ``(id, info)``.

        Updates never touch the draw queues: the child is a *new* id, so
        requests already queued against the parent keep their substreams
        and batch exactly as before — copy-on-write versioning is what
        makes a mutation safe to run concurrently with draws.
        """
        if self._closed:
            raise ServiceOverloadedError("scheduler is closed")
        if self._draining:
            raise ServiceDrainingError(
                "scheduler is draining; in-flight requests are completing "
                "but new updates are refused"
            )
        start = time.monotonic()
        new_id, info = self.registry.update(wheel_id, indices, values)
        self.metrics.updated(len(indices), time.monotonic() - start)
        await asyncio.sleep(0)  # yield like draws do between requests
        return new_id, info

    async def _drain(self, wheel_id: str, queue: _WheelQueue) -> None:
        """Opportunistic flush: wait while arrivals continue, never past
        ``max_delay_us``."""
        deadline = time.monotonic() + self.config.max_delay_us * 1e-6
        seen = len(queue.pending)
        while queue.pending:
            await asyncio.sleep(0)
            arrived = len(queue.pending)
            if arrived == 0:
                return  # a max_batch flush emptied the queue
            if arrived == seen or time.monotonic() >= deadline:
                self._flush(wheel_id, queue)
                return
            seen = arrived

    # ------------------------------------------------------------------
    def _flush(self, wheel_id: str, queue: _WheelQueue) -> None:
        """Serve every pending request for one wheel in a single pass."""
        batch, queue.pending = queue.pending, []
        if not batch:
            return
        self._queued_requests -= len(batch)
        for _ in batch:
            self.metrics.dequeued()
        now = time.monotonic()
        live: List[_Pending] = []
        for req in batch:
            if req.future.cancelled():
                continue
            if req.deadline is not None and now > req.deadline:
                self.metrics.expired()
                req.future.set_exception(
                    DeadlineExceededError(
                        f"request deadline passed after "
                        f"{(now - req.enqueued_at) * 1e6:.0f}us in queue"
                    )
                )
                continue
            live.append(req)
        if not live:
            return
        try:
            wheel = self.registry.get(wheel_id)
            # One vectorized derivation per flush; each element equals
            # request_stream(self.seed, queue.key, req.seed)'s seed.
            seeds = derive_seeds(self.seed, [req.seed for req in live], queue.key)
            segments = [
                (req.n, SplitMixStream(int(s))) for req, s in zip(live, seeds)
            ]
            draws = wheel.select_segments(segments)
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            for req in live:
                self.metrics.errored()
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        self.metrics.batch_sizes.observe(len(live))
        if self.controller is not None:
            tuned = self.controller.observe(self.metrics.batch_sizes, self.config)
            if tuned is not None:
                self.config.max_delay_us = tuned
                self.metrics.retuned(tuned)
        done = time.monotonic()
        offset = 0
        for req in live:
            part = draws[offset : offset + req.n].copy()
            offset += req.n
            if not req.future.done():
                self.metrics.served(done - req.enqueued_at)
                req.future.set_result(part)

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests currently queued across all wheels."""
        return self._queued_requests

    def _flush_all(self) -> None:
        for wheel_id, queue in list(self._queues.items()):
            if queue.drainer is not None and not queue.drainer.done():
                queue.drainer.cancel()
            self._flush(wheel_id, queue)

    async def drain(self) -> None:
        """Refuse new draws with :class:`ServiceDrainingError`, flush the rest.

        Unlike :meth:`close`, the refusal is the *typed* draining error a
        shutting-down server advertises, and every request accepted
        before the call still completes — the graceful-shutdown half of
        the no-request-lost contract (the test suite drains mid-burst to
        prove it).
        """
        self._draining = True
        self._flush_all()
        await asyncio.sleep(0)

    async def close(self) -> None:
        """Flush every queue, cancel drainers, and refuse further work."""
        self._closed = True
        self._flush_all()
        await asyncio.sleep(0)


class NaiveScheduler:
    """The one-request-one-select baseline (no cache hits, no coalescing).

    Serves each request exactly the way the repo's pre-service API
    would: rebuild a :class:`repro.core.RouletteWheel` (re-validating
    the fitness vector) and run the registry method's ``select_many`` —
    per request.  Substream derivation is shared with
    :class:`MicroBatchScheduler`, so for ``policy="faithful"`` wheels
    the two schedulers return bit-identical draws; only the throughput
    differs.  ``bench-serve`` measures this head-to-head.
    """

    def __init__(
        self,
        registry: WheelRegistry,
        *,
        seed: int = 0,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.registry = registry
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._request_counter = 0

    async def draw(
        self,
        wheel_id: str,
        n: int,
        *,
        seed: Optional[int] = None,
        deadline_us: Optional[float] = None,
    ) -> np.ndarray:
        """Serve one request with a dedicated validate+select pass."""
        from repro.core.selector import RouletteWheel

        n = int(n)
        if n <= 0:
            raise ValueError(f"draw size must be positive, got {n}")
        if seed is None:
            seed = self._request_counter
            self._request_counter += 1
        entry = self.registry.get(wheel_id)
        start = time.monotonic()
        self.metrics.enqueued(n)
        rng = request_stream(self.seed, digest_key(wheel_id), int(seed))
        wheel = RouletteWheel(np.asarray(entry.fitness.values), method=entry.method)
        draws = wheel.select_many(n, rng=rng)
        self.metrics.dequeued()
        self.metrics.batch_sizes.observe(1)
        self.metrics.served(time.monotonic() - start)
        await asyncio.sleep(0)  # yield like a real server between requests
        return draws
