"""Roulette selection inside a simulated GPU kernel.

Two exact implementations plus the measured contrast the paper's GPU
predecessors wrestled with:

* :func:`atomic_roulette` — the direct CUDA transcription of the paper's
  race: every thread with non-zero fitness issues one ``atomicMax`` of
  its logarithmic bid.  Exact, but atomics to one address **serialise**:
  the hardware cost is Θ(k) atomic transactions, not the CRCW model's
  O(log k) steps — the gap between the PRAM abstraction and real GPUs.
* :func:`warp_reduced_roulette` — the standard mitigation: each warp
  reduces its lanes' bids with shuffle intrinsics (no memory traffic),
  and only lane winners issue atomics: Θ(k / warp_width) serialised
  atomics, recovering most of the parallel speed-up.

Both pick each index with probability exactly ``F_i``; the benchmarks
chart the serialisation counts against the PRAM race's iteration counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.fitness import validate_fitness
from repro.errors import SelectionError
from repro.simt.machine import (
    AtomicMax,
    KernelMetrics,
    Read,
    SIMTMachine,
    Sync,
    ThreadContext,
    WarpMax,
    Write,
)

__all__ = ["SIMTOutcome", "atomic_roulette", "warp_reduced_roulette", "independent_atomic_roulette"]

#: Global-memory layout: cell 0 = max bid, cell 1 = winning index.
_CELL_MAX = 0
_CELL_OUT = 1


@dataclass
class SIMTOutcome:
    """Result of a kernel-side selection."""

    #: Selected index.
    winner: int
    #: Kernel cost counters.
    metrics: KernelMetrics
    #: Non-zero fitness count (the paper's ``k``).
    k: int


def _bid(ctx: ThreadContext, fitness: Sequence[float]) -> float:
    f = fitness[ctx.thread_id]
    if f <= 0.0:
        return -math.inf
    u = ctx.rng.random()
    return math.log(1.0 - u) / f


def _atomic_kernel(ctx: ThreadContext, fitness: Sequence[float]):
    r = _bid(ctx, fitness)
    if r != -math.inf:
        _old = yield AtomicMax(_CELL_MAX, r)
    yield Sync()
    s = yield Read(_CELL_MAX)
    if s == r and r != -math.inf:
        yield Write(_CELL_OUT, ctx.thread_id)
    return r


def _warp_reduced_kernel(ctx: ThreadContext, fitness: Sequence[float]):
    r = _bid(ctx, fitness)
    # Intra-warp reduction: every lane learns the warp's best bid.
    warp_best = yield WarpMax(r)
    if r == warp_best and r != -math.inf:
        # Only (one of) the warp winner(s) touches global memory.
        _old = yield AtomicMax(_CELL_MAX, r)
    yield Sync()
    s = yield Read(_CELL_MAX)
    if s == r and r != -math.inf:
        yield Write(_CELL_OUT, ctx.thread_id)
    return r


def _run(kernel, fitness: Sequence[float], warp_width: int, seed: int) -> SIMTOutcome:
    f = validate_fitness(fitness)
    machine = SIMTMachine(
        nthreads=len(f),
        memory_size=2,
        warp_width=warp_width,
        seed=seed,
    )
    machine.memory[_CELL_MAX] = -math.inf
    result = machine.launch(kernel, list(f))
    winner = result.memory[_CELL_OUT]
    if winner is None:
        raise SelectionError("kernel finished without announcing a winner")
    return SIMTOutcome(
        winner=int(winner),
        metrics=result.metrics,
        k=int((f > 0.0).sum()),
    )


def atomic_roulette(
    fitness: Sequence[float], warp_width: int = 32, seed: int = 0
) -> SIMTOutcome:
    """One ``atomicMax`` per positive-fitness thread (exact, Θ(k) atomics)."""
    return _run(_atomic_kernel, fitness, warp_width, seed)


def warp_reduced_roulette(
    fitness: Sequence[float], warp_width: int = 32, seed: int = 0
) -> SIMTOutcome:
    """Warp-shuffle reduction first, then one atomic per warp (exact)."""
    return _run(_warp_reduced_kernel, fitness, warp_width, seed)


def _independent_kernel(ctx: ThreadContext, fitness: Sequence[float]):
    # The biased GPU baseline (the paper's ref [6]): r_i = f_i * rand().
    f = fitness[ctx.thread_id]
    r = f * ctx.rng.random() if f > 0.0 else -math.inf
    if r != -math.inf:
        _old = yield AtomicMax(_CELL_MAX, r)
    yield Sync()
    s = yield Read(_CELL_MAX)
    if s == r and r != -math.inf:
        yield Write(_CELL_OUT, ctx.thread_id)
    return r


def independent_atomic_roulette(
    fitness: Sequence[float], warp_width: int = 32, seed: int = 0
) -> SIMTOutcome:
    """The biased independent-roulette kernel (Cecilia et al., ref [6]).

    Identical kernel structure and cost to :func:`atomic_roulette` — the
    paper's point is that switching to logarithmic bids buys exactness
    for free: same memory traffic, same atomics, correct probabilities.
    """
    return _run(_independent_kernel, fitness, warp_width, seed)
