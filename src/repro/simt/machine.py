"""The SIMT executor: warps, coalescing, serialised atomics, barriers.

Thread programs are generator coroutines (the house style of this
repository's machine models).  Execution advances one *warp instruction*
at a time: every live, unblocked thread of the warp contributes one
yielded operation to the slot, and the slot is charged according to the
GPU cost model:

* **global reads/writes** — one memory transaction per distinct
  ``segment_width``-cell segment the warp touches (coalescing),
* **atomics** — one transaction per lane, *serialised* when several
  lanes target one address (the counter the paper's CRCW model avoids),
* **warp intrinsics** (``WarpMax``) — one instruction, no memory
  traffic (models ``__shfl_down_sync`` reductions),
* **Sync** — block-wide barrier.

Same-slot plain writes to one address are resolved by a random winner
(CUDA leaves the survivor undefined; random matches the paper's CRCW
assumption and makes the tie behaviour testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlockError, MemoryAccessError, ProgramError
from repro.rng.adapters import UniformAdapter
from repro.rng.philox import Philox4x32
from repro.rng.streams import machine_substreams

__all__ = [
    "Read",
    "Write",
    "AtomicMax",
    "AtomicAdd",
    "WarpMax",
    "Sync",
    "ThreadContext",
    "KernelMetrics",
    "KernelResult",
    "SIMTMachine",
]

_DEFAULT_MAX_SLOTS = 1_000_000


@dataclass(frozen=True)
class Read:
    """Global-memory read of ``addr``."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Global-memory write (same-slot conflicts: random survivor)."""

    addr: int
    value: Any


@dataclass(frozen=True)
class AtomicMax:
    """Atomic max on ``addr``; yields back the *old* value (CUDA semantics)."""

    addr: int
    value: Any


@dataclass(frozen=True)
class AtomicAdd:
    """Atomic add on ``addr``; yields back the old value."""

    addr: int
    value: Any


@dataclass(frozen=True)
class WarpMax:
    """Warp-level max of ``value`` across the warp's live lanes.

    Models a ``__shfl_down_sync`` butterfly: every live lane receives the
    warp maximum; costs log2(warp_width) instructions and no memory
    traffic.
    """

    value: Any


@dataclass(frozen=True)
class Sync:
    """Block-wide barrier (``__syncthreads``)."""


@dataclass
class ThreadContext:
    """Per-thread context handed to kernels."""

    thread_id: int
    lane: int
    warp_id: int
    nthreads: int
    warp_width: int
    rng: UniformAdapter


@dataclass
class KernelMetrics:
    """Cost counters for one kernel launch."""

    #: Warp instruction slots issued (the compute term).
    warp_instructions: int = 0
    #: Coalesced global-memory transactions.
    memory_transactions: int = 0
    #: Serialised atomic operations (one per lane per contended address).
    atomic_serializations: int = 0
    #: Block-wide barriers.
    barriers: int = 0
    #: Threads launched.
    nthreads: int = 0
    #: Warp width.
    warp_width: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for table output."""
        return {
            "warp_instructions": self.warp_instructions,
            "memory_transactions": self.memory_transactions,
            "atomic_serializations": self.atomic_serializations,
            "barriers": self.barriers,
            "nthreads": self.nthreads,
            "warp_width": self.warp_width,
        }


@dataclass
class KernelResult:
    """Return values, metrics, and final global memory of a launch."""

    returns: List[Any] = field(default_factory=list)
    metrics: KernelMetrics = field(default_factory=KernelMetrics)
    memory: List[Any] = field(default_factory=list)


class SIMTMachine:
    """One thread block of ``nthreads`` threads in warps of ``warp_width``.

    Parameters
    ----------
    nthreads:
        Threads to launch.
    memory_size:
        Global memory cells.
    warp_width:
        Lanes per warp (default 32, CUDA's).
    segment_width:
        Cells per coalescing segment (default 32).
    seed:
        Master seed: per-thread Philox streams plus the arbitration
        stream for write conflicts and atomic ordering.
    """

    def __init__(
        self,
        nthreads: int,
        memory_size: int,
        warp_width: int = 32,
        segment_width: int = 32,
        seed: int = 0,
    ) -> None:
        if nthreads <= 0:
            raise ValueError(f"nthreads must be positive, got {nthreads}")
        if warp_width <= 0:
            raise ValueError(f"warp_width must be positive, got {warp_width}")
        if memory_size <= 0:
            raise MemoryAccessError(f"memory size must be positive, got {memory_size}")
        if segment_width <= 0:
            raise ValueError(f"segment_width must be positive, got {segment_width}")
        self.nthreads = nthreads
        self.warp_width = warp_width
        self.segment_width = segment_width
        self.memory: List[Any] = [None] * memory_size
        self._thread_seed, self._arbiter = machine_substreams(seed)

    # ------------------------------------------------------------------
    def thread_rng(self, tid: int) -> UniformAdapter:
        """The private stream of thread ``tid``."""
        return UniformAdapter(Philox4x32(self._thread_seed, stream=tid))

    def _check_addr(self, addr: int) -> None:
        if not isinstance(addr, int) or isinstance(addr, bool):
            raise MemoryAccessError(f"address must be an int, got {addr!r}")
        if not 0 <= addr < len(self.memory):
            raise MemoryAccessError(f"address {addr} out of range [0, {len(self.memory)})")

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Callable[..., Any],
        *args: Any,
        max_slots: Optional[int] = None,
        **kwargs: Any,
    ) -> KernelResult:
        """Run ``kernel(ctx, *args, **kwargs)`` on every thread to completion."""
        budget = _DEFAULT_MAX_SLOTS if max_slots is None else max_slots
        W = self.warp_width
        nwarps = (self.nthreads + W - 1) // W
        gens: Dict[int, Any] = {}
        for tid in range(self.nthreads):
            ctx = ThreadContext(
                thread_id=tid,
                lane=tid % W,
                warp_id=tid // W,
                nthreads=self.nthreads,
                warp_width=W,
                rng=self.thread_rng(tid),
            )
            gens[tid] = kernel(ctx, *args, **kwargs)

        metrics = KernelMetrics(nthreads=self.nthreads, warp_width=W)
        returns: List[Any] = [None] * self.nthreads
        send_values: Dict[int, Any] = {}
        at_barrier: set = set()
        live = set(gens)
        import math as _math

        warp_shuffle_cost = max(1, int(_math.ceil(_math.log2(max(2, W)))))

        while live:
            runnable_warps = [
                w
                for w in range(nwarps)
                if any(
                    tid in live and tid not in at_barrier
                    for tid in range(w * W, min((w + 1) * W, self.nthreads))
                )
            ]
            if not runnable_warps:
                # Everyone alive is at the barrier.
                at_barrier.clear()
                metrics.barriers += 1
                continue
            if metrics.warp_instructions >= budget:
                raise DeadlockError(
                    f"kernel exceeded {budget} warp instructions "
                    f"({len(live)} threads still live)"
                )
            for w in runnable_warps:
                lanes = [
                    tid
                    for tid in range(w * W, min((w + 1) * W, self.nthreads))
                    if tid in live and tid not in at_barrier
                ]
                if not lanes:
                    continue
                metrics.warp_instructions += 1
                slot: Dict[int, Any] = {}
                for tid in lanes:
                    gen = gens[tid]
                    try:
                        request = gen.send(send_values.pop(tid, None))
                    except StopIteration as stop:
                        returns[tid] = stop.value
                        live.discard(tid)
                        continue
                    slot[tid] = request
                self._execute_slot(slot, send_values, at_barrier, metrics)
                # WarpMax is an intra-warp butterfly: extra instructions.
                if any(isinstance(r, WarpMax) for r in slot.values()):
                    metrics.warp_instructions += warp_shuffle_cost - 1
        return KernelResult(returns=returns, metrics=metrics, memory=list(self.memory))

    # ------------------------------------------------------------------
    def _execute_slot(
        self,
        slot: Dict[int, Any],
        send_values: Dict[int, Any],
        at_barrier: set,
        metrics: KernelMetrics,
    ) -> None:
        """Apply one warp instruction slot with the GPU cost model."""
        read_segments: set = set()
        write_segments: set = set()
        plain_writes: Dict[int, List[Any]] = {}
        warpmax_tids: List[int] = []
        # Atomics execute in a random lane order (CUDA leaves it undefined).
        atomic_tids = [t for t, r in slot.items() if isinstance(r, (AtomicMax, AtomicAdd))]
        order = list(atomic_tids)
        for i in range(len(order) - 1, 0, -1):
            j = self._arbiter.randint_below(i + 1)
            order[i], order[j] = order[j], order[i]

        for tid, request in slot.items():
            if isinstance(request, Read):
                self._check_addr(request.addr)
                read_segments.add(request.addr // self.segment_width)
                send_values[tid] = self.memory[request.addr]
            elif isinstance(request, Write):
                self._check_addr(request.addr)
                write_segments.add(request.addr // self.segment_width)
                plain_writes.setdefault(request.addr, []).append(request.value)
            elif isinstance(request, (AtomicMax, AtomicAdd)):
                self._check_addr(request.addr)
            elif isinstance(request, WarpMax):
                warpmax_tids.append(tid)
            elif isinstance(request, Sync):
                at_barrier.add(tid)
            else:
                raise ProgramError(
                    f"thread {tid} yielded {request!r}; expected Read, Write, "
                    "AtomicMax, AtomicAdd, WarpMax, or Sync"
                )

        metrics.memory_transactions += len(read_segments) + len(write_segments)

        # Serialised atomics, in the shuffled order.
        for tid in order:
            request = slot[tid]
            old = self.memory[request.addr]
            if isinstance(request, AtomicMax):
                if old is None or request.value > old:
                    self.memory[request.addr] = request.value
            else:  # AtomicAdd
                self.memory[request.addr] = (0 if old is None else old) + request.value
                old = 0 if old is None else old
            send_values[tid] = old
            metrics.atomic_serializations += 1
        metrics.memory_transactions += len(order)

        # Plain writes: random survivor per address.
        for addr, values in plain_writes.items():
            self.memory[addr] = values[self._arbiter.randint_below(len(values))]

        # Warp max intrinsic: all live lanes receive the max.
        if warpmax_tids:
            top = max(slot[tid].value for tid in warpmax_tids)
            for tid in warpmax_tids:
                send_values[tid] = top

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SIMTMachine(nthreads={self.nthreads}, warp_width={self.warp_width}, "
            f"memory={len(self.memory)})"
        )
