"""A SIMT (GPU-style) execution substrate.

The paper grew out of GPU ant-colony implementations (its refs [3], [4]
and [6] are all CUDA ACO papers), where roulette selection runs inside a
kernel and the max race is realised with ``atomicMax``.  This package
simulates the essentials of that execution model well enough to *count*
what GPU papers count:

* warps of ``warp_width`` threads advancing in lockstep
  (:class:`repro.simt.machine.SIMTMachine`),
* a coalescing cost model — a warp's global reads in one instruction
  cost one transaction per distinct memory segment touched,
* atomics that **serialise** when lanes of a warp hit one address — the
  crucial difference from the paper's CRCW step, where n conflicting
  writes cost a single time unit,
* block-wide barriers (``Sync``).

:mod:`repro.simt.roulette` then implements the selection three ways —
naive per-thread ``atomicMax``, warp-reduce-then-atomic, and the biased
independent baseline — and the benchmarks compare their measured costs
against the paper's PRAM accounting.
"""

from repro.simt.machine import (
    AtomicAdd,
    AtomicMax,
    KernelMetrics,
    Read,
    SIMTMachine,
    Sync,
    ThreadContext,
    WarpMax,
    Write,
)
from repro.simt.roulette import (
    SIMTOutcome,
    atomic_roulette,
    independent_atomic_roulette,
    warp_reduced_roulette,
)

__all__ = [
    "SIMTMachine",
    "ThreadContext",
    "Read",
    "Write",
    "AtomicMax",
    "AtomicAdd",
    "WarpMax",
    "Sync",
    "KernelMetrics",
    "atomic_roulette",
    "warp_reduced_roulette",
    "independent_atomic_roulette",
    "SIMTOutcome",
]
