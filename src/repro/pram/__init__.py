"""A discrete-step PRAM (parallel random access machine) simulator.

The paper analyses its algorithms on the PRAM model [Gibbons & Rytter
1988]: ``n`` synchronous processors sharing a memory, with EREW
(exclusive read / exclusive write) or CRCW (concurrent read / concurrent
write) access disciplines.  In the paper's CRCW variant, when several
processors write one cell in the same step, *a randomly selected write
succeeds* — the arbitration mode that drives Theorem 1.

This package implements that machine faithfully enough to *count* what
the paper counts:

* one simulated step = one shared-memory access per processor
  (local computation between accesses is free, as in the unit-cost PRAM),
* reads observe the memory as of the end of the previous step; writes
  commit at the end of the step (read-before-write step semantics),
* access-discipline violations raise (EREW/CREW), and CRCW write
  conflicts are resolved by a pluggable :class:`WritePolicy`
  (COMMON / ARBITRARY / PRIORITY / RANDOM),
* every run returns a :class:`repro.pram.metrics.RunMetrics` with step,
  read, write, conflict, and peak-memory counts.

Programs are Python generator functions that ``yield`` access requests
(:class:`Read`, :class:`Write`, :class:`Barrier`); see
:mod:`repro.pram.program`.  The paper's algorithms are implemented on top
in :mod:`repro.pram.algorithms`.
"""

from repro.pram.policies import AccessMode, WritePolicy
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write
from repro.pram.memory import SharedMemory
from repro.pram.metrics import RunMetrics, RunResult
from repro.pram.machine import PRAM
from repro.pram.trace import TraceEvent, Tracer, render_trace

__all__ = [
    "PRAM",
    "AccessMode",
    "WritePolicy",
    "Read",
    "Write",
    "Barrier",
    "Noop",
    "ProcContext",
    "SharedMemory",
    "RunMetrics",
    "RunResult",
    "Tracer",
    "TraceEvent",
    "render_trace",
]
