"""The paper's §III CRCW max race — the core of Theorem 1.

Each processor repeatedly executes ``while s < r_i: s <- r_i`` against a
single shared cell ``s``; simultaneous writes are resolved by the
machine's write policy (RANDOM in the paper's model).  Once no processor
is active, ``s`` holds the maximum, and after a barrier each processor
writes its id to ``output`` if ``s == r_i``.

The quantity the paper analyses is the number of *iterations* of the
while loop (one read + one conditional write per iteration).  With RANDOM
arbitration each iteration's surviving value is a uniformly random active
bid, so at least half of the active processors retire with probability
>= 1/2, giving an expected iteration count of O(log k) where ``k`` is the
number of processors with finite bids (non-zero fitness).

Deviation from the paper's text: the paper initialises ``s`` to zero, but
the logarithmic bids are strictly negative, so a literal zero would win
the race outright and no processor would ever satisfy ``s == r_i``.  We
initialise ``s = -inf`` (the race identity), which is clearly the
intended semantics.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import SelectionError
from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode, WritePolicy
from repro.pram.program import Barrier, ProcContext, Read, Write

__all__ = ["RaceResult", "max_random_write_race", "race_program"]

#: Shared-memory layout: the whole algorithm needs O(1) cells.
_CELL_S = 0
_CELL_OUTPUT = 1
_MEMORY_SIZE = 2


@dataclass
class RaceResult:
    """Outcome of one max race."""

    #: Index written to ``output`` (arg-max of the values).
    winner: int
    #: The maximum value (final contents of ``s``).
    maximum: float
    #: Global while-loop iterations: rounds in which >= 1 processor wrote.
    iterations: int
    #: Per-processor count of (read, write) loop iterations performed.
    per_proc_writes: List[int]
    #: Machine cost counters.
    metrics: RunMetrics
    #: Number of participants with a finite value (the paper's ``k``).
    k: int
    #: With ``record_rounds=True``: the pid whose write to ``s`` survived
    #: arbitration, one entry per race round, in round order.  This is the
    #: step-for-step cross-validation hook for the vectorized race lab
    #: (:mod:`repro.engine.races`), which must reproduce the identical
    #: sequence under a shared arbitration stream.  ``None`` otherwise.
    round_winners: Optional[List[int]] = field(default=None)


def race_program(proc: ProcContext, values: Sequence[float]):
    """Program: the paper's while loop, barrier, then winner announcement.

    ``values[pid]`` is processor ``pid``'s bid; ``-inf`` marks a
    non-participant (zero fitness).  Returns the number of writes this
    processor performed (its active-iteration count).
    """
    r = values[proc.pid]
    writes = 0
    if r != -math.inf:
        while True:
            s = yield Read(_CELL_S)
            if not (s < r):
                break
            writes += 1
            yield Write(_CELL_S, r)
    yield Barrier()
    s = yield Read(_CELL_S)
    if s == r and r != -math.inf:
        yield Write(_CELL_OUTPUT, proc.pid)
    return writes


def max_random_write_race(
    values: Sequence[float],
    seed: int = 0,
    policy: WritePolicy = WritePolicy.RANDOM,
    max_steps: Optional[int] = None,
    record_rounds: bool = False,
) -> RaceResult:
    """Run the CRCW max race over ``values`` on a fresh machine.

    Parameters
    ----------
    values:
        One bid per processor; ``-inf`` entries sit the race out.  At
        least one bid must be finite.
    seed:
        Machine seed (drives the RANDOM write arbitration).
    policy:
        CRCW write policy; the paper's analysis assumes RANDOM, the other
        policies are exposed for the arbitration ablation.
    max_steps:
        Optional step budget (DeadlockError beyond it).
    record_rounds:
        Trace the run and attach :attr:`RaceResult.round_winners` — the
        surviving writer pid of every race round, for step-for-step
        cross-validation against the vectorized race kernel.

    Notes
    -----
    The *global* iteration count reported is ``max`` over processors of
    their personal loop iterations that performed a write, plus the final
    non-writing check round — matching "the while loop is iterated until
    no active processor exists".
    """
    values = [float(v) for v in values]
    n = len(values)
    if n == 0:
        raise SelectionError("race needs at least one processor")
    finite = [v for v in values if v != -math.inf]
    if not finite:
        raise SelectionError("all bids are -inf; no processor can win the race")
    if any(math.isnan(v) for v in values):
        raise SelectionError("NaN bids are not comparable")
    pram = PRAM(
        nprocs=n,
        memory_size=_MEMORY_SIZE,
        mode=AccessMode.CRCW,
        policy=policy,
        seed=seed,
    )
    pram.memory[_CELL_S] = -math.inf
    tracer = None
    if record_rounds:
        from repro.pram.trace import Tracer

        tracer = Tracer(limit=10_000_000)
    result = pram.run(race_program, values, max_steps=max_steps, tracer=tracer)
    winner = result.memory[_CELL_OUTPUT]
    if winner is None:
        raise SelectionError("race finished without announcing a winner")
    per_proc = [int(x) for x in result.returns]
    round_winners = None
    if tracer is not None:
        round_winners = [
            e.pid for e in tracer.writes_to(_CELL_S) if e.survived
        ]
    return RaceResult(
        winner=int(winner),
        maximum=result.memory[_CELL_S],
        iterations=max(per_proc) if per_proc else 0,
        per_proc_writes=per_proc,
        metrics=result.metrics,
        k=len(finite),
        round_winners=round_winners,
    )
