"""One-to-all broadcast on an EREW PRAM by recursive doubling.

After round ``d`` the value occupies cells ``0 .. 2**d - 1``; processor
``i`` copies from cell ``i - 2**d`` in round ``d`` (both accesses are
exclusive), so ``ceil(log2 n)`` rounds fill all ``n`` cells.  Used by the
prefix-sum roulette to distribute the spin ``R`` without violating EREW.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode
from repro.pram.program import Noop, ProcContext, Read, Write

__all__ = ["broadcast", "broadcast_program", "crew_broadcast"]


def broadcast_program(proc: ProcContext, base: int, n: int):
    """Program: replicate ``mem[base]`` into ``mem[base .. base+n-1]``.

    Every processor executes the same number of steps (Noop padding), so
    callers may embed this in longer lockstep programs.
    """
    i = proc.pid
    d = 1
    value = None
    have = i == 0
    if have:
        value = yield Read(base)
    else:
        yield Noop()
    while d < n:
        if not have and d <= i < 2 * d:
            value = yield Read(base + i - d)
            have = True
            yield Write(base + i, value)
        else:
            yield Noop()
            yield Noop()
        d *= 2
    return value


def broadcast(value: Any, n: int, seed: int = 0) -> Tuple[list, RunMetrics]:
    """Broadcast ``value`` to ``n`` cells on a fresh EREW machine.

    Returns the final cell contents and the run metrics (steps must be
    ``Theta(log n)`` — asserted in the tests).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    pram = PRAM(nprocs=n, memory_size=n, mode=AccessMode.EREW, seed=seed)
    pram.memory[0] = value
    result = pram.run(broadcast_program, 0, n)
    return result.memory, result.metrics


def crew_broadcast(value: Any, n: int, seed: int = 0) -> Tuple[list, RunMetrics]:
    """Broadcast in O(1) steps on a CREW machine (concurrent reads).

    The mode hierarchy made concrete: what costs Theta(log n) under EREW
    is a single concurrent read under CREW — every processor reads cell 0
    in the same step and writes its own cell in the next.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    from repro.pram.policies import AccessMode

    def program(proc: ProcContext):
        v = yield Read(0)
        yield Write(1 + proc.pid, v)
        return v

    pram = PRAM(nprocs=n, memory_size=n + 1, mode=AccessMode.CREW, seed=seed)
    pram.memory[0] = value
    result = pram.run(program)
    return result.memory[1:], result.metrics
