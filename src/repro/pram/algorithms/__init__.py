"""Classic PRAM algorithms plus the paper's max race and roulette selections.

Each function builds a machine, runs the program, and returns both the
algorithmic result and the run's cost metrics, so the benchmarks can chart
steps/memory against the paper's O-claims:

* :func:`broadcast` — O(log n) EREW one-to-all,
* :func:`tree_reduce_max` / :func:`tree_reduce_sum` — O(log n) EREW reduction,
* :func:`hillis_steele_scan` / :func:`blelloch_scan` — O(log n) prefix sums,
* :func:`max_random_write_race` — the paper's §III CRCW race (O(log k) expected),
* :func:`prefix_sum_roulette` — the §I baseline selection on an EREW machine,
* :func:`log_bidding_roulette` — the paper's full selection on a CRCW machine.
"""

from repro.pram.algorithms.broadcast import broadcast
from repro.pram.algorithms.compaction import compact_indices, compact_nonzero
from repro.pram.algorithms.reduction import tree_reduce_max, tree_reduce_sum
from repro.pram.algorithms.prefix_sum import blelloch_scan, hillis_steele_scan
from repro.pram.algorithms.sorting import bitonic_sort, pram_selection_order
from repro.pram.algorithms.max_random_write import RaceResult, max_random_write_race
from repro.pram.algorithms.roulette import (
    MultiSelectionOutcome,
    SelectionOutcome,
    log_bidding_roulette,
    log_bidding_roulette_without_replacement,
    prefix_sum_roulette,
)

__all__ = [
    "broadcast",
    "compact_indices",
    "compact_nonzero",
    "tree_reduce_max",
    "tree_reduce_sum",
    "hillis_steele_scan",
    "blelloch_scan",
    "bitonic_sort",
    "pram_selection_order",
    "max_random_write_race",
    "RaceResult",
    "prefix_sum_roulette",
    "log_bidding_roulette",
    "log_bidding_roulette_without_replacement",
    "SelectionOutcome",
    "MultiSelectionOutcome",
]
