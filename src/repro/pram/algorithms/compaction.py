"""Stream compaction on an EREW PRAM.

Gathers the indices of all marked processors into a contiguous prefix of
memory in O(log n) steps — the standard scan application.  In the
paper's setting this is how the ``k`` active (non-zero-fitness)
processors would be collected if an algorithm wanted to renumber them
densely (e.g. to hand the race exactly ``k`` processors, or to build the
compacted candidate lists GPU ACO kernels use).

Schedule: each processor computes its flag, an exclusive scan of the
flags yields each marked processor's output slot, and one exclusive
write per marked processor scatters its index.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write

__all__ = ["compact_indices", "compact_nonzero"]


def _compaction_program(proc: ProcContext, n: int, predicate: Callable):
    """Memory: [0, n) input; [n, 3n) scan ping/pong; [3n, 4n) output."""
    i = proc.pid
    value = yield Read(i)
    flag = 1 if predicate(value) else 0

    # Hillis–Steele inclusive scan of the flags over [n, 2n) / [2n, 3n).
    acc = flag
    yield Write(n + i, acc)
    yield Barrier()
    src, dst = n, 2 * n
    d = 1
    while d < n:
        if i >= d:
            left = yield Read(src + i - d)
            acc = acc + left
        else:
            yield Noop()
        yield Write(dst + i, acc)
        yield Barrier()
        src, dst = dst, src
        d *= 2
    # acc is the inclusive scan: slot = acc - flag (the exclusive value).
    if flag:
        yield Write(3 * n + (acc - flag), i)
    return acc  # processor n-1 returns the total count


def compact_indices(
    values: Sequence, predicate: Callable, seed: int = 0
) -> Tuple[List[int], RunMetrics]:
    """Indices ``i`` with ``predicate(values[i])``, in order, via PRAM.

    Returns ``(indices, metrics)``; ``metrics.steps`` is Θ(log n).
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot compact an empty sequence")
    pram = PRAM(nprocs=n, memory_size=4 * n, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(list(values))
    result = pram.run(_compaction_program, n, predicate)
    count = int(result.returns[n - 1])
    indices = [int(x) for x in result.memory[3 * n : 3 * n + count]]
    return indices, result.metrics


def compact_nonzero(fitness: Sequence[float], seed: int = 0) -> Tuple[List[int], RunMetrics]:
    """The paper's active set: indices with ``f_i > 0``, densely packed."""
    return compact_indices(fitness, lambda v: v > 0.0, seed=seed)
