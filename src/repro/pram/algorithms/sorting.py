"""Bitonic sort on an EREW PRAM — O(log^2 n) steps, n processors.

Batcher's bitonic network is the canonical PRAM/parallel-hardware sort.
Here it closes a loop with the paper's construction: sorting the
logarithmic bids descending yields the full without-replacement
selection *order* (§3 of docs/THEORY.md) in one parallel sort instead of
k successive races — the classic time/work trade-off.

Schedule: the network's compare-exchange stages; in each stage processor
``i`` with ``i < partner`` reads both cells and rewrites them ordered.
Reads/writes are exclusive per stage, so EREW suffices.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write

__all__ = ["bitonic_sort", "pram_selection_order"]


def _bitonic_program(proc: ProcContext, n_pad: int, descending: bool):
    i = proc.pid
    k = 2
    while k <= n_pad:
        j = k // 2
        while j >= 1:
            partner = i ^ j
            if partner > i:
                # This processor owns the compare-exchange for (i, partner).
                mine = yield Read(i)
                theirs = yield Read(partner)
                # Direction of the bitonic sequence containing i.
                ascending = (i & k) == 0
                if descending:
                    ascending = not ascending
                if (mine > theirs) == ascending:
                    yield Write(i, theirs)
                    yield Write(partner, mine)
                else:
                    yield Noop()
                    yield Noop()
            else:
                yield Noop()
                yield Noop()
                yield Noop()
                yield Noop()
            yield Barrier()
            j //= 2
        k *= 2
    return None


def bitonic_sort(
    values: Sequence[float], descending: bool = False, seed: int = 0
) -> Tuple[List[float], RunMetrics]:
    """Sort ``values`` on an EREW PRAM; returns (sorted, metrics).

    Non-power-of-two inputs are padded with sentinels that sort to the
    far end and are stripped afterwards.  Steps are Θ(log² n).
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot sort an empty sequence")
    n_pad = 1
    while n_pad < n:
        n_pad *= 2
    pad_value = float("-inf") if descending else float("inf")
    data = [float(v) for v in values] + [pad_value] * (n_pad - n)
    pram = PRAM(nprocs=n_pad, memory_size=n_pad, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(data)
    result = pram.run(_bitonic_program, n_pad, descending)
    out = [v for v in result.memory if v != pad_value][:n]
    # All-equal-to-sentinel corner: strip only the padding count.
    if len(out) < n:  # pragma: no cover - only if input contains the sentinel
        out = result.memory[:n]
    return out, result.metrics


def pram_selection_order(
    fitness: Sequence[float], seed: int = 0
) -> Tuple[List[int], RunMetrics]:
    """Full without-replacement selection order via one bitonic sort.

    Each processor draws its logarithmic bid locally; sorting the
    ``(bid, index)`` pairs descending yields the complete
    Efraimidis–Spirakis selection order (positive-fitness items first,
    ordered by the race; zero-fitness items excluded).
    """
    import math

    from repro.core.fitness import validate_fitness

    f = validate_fitness(fitness)
    n = len(f)
    # Bids drawn host-side from per-processor streams (local computation
    # is free in the PRAM model; the sort is what we meter).
    pram_for_streams = PRAM(nprocs=n, memory_size=1, seed=seed)
    keys = []
    for i in range(n):
        if f[i] > 0.0:
            u = pram_for_streams.processor_rng(i).random()
            keys.append(math.log(1.0 - u) / f[i])
        else:
            keys.append(-math.inf)
    # The network compares cells with > only, and cells hold arbitrary
    # Python values, so (key, index) tuples sort directly (lexicographic)
    # and the index rides along with its bid.
    pairs = [(keys[i], i) for i in range(n)]
    n_pad = 1
    while n_pad < n:
        n_pad *= 2
    sentinel = (-math.inf, n_pad)
    data = pairs + [sentinel] * (n_pad - n)
    pram = PRAM(nprocs=n_pad, memory_size=n_pad, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(data)
    result = pram.run(_bitonic_program, n_pad, True)
    order = [idx for (key, idx) in result.memory if key != -math.inf and idx < n]
    return order, result.metrics
