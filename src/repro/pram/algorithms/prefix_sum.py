"""Parallel prefix sums (scans) on an EREW PRAM.

Two classic schedules:

* **Hillis–Steele** (:func:`hillis_steele_scan`): ``ceil(log2 n)`` rounds,
  O(n log n) work, double-buffered so each round is EREW-clean.  This is
  the O(log n)-time, O(n)-memory scan the paper's §I prefix-sum selection
  assumes.
* **Blelloch** (:func:`blelloch_scan`): work-efficient O(n) two-phase
  (up-sweep / down-sweep) exclusive scan, ``2 log2 n`` rounds; included to
  let the benchmarks compare work against depth.

Both return inclusive prefix sums ``p_i = f_0 + ... + f_i`` to match the
paper's notation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write

__all__ = ["hillis_steele_scan", "blelloch_scan", "hillis_steele_program"]


def hillis_steele_program(proc: ProcContext, n: int, buf_a: int, buf_b: int):
    """Program: inclusive scan of ``mem[buf_a..buf_a+n-1]``.

    Round ``d``: processor ``i`` adds the value ``d`` positions to its
    left and writes into the other buffer; buffers swap each round.  All
    processors stay active every round (Noop padding for ``i < d``), and a
    barrier separates rounds so writes commit before the next round reads.
    Returns the buffer base holding the final scan.
    """
    i = proc.pid
    value = yield Read(buf_a + i)
    src, dst = buf_a, buf_b
    d = 1
    while d < n:
        if i >= d:
            left = yield Read(src + i - d)
            value = value + left
        else:
            yield Noop()
        yield Write(dst + i, value)
        yield Barrier()
        src, dst = dst, src
        d *= 2
    return src  # after the swap, src points at the buffer just written


def hillis_steele_scan(
    values: Sequence[float], seed: int = 0
) -> Tuple[List[float], RunMetrics]:
    """Inclusive prefix sums of ``values`` via Hillis–Steele.

    Returns ``(prefix_sums, metrics)``; ``metrics.steps`` is
    ``Theta(log n)`` and the machine uses ``2n`` data cells.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot scan an empty sequence")
    pram = PRAM(nprocs=n, memory_size=2 * n, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(list(values))
    result = pram.run(hillis_steele_program, n, 0, n)
    base = result.returns[0]
    return result.memory[base : base + n], result.metrics


def _blelloch_program(proc: ProcContext, n_pad: int):
    """Program: exclusive scan over a zero-padded power-of-two buffer.

    Up-sweep: round ``d`` has processor ``i`` (multiples of ``2d``)
    combine ``mem[i+d-1]`` into ``mem[i+2d-1]``.  Down-sweep mirrors it
    after the root is cleared.  Barriers keep rounds aligned since active
    sets differ between phases.
    """
    i = proc.pid
    # Up-sweep.
    d = 1
    while d < n_pad:
        if i % (2 * d) == 0 and i + 2 * d - 1 < n_pad:
            left = yield Read(i + d - 1)
            right = yield Read(i + 2 * d - 1)
            yield Write(i + 2 * d - 1, left + right)
        else:
            yield Noop()
            yield Noop()
            yield Noop()
        yield Barrier()
        d *= 2
    # Clear the root.
    if i == 0:
        yield Write(n_pad - 1, 0.0)
    else:
        yield Noop()
    yield Barrier()
    # Down-sweep.
    d = n_pad // 2
    while d >= 1:
        if i % (2 * d) == 0 and i + 2 * d - 1 < n_pad:
            left = yield Read(i + d - 1)
            right = yield Read(i + 2 * d - 1)
            yield Write(i + d - 1, right)
            yield Write(i + 2 * d - 1, left + right)
        else:
            yield Noop()
            yield Noop()
            yield Noop()
            yield Noop()
        yield Barrier()
        d //= 2
    return None


def blelloch_scan(
    values: Sequence[float], seed: int = 0
) -> Tuple[List[float], RunMetrics]:
    """Inclusive prefix sums via the work-efficient Blelloch scan.

    The machine computes the exclusive scan; the host adds each input back
    to convert to the paper's inclusive ``p_i``.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot scan an empty sequence")
    n_pad = 1
    while n_pad < n:
        n_pad *= 2
    pram = PRAM(nprocs=n_pad, memory_size=n_pad, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(list(values) + [0.0] * (n_pad - n))
    result = pram.run(_blelloch_program, n_pad)
    exclusive = result.memory[:n]
    inclusive = [e + v for e, v in zip(exclusive, values)]
    return inclusive, result.metrics
