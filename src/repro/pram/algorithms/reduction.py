"""Tree reduction (max / sum) on an EREW PRAM.

The binary-tree schedule the paper sketches in §III for finding the
maximum bid: round ``d`` lets every processor whose id is a multiple of
``2d`` combine its running value with cell ``id + d``; after
``ceil(log2 n)`` rounds cell 0 holds the reduction.  O(log n) steps,
O(n) cells — the costs the paper contrasts with its O(log k)/O(1) race.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode
from repro.pram.program import ProcContext, Read, Write

__all__ = ["tree_reduce", "tree_reduce_max", "tree_reduce_sum", "tree_reduce_program"]


def tree_reduce_program(proc: ProcContext, n: int, combine: Callable):
    """Program: fold ``mem[0..n-1]`` into ``mem[0]`` with ``combine``.

    Processor ``i`` owns cell ``i``.  A processor is active in round ``d``
    (``d = 1, 2, 4, ...``) iff ``i % (2d) == 0`` and ``i + d < n``; active
    sets shrink geometrically and an active processor was active in every
    earlier round, so the lockstep alignment holds without barriers.
    """
    i = proc.pid
    value = yield Read(i)
    d = 1
    while d < n:
        if i % (2 * d) == 0 and i + d < n:
            other = yield Read(i + d)
            value = combine(value, other)
            yield Write(i, value)
        else:
            return value  # never active again: retire immediately
        d *= 2
    return value


def tree_reduce(
    values: Sequence[float], combine: Callable, seed: int = 0
) -> Tuple[float, RunMetrics, List[float]]:
    """Reduce ``values`` with ``combine`` on a fresh EREW machine.

    Returns ``(result, metrics, final_memory)``.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot reduce an empty sequence")
    pram = PRAM(nprocs=n, memory_size=n, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(list(values))
    result = pram.run(tree_reduce_program, n, combine)
    return result.memory[0], result.metrics, result.memory


def tree_reduce_max(values: Sequence[float], seed: int = 0) -> Tuple[float, RunMetrics]:
    """Maximum of ``values`` in O(log n) EREW steps."""
    top, metrics, _ = tree_reduce(values, max, seed=seed)
    return top, metrics


def tree_reduce_sum(values: Sequence[float], seed: int = 0) -> Tuple[float, RunMetrics]:
    """Sum of ``values`` in O(log n) EREW steps."""
    total, metrics, _ = tree_reduce(values, lambda a, b: a + b, seed=seed)
    return total, metrics
