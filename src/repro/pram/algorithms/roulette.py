"""Complete roulette wheel selections executed on the PRAM simulator.

Two end-to-end implementations matching the paper's two parallel
algorithms:

* :func:`prefix_sum_roulette` — §I baseline: Hillis–Steele scan, a single
  spin by processor 0, an O(log n) EREW broadcast of the spin, and the
  data-parallel interval test.  Θ(log n) steps, Θ(n) shared cells.
* :func:`log_bidding_roulette` — the paper's method: every processor
  computes its logarithmic bid locally (free in the PRAM cost model,
  using its private stream) and enters the CRCW max race.  O(log k)
  expected steps, O(1) shared cells.

Both return a :class:`SelectionOutcome` carrying the winner and the
measured costs, so the benchmarks can compare against the paper's
complexity table directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.fitness import validate_fitness
from repro.errors import SelectionError
from repro.pram.algorithms.max_random_write import race_program
from repro.pram.machine import PRAM
from repro.pram.metrics import RunMetrics
from repro.pram.policies import AccessMode, WritePolicy
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write

__all__ = [
    "SelectionOutcome",
    "prefix_sum_roulette",
    "log_bidding_roulette",
    "log_bidding_roulette_without_replacement",
]


@dataclass
class SelectionOutcome:
    """Result of a full PRAM roulette selection."""

    #: Selected index.
    winner: int
    #: Machine cost counters for the whole selection.
    metrics: RunMetrics
    #: Shared cells the algorithm required (the paper's space bound).
    memory_cells: int
    #: While-loop iterations (log-bidding only; None for prefix-sum).
    race_iterations: Optional[int] = None
    #: Non-zero fitness count (the paper's ``k``; log-bidding only).
    k: Optional[int] = None


# ----------------------------------------------------------------------
# §I baseline: prefix-sum selection on an EREW machine
# ----------------------------------------------------------------------
# Memory layout for n processors:
#   [0, n)      input fitness, then scan ping buffer
#   [n, 2n)     scan pong buffer
#   [2n, 3n)    broadcast buffer for the spin R
#   3n          output cell
def _prefix_sum_roulette_program(proc: ProcContext, n: int):
    i = proc.pid
    # --- Hillis–Steele inclusive scan over cells [0, n) / [n, 2n).
    value = yield Read(i)
    src, dst = 0, n
    d = 1
    while d < n:
        if i >= d:
            left = yield Read(src + i - d)
            value = value + left
        else:
            yield Noop()
        yield Write(dst + i, value)
        yield Barrier()
        src, dst = dst, src
        d *= 2
    # src now holds the scan; value == p_i for processor i.
    p_i = value

    # --- Processor 0 spins R = rand() * p_{n-1} and seeds the broadcast.
    if i == 0:
        total = yield Read(src + n - 1)
        spin = proc.rng.random() * total
        yield Write(2 * n, spin)
    else:
        yield Noop()
        yield Noop()
    yield Barrier()

    # --- O(log n) EREW broadcast of R through cells [2n, 3n).
    d = 1
    have = i == 0
    spin_val = None
    if have:
        spin_val = yield Read(2 * n)
    else:
        yield Noop()
    while d < n:
        if not have and d <= i < 2 * d:
            spin_val = yield Read(2 * n + i - d)
            have = True
            yield Write(2 * n + i, spin_val)
        else:
            yield Noop()
            yield Noop()
        d *= 2
    yield Barrier()

    # --- Interval test p_{i-1} <= R < p_i; staggered reads stay EREW.
    if i > 0:
        p_prev = yield Read(src + i - 1)
    else:
        p_prev = 0.0
        yield Noop()
    if p_prev <= spin_val < p_i:
        yield Write(3 * n, i)
    return p_i


def prefix_sum_roulette(fitness: Sequence[float], seed: int = 0) -> SelectionOutcome:
    """The paper's §I prefix-sum-based parallel selection, on EREW.

    Exact (``Pr[i] = F_i``) and deterministic in cost: Θ(log n) steps,
    3n + 1 shared cells.
    """
    f = validate_fitness(fitness)
    n = len(f)
    pram = PRAM(nprocs=n, memory_size=3 * n + 1, mode=AccessMode.EREW, seed=seed)
    pram.memory.load(list(f))
    result = pram.run(_prefix_sum_roulette_program, n)
    winner = result.memory[3 * n]
    if winner is None:
        # R landed exactly on a boundary shared with zero-width intervals;
        # with continuous fitness this is measure-zero, but FP spins can
        # collide. The final positive item owns the closing boundary.
        positive = [j for j in range(n) if f[j] > 0.0]
        winner = positive[-1]
    return SelectionOutcome(
        winner=int(winner),
        metrics=result.metrics,
        memory_cells=3 * n + 1,
    )


# ----------------------------------------------------------------------
# The paper's method: local bids + CRCW race, O(1) shared cells
# ----------------------------------------------------------------------
def _log_bidding_program(proc: ProcContext, fitness: Sequence[float]):
    f = fitness[proc.pid]
    if f > 0.0:
        # Local computation (free in the PRAM cost model): one private
        # uniform and the logarithmic bid. 1-u keeps the argument in (0,1].
        u = proc.rng.random()
        r = math.log(1.0 - u) / f
    else:
        r = -math.inf
    # Delegate to the §III race program; its per-processor return value
    # (write count) becomes ours.
    writes = yield from race_program(proc, _Indexable(r))
    return writes, r


class _Indexable:
    """Adapter presenting one scalar as ``values[pid]`` for race_program."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __getitem__(self, _pid: int) -> float:
        return self.value


def log_bidding_roulette(
    fitness: Sequence[float],
    seed: int = 0,
    policy: WritePolicy = WritePolicy.RANDOM,
    max_steps: Optional[int] = None,
) -> SelectionOutcome:
    """The paper's complete parallel roulette selection (Theorem 1).

    Every processor draws its bid privately and races for the shared
    maximum cell; expected O(log k) steps, exactly 2 shared cells.
    """
    f = validate_fitness(fitness)
    n = len(f)
    pram = PRAM(
        nprocs=n,
        memory_size=2,
        mode=AccessMode.CRCW,
        policy=policy,
        seed=seed,
    )
    pram.memory[0] = -math.inf
    result = pram.run(_log_bidding_program, list(f), max_steps=max_steps)
    winner = result.memory[1]
    if winner is None:
        raise SelectionError("log-bidding race finished without a winner")
    per_proc_writes = [w for (w, _r) in result.returns]
    return SelectionOutcome(
        winner=int(winner),
        metrics=result.metrics,
        memory_cells=2,
        race_iterations=max(per_proc_writes),
        k=int((f > 0.0).sum()),
    )


# ----------------------------------------------------------------------
# Extension: k winners without replacement, still O(1) shared cells
# ----------------------------------------------------------------------
@dataclass
class MultiSelectionOutcome:
    """Result of sampling k distinct processors on the PRAM."""

    #: Selected indices in draw order (first = first race winner).
    winners: list
    #: Summed machine steps across the k races.
    total_steps: int
    #: Summed memory operations across the k races.
    total_work: int
    #: Race iterations of each round.
    race_iterations: list
    #: Shared cells required (unchanged: the race's 2).
    memory_cells: int


def log_bidding_roulette_without_replacement(
    fitness: Sequence[float],
    k: int,
    seed: int = 0,
    policy: WritePolicy = WritePolicy.RANDOM,
) -> MultiSelectionOutcome:
    """Sample ``k`` distinct processors, each round a fresh race.

    A natural extension of the paper's method: after each race the winner
    sets its fitness to zero (one local operation) and the survivors race
    again with fresh private bids.  Expected time ``O(sum_j log k_j)``
    with ``k_j`` the shrinking support — still O(1) shared memory.  The
    joint winner distribution equals sequential roulette
    draw-and-remove, i.e. Efraimidis–Spirakis sampling without
    replacement (asserted in the tests against
    :func:`repro.core.without_replacement.sample_without_replacement`).
    """
    f = validate_fitness(fitness).copy()
    support = int((f > 0.0).sum())
    if k < 0:
        raise SelectionError(f"k must be non-negative, got {k}")
    if k > support:
        raise SelectionError(
            f"cannot sample {k} processors without replacement from "
            f"{support} with positive fitness"
        )
    winners: list = []
    iterations: list = []
    total_steps = 0
    total_work = 0
    for round_no in range(k):
        out = log_bidding_roulette(f, seed=seed + round_no, policy=policy)
        winners.append(out.winner)
        iterations.append(out.race_iterations)
        total_steps += out.metrics.steps
        total_work += out.metrics.work
        f[out.winner] = 0.0
    return MultiSelectionOutcome(
        winners=winners,
        total_steps=total_steps,
        total_work=total_work,
        race_iterations=iterations,
        memory_cells=2,
    )
