"""The processor-program abstraction.

A PRAM program is a generator function ``program(proc)`` where ``proc`` is
a :class:`ProcContext`.  Each ``yield`` of a request object consumes one
machine step for that processor:

* ``value = yield Read(addr)`` — read cell ``addr`` (value as of the end
  of the previous step),
* ``yield Write(addr, value)`` — write ``value`` (commits at end of step,
  subject to the machine's conflict policy),
* ``yield Barrier()`` — block until every live processor has reached a
  barrier.

Local computation between yields is free, matching the unit-cost PRAM in
which a step is "read, compute, write".  A program's ``return`` value is
collected into :class:`repro.pram.metrics.RunResult.returns`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Read", "Write", "Barrier", "Noop", "ProcContext"]


@dataclass(frozen=True)
class Read:
    """Request to read shared-memory cell ``addr``."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Request to write ``value`` to shared-memory cell ``addr``."""

    addr: int
    value: Any


@dataclass(frozen=True)
class Barrier:
    """Request to wait until all live processors reach a barrier."""


@dataclass(frozen=True)
class Noop:
    """Burn one step without touching memory (keeps lockstep alignment)."""


class ProcContext:
    """Per-processor execution context handed to program functions.

    Attributes
    ----------
    pid:
        This processor's id, ``0 <= pid < nprocs``.
    nprocs:
        Total number of processors in the machine.
    rng:
        This processor's private random stream (a
        :class:`repro.rng.adapters.UniformAdapter` over a counter-based
        generator keyed by ``pid`` — independent across processors by
        construction).
    local:
        Scratch dict for per-processor state (purely a convenience; local
        variables in the generator work equally well).
    """

    __slots__ = ("pid", "nprocs", "rng", "local")

    def __init__(self, pid: int, nprocs: int, rng) -> None:
        self.pid = pid
        self.nprocs = nprocs
        self.rng = rng
        self.local: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcContext(pid={self.pid}, nprocs={self.nprocs})"
