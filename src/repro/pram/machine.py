"""The synchronous PRAM executor.

Runs one generator program per processor in lockstep.  In every machine
step each live, non-blocked processor is resumed once and must yield one
request; reads are serviced against the memory state of the previous
step, writes commit together at the end of the step under the machine's
access discipline.  Barriers block a processor until every other live
processor is blocked at a barrier (or has halted).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import DeadlockError, ProgramError
from repro.pram.memory import SharedMemory
from repro.pram.metrics import RunMetrics, RunResult
from repro.pram.policies import AccessMode, WritePolicy
from repro.pram.program import Barrier, Noop, ProcContext, Read, Write
from repro.rng.adapters import UniformAdapter
from repro.rng.philox import Philox4x32
from repro.rng.streams import machine_substreams

__all__ = ["PRAM"]

#: Hard default on simulated steps, to turn accidental livelock into an error.
_DEFAULT_MAX_STEPS = 10_000_000


class PRAM:
    """A simulated parallel random access machine.

    Parameters
    ----------
    nprocs:
        Number of synchronous processors.
    memory_size:
        Number of shared cells.
    mode:
        Access discipline (default CRCW, the paper's model).
    policy:
        CRCW write-conflict policy (default RANDOM, the paper's model).
    seed:
        Master seed: deterministically derives one private stream per
        processor (counter-based Philox keyed by pid) and the machine's
        write-arbitration stream.
    """

    def __init__(
        self,
        nprocs: int,
        memory_size: int,
        mode: AccessMode = AccessMode.CRCW,
        policy: WritePolicy = WritePolicy.RANDOM,
        seed: int = 0,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.mode = mode
        self.policy = policy
        self.seed = seed
        self.memory = SharedMemory(memory_size, mode=mode, policy=policy)
        # Distinct sub-seeds for processors vs. arbitration so the two
        # random sources never correlate (shared derivation: repro.rng).
        self._proc_seed, self._arbiter = machine_substreams(seed)

    # ------------------------------------------------------------------
    def processor_rng(self, pid: int) -> UniformAdapter:
        """The private uniform stream of processor ``pid`` (deterministic)."""
        return UniformAdapter(Philox4x32(self._proc_seed, stream=pid))

    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        max_steps: Optional[int] = None,
        tracer: Optional[Any] = None,
        **kwargs: Any,
    ) -> RunResult:
        """Execute ``program(proc, *args, **kwargs)`` on every processor.

        Returns a :class:`RunResult`; raises :class:`DeadlockError` if the
        step budget is exhausted, and propagates any discipline violation
        from the shared memory.  Pass a :class:`repro.pram.trace.Tracer`
        as ``tracer`` to record the per-step event timeline.
        """
        from repro.pram.trace import TraceEvent
        budget = _DEFAULT_MAX_STEPS if max_steps is None else max_steps
        gens: Dict[int, Any] = {}
        returns: list = [None] * self.nprocs
        for pid in range(self.nprocs):
            ctx = ProcContext(pid, self.nprocs, self.processor_rng(pid))
            gens[pid] = program(ctx, *args, **kwargs)

        metrics = RunMetrics(nprocs=self.nprocs, memory_cells=self.memory.size)
        send_values: Dict[int, Any] = {}
        at_barrier: set = set()
        live = set(gens)

        reads_before = self.memory.total_reads
        writes_before = self.memory.total_writes
        conflicts_before = self.memory.conflicted_writes

        while live:
            runnable = [pid for pid in sorted(live) if pid not in at_barrier]
            if not runnable:
                # Everyone alive is at a barrier: release it.
                at_barrier.clear()
                metrics.barriers += 1
                # The barrier release itself is a synchronisation step.
                metrics.steps += 1
                continue
            if metrics.steps >= budget:
                raise DeadlockError(
                    f"PRAM exceeded {budget} steps "
                    f"({len(live)} processors still live)"
                )
            metrics.steps += 1
            step_writes: list = []  # (pid, addr, value) issued this step
            for pid in runnable:
                gen = gens[pid]
                try:
                    request = gen.send(send_values.pop(pid, None))
                except StopIteration as stop:
                    returns[pid] = stop.value
                    live.discard(pid)
                    if tracer is not None:
                        tracer.record(TraceEvent(metrics.steps, pid, "halt"))
                    continue
                if isinstance(request, Read):
                    value = self.memory.request_read(pid, request.addr)
                    send_values[pid] = value
                    if tracer is not None:
                        tracer.record(
                            TraceEvent(metrics.steps, pid, "read", request.addr, value)
                        )
                elif isinstance(request, Write):
                    self.memory.request_write(pid, request.addr, request.value)
                    step_writes.append((pid, request.addr, request.value))
                elif isinstance(request, Barrier):
                    at_barrier.add(pid)
                    if tracer is not None:
                        tracer.record(TraceEvent(metrics.steps, pid, "barrier"))
                elif isinstance(request, Noop):
                    if tracer is not None:
                        tracer.record(TraceEvent(metrics.steps, pid, "noop"))
                else:
                    raise ProgramError(
                        f"processor {pid} yielded {request!r}; expected "
                        "Read, Write, or Barrier"
                    )
            winners = self.memory.commit_step(self._arbiter)
            if tracer is not None:
                for pid, addr, value in step_writes:
                    tracer.record(
                        TraceEvent(
                            metrics.steps,
                            pid,
                            "write",
                            addr,
                            value,
                            survived=(winners.get(addr) == pid),
                        )
                    )

        metrics.reads = self.memory.total_reads - reads_before
        metrics.writes = self.memory.total_writes - writes_before
        metrics.write_conflicts = self.memory.conflicted_writes - conflicts_before
        metrics.cells_touched = len(self.memory.cells_touched)
        return RunResult(returns=returns, metrics=metrics, memory=self.memory.dump())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PRAM(nprocs={self.nprocs}, memory={self.memory.size}, "
            f"mode={self.mode.value}, policy={self.policy.value})"
        )
