"""Step-by-step execution traces of PRAM runs.

``PRAM.run(..., tracer=Tracer())`` records one event per memory request
per step; :func:`render_trace` prints the timeline — the fastest way to
*see* the race's rounds, who wrote, and whose write survived the
arbitration.  Used by the docs/examples and by tests that assert on the
fine-grained schedule rather than aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["TraceEvent", "Tracer", "render_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One memory request observed during a traced run."""

    #: Machine step the request was issued in.
    step: int
    #: Requesting processor.
    pid: int
    #: "read" / "write" / "barrier" / "noop" / "halt".
    kind: str
    #: Address for read/write events (None otherwise).
    addr: Optional[int] = None
    #: Value written, or value observed by a read.
    value: Any = None
    #: For writes: did this write survive the conflict resolution?
    survived: Optional[bool] = None


@dataclass
class Tracer:
    """Event collector passed to :meth:`repro.pram.PRAM.run`.

    ``limit`` bounds memory use on long runs; once reached, further
    events are dropped and :attr:`truncated` is set.
    """

    limit: int = 100_000
    events: List[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def record(self, event: TraceEvent) -> None:
        """Append one event (drops silently past the limit)."""
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append(event)

    def steps(self) -> List[int]:
        """Sorted distinct step numbers present in the trace."""
        return sorted({e.step for e in self.events})

    def at_step(self, step: int) -> List[TraceEvent]:
        """Events of one step, in pid order."""
        return sorted(
            (e for e in self.events if e.step == step), key=lambda e: e.pid
        )

    def writes_to(self, addr: int) -> List[TraceEvent]:
        """All write events touching ``addr``, in time order."""
        return [e for e in self.events if e.kind == "write" and e.addr == addr]


def render_trace(tracer: Tracer, max_steps: Optional[int] = None) -> str:
    """Human-readable timeline, one line per step."""
    lines: List[str] = []
    steps = tracer.steps()
    if max_steps is not None:
        steps = steps[:max_steps]
    for step in steps:
        parts = []
        for e in tracer.at_step(step):
            if e.kind == "read":
                parts.append(f"P{e.pid} R[{e.addr}]->{e.value!r}")
            elif e.kind == "write":
                marker = "" if e.survived is None else ("!" if e.survived else "x")
                parts.append(f"P{e.pid} W[{e.addr}]={e.value!r}{marker}")
            else:
                parts.append(f"P{e.pid} {e.kind}")
        lines.append(f"step {step:>4}: " + "  ".join(parts))
    if tracer.truncated:
        lines.append("... (trace truncated)")
    return "\n".join(lines)
