"""Memory-access disciplines and CRCW write-conflict policies."""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.errors import CommonWriteViolation

__all__ = ["AccessMode", "WritePolicy", "resolve_write"]


class AccessMode(enum.Enum):
    """The PRAM memory-access discipline."""

    #: Exclusive read, exclusive write: at most one access per cell per step.
    EREW = "erew"
    #: Concurrent read, exclusive write: any number of readers; a written
    #: cell admits exactly one writer and no simultaneous readers.
    CREW = "crew"
    #: Concurrent read, concurrent write; conflicts resolved by a
    #: :class:`WritePolicy`.
    CRCW = "crcw"


class WritePolicy(enum.Enum):
    """How a CRCW machine resolves simultaneous writes to one cell."""

    #: All written values must be equal, else :class:`CommonWriteViolation`.
    COMMON = "common"
    #: Implementation-defined winner; this implementation takes the
    #: *highest* processor id (deliberately different from PRIORITY so the
    #: two policies are distinguishable in tests).
    ARBITRARY = "arbitrary"
    #: The lowest processor id wins.
    PRIORITY = "priority"
    #: A uniformly random writer wins — the paper's model, and the
    #: assumption behind Theorem 1's halving argument.
    RANDOM = "random"


def resolve_write(
    writers: List[Tuple[int, object]], policy: WritePolicy, rng
) -> Tuple[int, object]:
    """Pick the winning ``(pid, value)`` among simultaneous writers.

    Parameters
    ----------
    writers:
        Non-empty list of ``(processor id, value)`` pairs for one cell.
    policy:
        The machine's CRCW write policy.
    rng:
        The machine's arbitration RNG (used only by RANDOM).

    Raises
    ------
    CommonWriteViolation
        Under COMMON when values differ.
    """
    if len(writers) == 1:
        return writers[0]
    if policy is WritePolicy.COMMON:
        first_value = writers[0][1]
        for pid, value in writers[1:]:
            if value != first_value:
                raise CommonWriteViolation(
                    f"CRCW-COMMON conflict: processors wrote differing values "
                    f"({writers[0][0]} wrote {first_value!r}, {pid} wrote {value!r})"
                )
        return writers[0]
    if policy is WritePolicy.PRIORITY:
        return min(writers, key=lambda w: w[0])
    if policy is WritePolicy.ARBITRARY:
        return max(writers, key=lambda w: w[0])
    if policy is WritePolicy.RANDOM:
        return writers[rng.randint_below(len(writers))]
    raise ValueError(f"unknown write policy: {policy!r}")  # pragma: no cover
