"""Shared memory with per-step access accounting and conflict detection.

The memory operates in steps: all reads of a step are serviced from the
state left by the previous step; writes are buffered and committed at
:meth:`SharedMemory.commit_step`, where the access-mode discipline is
enforced and CRCW conflicts are resolved by the write policy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    MemoryAccessError,
    ReadConflictError,
    WriteConflictError,
)
from repro.pram.policies import AccessMode, WritePolicy, resolve_write

__all__ = ["SharedMemory"]


class SharedMemory:
    """A vector of cells with EREW/CREW/CRCW step semantics.

    Parameters
    ----------
    size:
        Number of cells.  Cells hold arbitrary Python values and start as
        ``None`` unless ``initial`` is given.
    mode:
        Access discipline enforced at each step commit.
    policy:
        CRCW write-conflict policy (ignored in EREW/CREW).
    initial:
        Optional initial cell contents (length ``<= size``).
    """

    def __init__(
        self,
        size: int,
        mode: AccessMode = AccessMode.CRCW,
        policy: WritePolicy = WritePolicy.RANDOM,
        initial: Optional[List[Any]] = None,
    ) -> None:
        if size <= 0:
            raise MemoryAccessError(f"memory size must be positive, got {size}")
        self.size = size
        self.mode = mode
        self.policy = policy
        self._cells: List[Any] = [None] * size
        if initial is not None:
            if len(initial) > size:
                raise MemoryAccessError(
                    f"initial contents ({len(initial)}) exceed memory size ({size})"
                )
            self._cells[: len(initial)] = list(initial)
        self._pending_reads: Dict[int, List[int]] = {}
        self._pending_writes: Dict[int, List[Tuple[int, Any]]] = {}
        # Accounting.
        self.total_reads = 0
        self.total_writes = 0
        self.conflicted_writes = 0  # cells with >1 writer resolved by policy
        self.cells_touched: set = set()

    # ------------------------------------------------------------------
    # step protocol
    # ------------------------------------------------------------------
    def _check_addr(self, addr: int) -> None:
        if not isinstance(addr, int) or isinstance(addr, bool):
            raise MemoryAccessError(f"address must be an int, got {addr!r}")
        if not 0 <= addr < self.size:
            raise MemoryAccessError(f"address {addr} out of range [0, {self.size})")

    def request_read(self, pid: int, addr: int) -> Any:
        """Register a read for this step; returns the pre-step value."""
        self._check_addr(addr)
        self._pending_reads.setdefault(addr, []).append(pid)
        self.total_reads += 1
        self.cells_touched.add(addr)
        return self._cells[addr]

    def request_write(self, pid: int, addr: int, value: Any) -> None:
        """Register a write for this step (committed at commit_step)."""
        self._check_addr(addr)
        self._pending_writes.setdefault(addr, []).append((pid, value))
        self.total_writes += 1
        self.cells_touched.add(addr)

    def commit_step(self, rng) -> Dict[int, int]:
        """Enforce the access discipline and apply this step's writes.

        ``rng`` is the machine's arbitration generator (RANDOM policy).
        Returns ``{addr: winning pid}`` for every cell written this step
        (used by the tracer to mark surviving writes).
        """
        reads, writes = self._pending_reads, self._pending_writes
        self._pending_reads, self._pending_writes = {}, {}
        if self.mode is AccessMode.EREW:
            for addr, pids in reads.items():
                accesses = len(pids) + len(writes.get(addr, ()))
                if accesses > 1:
                    raise ReadConflictError(
                        f"EREW violation: cell {addr} accessed by processors "
                        f"{sorted(pids) + [p for p, _ in writes.get(addr, [])]} in one step"
                    )
            for addr, writers in writes.items():
                if len(writers) + len(reads.get(addr, ())) > 1:
                    raise WriteConflictError(
                        f"EREW violation: cell {addr} written by processors "
                        f"{[p for p, _ in writers]} (readers: {reads.get(addr, [])})"
                    )
        elif self.mode is AccessMode.CREW:
            for addr, writers in writes.items():
                if len(writers) > 1:
                    raise WriteConflictError(
                        f"CREW violation: cell {addr} written by processors "
                        f"{[p for p, _ in writers]} in one step"
                    )
                if reads.get(addr):
                    raise WriteConflictError(
                        f"CREW violation: cell {addr} written by processor "
                        f"{writers[0][0]} while read by {sorted(reads[addr])}"
                    )
        # Apply writes (CRCW resolves; EREW/CREW reach here with single writers).
        winners: Dict[int, int] = {}
        for addr, writers in writes.items():
            if len(writers) > 1:
                self.conflicted_writes += 1
            pid, value = resolve_write(writers, self.policy, rng)
            self._cells[addr] = value
            winners[addr] = pid
        return winners

    # ------------------------------------------------------------------
    # direct host access (outside the step protocol, for setup/inspection)
    # ------------------------------------------------------------------
    def load(self, values: List[Any], offset: int = 0) -> None:
        """Host-side bulk store (no step accounting)."""
        if offset < 0 or offset + len(values) > self.size:
            raise MemoryAccessError(
                f"load of {len(values)} values at offset {offset} exceeds size {self.size}"
            )
        self._cells[offset : offset + len(values)] = list(values)

    def dump(self, start: int = 0, stop: Optional[int] = None) -> List[Any]:
        """Host-side bulk read (no step accounting)."""
        stop = self.size if stop is None else stop
        if not 0 <= start <= stop <= self.size:
            raise MemoryAccessError(f"dump range [{start}, {stop}) invalid for size {self.size}")
        return list(self._cells[start:stop])

    def __getitem__(self, addr: int) -> Any:
        self._check_addr(addr)
        return self._cells[addr]

    def __setitem__(self, addr: int, value: Any) -> None:
        self._check_addr(addr)
        self._cells[addr] = value

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedMemory(size={self.size}, mode={self.mode.value}, policy={self.policy.value})"
