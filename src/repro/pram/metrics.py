"""Cost accounting for PRAM runs.

The paper's complexity claims are statements about these counters:
*time* = synchronous steps, *memory* = shared cells used, plus the
derived *work* (total memory operations).  :class:`RunMetrics` is what
the benchmark harness records for each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["RunMetrics", "RunResult"]


@dataclass
class RunMetrics:
    """Counters accumulated over one :meth:`repro.pram.PRAM.run`."""

    #: Synchronous machine steps (the PRAM's "time").
    steps: int = 0
    #: Total read operations issued.
    reads: int = 0
    #: Total write operations issued.
    writes: int = 0
    #: Cells that received >1 simultaneous write (CRCW conflicts resolved).
    write_conflicts: int = 0
    #: Barrier release events.
    barriers: int = 0
    #: Number of processors the machine was built with.
    nprocs: int = 0
    #: Shared-memory size in cells (the PRAM's "space").
    memory_cells: int = 0
    #: Distinct cells actually touched during the run.
    cells_touched: int = 0

    @property
    def work(self) -> int:
        """Total memory operations — the sequential-equivalent cost."""
        return self.reads + self.writes

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for table/JSON output."""
        return {
            "steps": self.steps,
            "reads": self.reads,
            "writes": self.writes,
            "work": self.work,
            "write_conflicts": self.write_conflicts,
            "barriers": self.barriers,
            "nprocs": self.nprocs,
            "memory_cells": self.memory_cells,
            "cells_touched": self.cells_touched,
        }


@dataclass
class RunResult:
    """Outcome of one PRAM program execution."""

    #: Per-processor ``return`` values (index = processor id).
    returns: List[Any] = field(default_factory=list)
    #: Cost counters for the run.
    metrics: RunMetrics = field(default_factory=RunMetrics)
    #: Final shared-memory contents.
    memory: List[Any] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(steps={self.metrics.steps}, nprocs={self.metrics.nprocs}, "
            f"work={self.metrics.work})"
        )
