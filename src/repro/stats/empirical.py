"""Empirical distributions over selection draws."""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

__all__ = ["EmpiricalDistribution", "collect_counts"]


def collect_counts(draws: Iterable[int], n: int) -> np.ndarray:
    """Histogram an iterable of indices into ``n`` bins."""
    arr = np.fromiter((int(d) for d in draws), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ValueError(f"draw outside [0, {n}): min={arr.min()}, max={arr.max()}")
    return np.bincount(arr, minlength=n).astype(np.int64)


class EmpiricalDistribution:
    """Counts over ``n`` outcomes with convenience accessors.

    Supports incremental accumulation (``add`` / ``add_counts``) so
    Monte-Carlo harnesses can stream draws in chunks without holding
    them all.
    """

    def __init__(self, n: int, counts: Optional[np.ndarray] = None) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        if counts is None:
            self._counts = np.zeros(n, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (n,):
                raise ValueError(f"counts shape {counts.shape} != ({n},)")
            if (counts < 0).any():
                raise ValueError("counts must be non-negative")
            self._counts = counts.copy()

    # ------------------------------------------------------------------
    @classmethod
    def from_draws(cls, draws: Union[Iterable[int], np.ndarray], n: int) -> "EmpiricalDistribution":
        """Build directly from a sequence of drawn indices."""
        if isinstance(draws, np.ndarray):
            return cls(n, np.bincount(draws.astype(np.int64), minlength=n))
        return cls(n, collect_counts(draws, n))

    def add(self, index: int) -> None:
        """Record one draw."""
        self._counts[index] += 1

    def add_counts(self, counts: np.ndarray) -> None:
        """Merge a histogram chunk (e.g. from a vectorised batch)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n,):
            raise ValueError(f"counts shape {counts.shape} != ({self.n},)")
        self._counts += counts

    def add_draws(self, draws: np.ndarray) -> None:
        """Record a batch of drawn indices."""
        self._counts += np.bincount(np.asarray(draws, dtype=np.int64), minlength=self.n)

    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Copy of the per-outcome counts."""
        return self._counts.copy()

    @property
    def total(self) -> int:
        """Total recorded draws."""
        return int(self._counts.sum())

    @property
    def probabilities(self) -> np.ndarray:
        """Relative frequencies (zeros if no draws recorded)."""
        t = self.total
        if t == 0:
            return np.zeros(self.n, dtype=np.float64)
        return self._counts / float(t)

    def __getitem__(self, i: int) -> int:
        return int(self._counts[i])

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmpiricalDistribution(n={self.n}, total={self.total})"
