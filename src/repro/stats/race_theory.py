"""Exact theory of the paper's race round-count (Theorem 1, sharpened).

Under RANDOM arbitration only ranks matter: with ``m`` active bidders
the surviving write is uniform among them, leaving ``U{0, .., m-1}``
bidders active.  The round count ``T(k)`` of that absorbing chain has a
classical closed form:

* ``E[T(k)] = H_k`` (the k-th harmonic number) — *tighter* than the
  paper's sufficient bound ``2·⌈log₂ k⌉``,
* ``Var[T(k)] = H_k - H_k^{(2)}`` (second-order harmonic),
* the full distribution ``Pr[T(k) = t]`` equals ``c(k, t) / k!`` with
  ``c`` the unsigned Stirling numbers of the first kind — equivalently,
  ``T(k)`` is a sum of independent Bernoulli(1/i) record indicators,
  ``T(k) = Σ_{i=1..k} B_i`` (the record-count process of a random
  permutation).

The Bernoulli representation gives a one-dimensional DP over ``i`` that
is vectorized across the round axis and runs in **log space**
(:func:`log_rounds_pmf`), so the pmf is finite and cheap to evaluate at
paper scale (``k = 2**20`` in a couple of seconds, any ``k`` the sweep
can reach) instead of the old O(k³) list-of-lists DP that was capped at
``k <= 60``.  These laws are the validation target for the vectorized
race lab (:mod:`repro.engine.races`): the measured race must match the
exact distribution, not merely an O-bound, and the gap to the paper's
``2⌈log₂k⌉`` bound is quantified in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "harmonic",
    "expected_rounds",
    "variance_rounds",
    "rounds_distribution",
    "log_rounds_pmf",
    "log_rounds_pmf_grid",
    "rounds_quantiles",
    "rounds_tail_bound",
    "paper_bound",
]

#: Full-support pmf limit for :func:`rounds_distribution` (O(k²) work);
#: beyond it use the truncated :func:`log_rounds_pmf`.
EXACT_PMF_LIMIT = 4096

#: Default truncation of the round axis for large-k pmfs.  The upper
#: tail beyond t is bounded by the Poisson-like Chernoff decay
#: exp(-(t·ln(t/H_k) - t + H_k)); at t = 128 and any k <= 2**30 the
#: dropped mass is below 1e-90.
DEFAULT_T_MAX = 128


def harmonic(k: int, order: int = 1) -> float:
    """Generalised harmonic number ``H_k^{(order)}`` (vectorized)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, k + 1, dtype=np.float64) ** order))


def expected_rounds(k: int) -> float:
    """Exact expected race rounds for ``k`` active bidders: ``H_k``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return harmonic(k)


def variance_rounds(k: int) -> float:
    """Exact variance of the round count: ``H_k - H_k^{(2)}``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return harmonic(k) - harmonic(k, order=2)


def _log_pmf_sweep(k: int, t_max: int, snapshots: Optional[Sequence[int]] = None):
    """Log-space Bernoulli-sum DP over ``i = 1..k``, truncated at ``t_max``.

    One vectorized update per ``i``:
    ``P_i(t) = P_{i-1}(t)·(1 - 1/i) + P_{i-1}(t-1)·(1/i)``, carried as
    log-probabilities so the deep tails (down to ``log(1/k!)`` territory)
    stay finite instead of underflowing to zero.  Yields ``(i, log_pmf)``
    at each requested snapshot (all of ``snapshots`` must be >= 1).
    """
    width = t_max + 1
    lp = np.full(width, -np.inf)
    lp[1] = 0.0  # T(1) = 1 deterministically (the single bidder writes once)
    shifted = np.empty(width)
    wanted = set(snapshots) if snapshots is not None else {k}
    out: Dict[int, np.ndarray] = {}
    if 1 in wanted:
        out[1] = lp.copy()
    for i in range(2, k + 1):
        log_b = -math.log(i)
        log_a = math.log(i - 1) + log_b  # log((i-1)/i)
        shifted[0] = -np.inf
        np.add(lp[:-1], log_b, out=shifted[1:])
        np.add(lp, log_a, out=lp)
        np.logaddexp(lp, shifted, out=lp)
        if i in wanted:
            out[i] = lp.copy()
    return out


def log_rounds_pmf(k: int, t_max: Optional[int] = None) -> np.ndarray:
    """``log Pr[T(k) = t]`` for ``t = 0..min(k, t_max)``, finite at any scale.

    Entries for impossible outcomes (``t = 0`` and ``t > k``) are
    ``-inf``; everything reachable is a finite log-probability, e.g.
    ``log Pr[T(k) = 1] = -log k``.  The round axis is truncated at
    ``t_max`` (default :data:`DEFAULT_T_MAX`): mass above it is dropped,
    which is negligible for ``t_max >> H_k`` (see the constant's note).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    cap = DEFAULT_T_MAX if t_max is None else int(t_max)
    if cap < 1:
        raise ValueError(f"t_max must be >= 1, got {t_max}")
    cap = min(k, cap)
    if k == 0:
        return np.zeros(1)  # point mass at 0 rounds: log 1 = 0
    return _log_pmf_sweep(k, cap)[k]


def log_rounds_pmf_grid(
    ks: Sequence[int], t_max: Optional[int] = None
) -> Dict[int, np.ndarray]:
    """``{k: log_rounds_pmf(k)}`` for every ``k`` in ``ks``, in one sweep.

    The DP passes through every intermediate ``k`` on its way to
    ``max(ks)``, so a whole benchmark grid costs the same as its largest
    point.  All ``ks`` must be positive; the shared truncation is
    ``min(max(ks), t_max)`` so the arrays are directly comparable.
    """
    ks = [int(k) for k in ks]
    if not ks:
        return {}
    if min(ks) < 1:
        raise ValueError(f"grid ks must be positive, got {min(ks)}")
    cap = DEFAULT_T_MAX if t_max is None else int(t_max)
    if cap < 1:
        raise ValueError(f"t_max must be >= 1, got {t_max}")
    cap = min(max(ks), cap)
    snaps = _log_pmf_sweep(max(ks), cap, snapshots=ks)
    return {k: snaps[k][: min(k, cap) + 1] for k in ks}


@lru_cache(maxsize=64)
def _distribution(k: int) -> tuple:
    """Full-support Pr[T(k) = t] for t = 0..k via the same DP, linear space."""
    v = np.zeros(k + 1, dtype=np.float64)
    v[1] = 1.0
    for i in range(2, k + 1):
        b = 1.0 / i
        v[1:] = v[1:] * (1.0 - b) + v[:-1] * b
    return tuple(v.tolist())


def rounds_distribution(k: int) -> np.ndarray:
    """Exact pmf of the race's round count, ``Pr[T(k) = t]`` for t=0..k.

    Full support, linear probability space (entries more than ~308 orders
    of magnitude below the mode round to zero — use
    :func:`log_rounds_pmf` when the deep tail matters).  Limited to
    ``k <= EXACT_PMF_LIMIT`` by its O(k²) cost.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > EXACT_PMF_LIMIT:
        raise ValueError(
            f"full-support pmf limited to k <= {EXACT_PMF_LIMIT} (O(k^2) DP); "
            "use log_rounds_pmf for truncated large-k laws"
        )
    if k == 0:
        return np.array([1.0])
    return np.asarray(_distribution(k), dtype=np.float64)


def rounds_quantiles(
    k: int, qs: Sequence[float], t_max: Optional[int] = None
) -> np.ndarray:
    """Exact quantiles of ``T(k)``: smallest ``t`` with ``Pr[T <= t] >= q``."""
    qs_arr = np.asarray(qs, dtype=np.float64)
    if ((qs_arr <= 0.0) | (qs_arr >= 1.0)).any():
        raise ValueError(f"quantiles must lie in (0, 1), got {qs}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    cdf = np.cumsum(np.exp(log_rounds_pmf(k, t_max=t_max)))
    # Guard the (negligible) truncated upper tail: top quantiles beyond
    # the window clamp to its edge.
    idx = np.searchsorted(cdf, np.minimum(qs_arr, cdf[-1]))
    return np.minimum(idx, len(cdf) - 1).astype(np.int64)


def rounds_tail_bound(k: int, t: float) -> float:
    """Chebyshev tail bound ``Pr[T(k) >= t]`` from the exact moments."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    mean = expected_rounds(k)
    if t <= mean:
        return 1.0
    var = variance_rounds(k)
    return min(1.0, var / (t - mean) ** 2)


def paper_bound(k: int) -> int:
    """The paper's sufficient expected-round bound ``2 * ceil(log2 k)``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return 2 * math.ceil(math.log2(k)) if k > 1 else 1
