"""Exact theory of the paper's race round-count (Theorem 1, sharpened).

Under RANDOM arbitration only ranks matter: with ``m`` active bidders
the surviving write is uniform among them, leaving ``U{0, .., m-1}``
bidders active.  The round count ``T(k)`` of that absorbing chain has a
classical closed form:

* ``E[T(k)] = H_k`` (the k-th harmonic number) — *tighter* than the
  paper's sufficient bound ``2·⌈log₂ k⌉``,
* ``Var[T(k)] = H_k - H_k^{(2)}`` (second-order harmonic),
* the full distribution ``Pr[T(k) = t]`` equals ``c(k, t) / k!`` with
  ``c`` the unsigned Stirling numbers of the first kind (the chain is
  the record-count process of a random permutation), computed here by
  the direct DP.

These are used to validate the simulator (the measured race must match
the exact law, not merely an O-bound) and to quantify how much slack the
paper's bound carries.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List

import numpy as np

__all__ = [
    "harmonic",
    "expected_rounds",
    "variance_rounds",
    "rounds_distribution",
    "rounds_tail_bound",
    "paper_bound",
]


def harmonic(k: int, order: int = 1) -> float:
    """Generalised harmonic number ``H_k^{(order)}``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return float(sum(1.0 / i**order for i in range(1, k + 1)))


def expected_rounds(k: int) -> float:
    """Exact expected race rounds for ``k`` active bidders: ``H_k``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return harmonic(k)


def variance_rounds(k: int) -> float:
    """Exact variance of the round count: ``H_k - H_k^{(2)}``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return harmonic(k) - harmonic(k, order=2)


@lru_cache(maxsize=64)
def _distribution(k: int) -> tuple:
    """Pr[T(k) = t] for t = 0..k via the m -> U{0..m-1} recursion."""
    # dist[m][t]; dist[0] = point mass at 0 rounds.
    prev: List[np.ndarray] = [np.array([1.0])]
    for m in range(1, k + 1):
        # T(m) = 1 + T(J), J ~ U{0..m-1}.
        out = np.zeros(m + 1, dtype=np.float64)
        for j in range(m):
            dj = prev[j]
            out[1 : 1 + len(dj)] += dj / m
        prev.append(out)
    return tuple(prev[k].tolist())


def rounds_distribution(k: int) -> np.ndarray:
    """Exact pmf of the race's round count, ``Pr[T(k) = t]`` for t=0..k."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > 60:
        raise ValueError("exact pmf limited to k <= 60 (O(k^2) DP); use moments")
    return np.asarray(_distribution(k), dtype=np.float64)


def rounds_tail_bound(k: int, t: float) -> float:
    """Chebyshev tail bound ``Pr[T(k) >= t]`` from the exact moments."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    mean = expected_rounds(k)
    if t <= mean:
        return 1.0
    var = variance_rounds(k)
    return min(1.0, var / (t - mean) ** 2)


def paper_bound(k: int) -> int:
    """The paper's sufficient expected-round bound ``2 * ceil(log2 k)``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return 2 * math.ceil(math.log2(k)) if k > 1 else 1
