"""Goodness-of-fit tests and distribution distances.

The paper's tables compare empirical frequencies against ``F_i`` by eye
over 10^9 draws; at bench-scale draw counts we replace eyeballing with
formal tests (Pearson chi-square, likelihood-ratio G) and distances
(total variation, KL, max absolute error) with explicit thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats as sps

__all__ = [
    "GofResult",
    "chi_square_gof",
    "g_test_gof",
    "tv_distance",
    "kl_divergence",
    "max_abs_error",
]


@dataclass
class GofResult:
    """Outcome of a goodness-of-fit test."""

    #: Test statistic (chi-square or G).
    statistic: float
    #: Degrees of freedom (non-zero expected categories - 1).
    dof: int
    #: Right-tail p-value under the chi-square(dof) null.
    p_value: float
    #: Total draws the counts represent.
    total: int

    def reject(self, alpha: float = 0.01) -> bool:
        """True iff the null (counts ~ expected) is rejected at ``alpha``."""
        return self.p_value < alpha

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GofResult(statistic={self.statistic:.3f}, dof={self.dof}, "
            f"p={self.p_value:.4g})"
        )


def _prepare(counts: np.ndarray, expected_probs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    counts = np.asarray(counts, dtype=np.float64)
    probs = np.asarray(expected_probs, dtype=np.float64)
    if counts.shape != probs.shape:
        raise ValueError(f"shape mismatch: counts {counts.shape} vs probs {probs.shape}")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    if (probs < 0).any():
        raise ValueError("expected probabilities must be non-negative")
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts are all zero; nothing to test")
    psum = probs.sum()
    if psum <= 0:
        raise ValueError("expected probabilities sum to zero")
    probs = probs / psum
    # Zero-probability categories must have zero counts; observing mass
    # there is an immediate (infinite-statistic) rejection.
    impossible = (probs == 0.0) & (counts > 0)
    if impossible.any():
        idx = int(np.flatnonzero(impossible)[0])
        raise ValueError(
            f"category {idx} has zero expected probability but {int(counts[idx])} draws"
        )
    return counts, probs, int(total)


def chi_square_gof(counts: np.ndarray, expected_probs: np.ndarray) -> GofResult:
    """Pearson chi-square test of counts against a target distribution.

    Zero-probability categories are excluded from the statistic (after
    verifying they received no draws) and from the degrees of freedom.
    """
    counts, probs, total = _prepare(counts, expected_probs)
    mask = probs > 0.0
    expected = probs[mask] * total
    stat = float(((counts[mask] - expected) ** 2 / expected).sum())
    dof = int(mask.sum()) - 1
    if dof <= 0:
        return GofResult(statistic=stat, dof=0, p_value=1.0, total=total)
    p = float(sps.chi2.sf(stat, dof))
    return GofResult(statistic=stat, dof=dof, p_value=p, total=total)


def g_test_gof(counts: np.ndarray, expected_probs: np.ndarray) -> GofResult:
    """Likelihood-ratio (G) test — asymptotically equivalent to chi-square."""
    counts, probs, total = _prepare(counts, expected_probs)
    mask = probs > 0.0
    expected = probs[mask] * total
    observed = counts[mask]
    nz = observed > 0
    stat = float(2.0 * (observed[nz] * np.log(observed[nz] / expected[nz])).sum())
    dof = int(mask.sum()) - 1
    if dof <= 0:
        return GofResult(statistic=stat, dof=0, p_value=1.0, total=total)
    p = float(sps.chi2.sf(stat, dof))
    return GofResult(statistic=stat, dof=dof, p_value=p, total=total)


def tv_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance ``0.5 * sum|p - q|`` between distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """``KL(p || q)`` in nats; ``inf`` if p has mass where q has none."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    mask = p > 0.0
    if np.any(q[mask] == 0.0):
        return float("inf")
    return float((p[mask] * np.log(p[mask] / q[mask])).sum())


def max_abs_error(p: np.ndarray, q: np.ndarray) -> float:
    """Largest per-category deviation — the paper's implicit table metric."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    return float(np.abs(p - q).max())
