"""Confidence intervals for Monte-Carlo frequency estimates."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats as sps

__all__ = ["wilson_interval", "mean_interval", "standard_errors"]


def wilson_interval(successes: int, trials: int, confidence: float = 0.99) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or all successes), which matters for
    Table II where some probabilities are effectively zero.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (z / denom) * np.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    # At the extremes centre == half analytically; rounding can leave a
    # ~1e-17 residue, so pin the exact boundary.
    lo = 0.0 if successes == 0 else max(0.0, float(centre - half))
    hi = 1.0 if successes == trials else min(1.0, float(centre + half))
    return lo, hi


def mean_interval(
    mean: float, variance: float, trials: int, confidence: float = 0.99
) -> Tuple[float, float]:
    """Normal-approximation CI for a Monte-Carlo sample mean.

    ``variance`` is the per-observation variance (exact when known —
    e.g. the race law's ``H_k - H_k^(2)`` — or a sample estimate).  With
    ``trials >= 10^5`` the CLT error is negligible for the bounded-tail
    distributions we test against.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    half = z * float(np.sqrt(variance / trials))
    return float(mean) - half, float(mean) + half


def standard_errors(counts: np.ndarray) -> np.ndarray:
    """Multinomial standard errors of the per-category frequencies."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts are all zero")
    p = counts / total
    return np.sqrt(p * (1.0 - p) / total)
