"""Statistical power of the goodness-of-fit experiments.

The paper demonstrates exactness with 10^9 draws; this reproduction
defaults to 10^6.  This module makes the trade-off quantitative using
the standard noncentral-chi-square power analysis:

* a multinomial deviation of effect size ``w`` (Cohen's
  ``w = sqrt(sum (p_alt - p_0)^2 / p_0)``) gives the chi-square statistic
  a noncentral distribution with ``lambda = N w^2``;
* :func:`detection_power` — probability that ``N`` draws reject the null
  at level ``alpha`` for a given alternative;
* :func:`required_draws` — smallest ``N`` achieving target power;
* :func:`detectable_effect` — smallest effect ``w`` detectable at ``N``.

Headline numbers (asserted in the tests): the independent-roulette bias
on Table I has ``w ~ 0.71`` — detectable with ~100 draws — while
certifying agreement down to ``w = 0.001`` needs ~4x10^7 draws.  The
paper's 10^9 draws certify to ``w ~ 2x10^-4``; our 10^6 default to
``w ~ 6x10^-3``.  Every effect the paper reports is orders of magnitude
above both thresholds.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "cohen_w",
    "detection_power",
    "required_draws",
    "detectable_effect",
]


def cohen_w(null_probs: Sequence[float], alt_probs: Sequence[float]) -> float:
    """Cohen's effect size ``w`` between two categorical distributions.

    Categories with zero null probability must carry zero alternative
    mass (they make the chi-square statistic infinite — detection is
    then immediate and power analysis moot).
    """
    p0 = np.asarray(null_probs, dtype=np.float64)
    p1 = np.asarray(alt_probs, dtype=np.float64)
    if p0.shape != p1.shape:
        raise ValueError(f"shape mismatch: {p0.shape} vs {p1.shape}")
    if (p0 < 0).any() or (p1 < 0).any():
        raise ValueError("probabilities must be non-negative")
    p0 = p0 / p0.sum()
    p1 = p1 / p1.sum()
    mask = p0 > 0.0
    if np.any(p1[~mask] > 0.0):
        return math.inf
    return float(np.sqrt(((p1[mask] - p0[mask]) ** 2 / p0[mask]).sum()))


def detection_power(
    n_draws: int, effect_w: float, categories: int, alpha: float = 0.01
) -> float:
    """Probability that ``n_draws`` reject the null against effect ``w``.

    Uses the noncentral chi-square with ``df = categories - 1`` and
    noncentrality ``n_draws * w**2``.
    """
    if n_draws <= 0:
        raise ValueError(f"n_draws must be positive, got {n_draws}")
    if effect_w < 0:
        raise ValueError(f"effect size must be non-negative, got {effect_w}")
    if categories < 2:
        raise ValueError(f"need >= 2 categories, got {categories}")
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    df = categories - 1
    critical = sps.chi2.ppf(1.0 - alpha, df)
    if effect_w == 0.0:
        return float(alpha)
    lam = n_draws * effect_w**2
    return float(sps.ncx2.sf(critical, df, lam))


def required_draws(
    effect_w: float,
    categories: int,
    alpha: float = 0.01,
    power: float = 0.99,
) -> int:
    """Smallest draw count detecting effect ``w`` with the target power."""
    if effect_w <= 0:
        raise ValueError(f"effect size must be positive, got {effect_w}")
    if not 0 < power < 1:
        raise ValueError(f"power must be in (0, 1), got {power}")
    lo, hi = 1, 2
    while detection_power(hi, effect_w, categories, alpha) < power:
        hi *= 2
        if hi > 10**15:  # pragma: no cover - unreachable for sane inputs
            raise RuntimeError("required draw count exceeds 1e15")
    while lo < hi:
        mid = (lo + hi) // 2
        if detection_power(mid, effect_w, categories, alpha) >= power:
            hi = mid
        else:
            lo = mid + 1
    return lo


def detectable_effect(
    n_draws: int,
    categories: int,
    alpha: float = 0.01,
    power: float = 0.99,
) -> float:
    """Smallest effect ``w`` that ``n_draws`` detect with the target power."""
    if n_draws <= 0:
        raise ValueError(f"n_draws must be positive, got {n_draws}")
    if not 0 < power < 1:
        raise ValueError(f"power must be in (0, 1), got {power}")
    lo, hi = 0.0, 1.0
    while detection_power(n_draws, hi, categories, alpha) < power:
        hi *= 2
        if hi > 1e6:  # pragma: no cover - unreachable
            raise RuntimeError("no detectable effect below w = 1e6")
    for _ in range(80):  # bisection to double precision
        mid = (lo + hi) / 2
        if detection_power(n_draws, mid, categories, alpha) >= power:
            hi = mid
        else:
            lo = mid
    return hi
